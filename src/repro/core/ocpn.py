"""Object Composition Petri Nets (OCPN) — Little & Ghafoor's model.

An OCPN specifies the timing relations among multimedia data: leaves are
media-object playouts with durations, internal nodes combine two
sub-presentations with one of Allen's temporal relations. This module
compiles such a specification tree into a
:class:`~repro.core.timed.TimedPetriNet` using the canonical constructions
(sync transitions at interval endpoints, delay places for the parameterized
relations), and verifies that executing the net reproduces exactly the
intervals :func:`~repro.core.intervals.schedule_pair` prescribes.

Specification AST
-----------------
* :class:`MediaLeaf` — one media object with a fixed playout duration.
* :class:`Composite` — ``relation(left, right, delay)``.
* :func:`sequence` / :func:`parallel` — n-ary sugar for MEETS / EQUALS-like
  chains (parallel tolerates different durations by synchronizing at the
  latest end — "last finisher" semantics, the usual practical choice).

Compilation produces a net with one source place ``P_start`` (initially
marked) and one sink place ``P_done``; media leaf ``x`` becomes place
``P_x`` whose playout intervals can be read off the execution trace.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .intervals import Interval, TemporalRelation, schedule_pair
from .petri import PetriNet, PetriNetError
from .timed import TimedExecution, TimedPetriNet


class SpecError(PetriNetError):
    """The presentation specification is inconsistent."""


@dataclass(frozen=True)
class MediaLeaf:
    """A single media-object playout.

    ``name`` must be unique across the whole specification; it becomes the
    Petri-net place name ``P_<name>``.
    """

    name: str
    duration: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("media leaf needs a name")
        if self.duration <= 0:
            raise SpecError(f"leaf {self.name!r}: duration must be positive")


@dataclass(frozen=True)
class Composite:
    """Two sub-presentations combined by a temporal relation."""

    relation: TemporalRelation
    left: "Spec"
    right: "Spec"
    delay: float = 0.0


Spec = Union[MediaLeaf, Composite]


def sequence(*specs: Spec) -> Spec:
    """Chain sub-presentations with MEETS (right-associated)."""
    if not specs:
        raise SpecError("sequence() needs at least one spec")
    result = specs[-1]
    for spec in reversed(specs[:-1]):
        result = Composite(TemporalRelation.MEETS, spec, result)
    return result


def parallel(*specs: Spec) -> Spec:
    """Start sub-presentations together; synchronize at the latest end.

    Uses STARTS/STARTED_BY/EQUALS depending on relative durations, so the
    construction stays within the canonical relation set.
    """
    if not specs:
        raise SpecError("parallel() needs at least one spec")
    result = specs[-1]
    for spec in reversed(specs[:-1]):
        da, db = spec_duration(spec), spec_duration(result)
        if abs(da - db) < 1e-9:
            rel = TemporalRelation.EQUALS
        elif da < db:
            rel = TemporalRelation.STARTS
        else:
            rel = TemporalRelation.STARTED_BY
        result = Composite(rel, spec, result)
    return result


def relabel(spec: Spec, suffix: str) -> Spec:
    """A copy of ``spec`` with every leaf renamed ``<name>__<suffix>``.

    Leaf names must be unique across a compiled net; relabeling makes a
    sub-presentation reusable in several positions (templates, repeats).
    """
    if not suffix:
        raise SpecError("relabel needs a non-empty suffix")
    if isinstance(spec, MediaLeaf):
        return MediaLeaf(f"{spec.name}__{suffix}", spec.duration)
    return Composite(
        spec.relation,
        relabel(spec.left, suffix),
        relabel(spec.right, suffix),
        spec.delay,
    )


def repeat(spec: Spec, times: int, *, gap: float = 0.0) -> Spec:
    """Play ``spec`` ``times`` times back to back (optionally gapped).

    The repetitions are unrolled with relabeled leaves (``__r0``,
    ``__r1``, …), keeping the compiled net acyclic and safe — the standard
    OCPN treatment of loops in pre-orchestrated presentations.
    """
    if times < 1:
        raise SpecError("repeat needs times >= 1")
    if gap < 0:
        raise SpecError("gap must be >= 0")
    copies = [relabel(spec, f"r{i}") for i in range(times)]
    if gap == 0:
        return sequence(*copies)
    result = copies[-1]
    for copy in reversed(copies[:-1]):
        result = Composite(TemporalRelation.BEFORE, copy, result, delay=gap)
    return result


def spec_duration(spec: Spec) -> float:
    """Total duration of a specification (validates delay consistency)."""
    if isinstance(spec, MediaLeaf):
        return spec.duration
    da, db = spec_duration(spec.left), spec_duration(spec.right)
    a, b = schedule_pair(spec.relation, da, db, delay=spec.delay)
    return max(a.end, b.end) - min(a.start, b.start)


def spec_leaves(spec: Spec) -> List[MediaLeaf]:
    if isinstance(spec, MediaLeaf):
        return [spec]
    return spec_leaves(spec.left) + spec_leaves(spec.right)


def spec_intervals(spec: Spec, *, origin: float = 0.0) -> Dict[str, Interval]:
    """Ideal playout interval per leaf, per the interval algebra.

    This is the *reference schedule*; the compiled net must reproduce it
    (see :func:`verify_schedule`).
    """
    if isinstance(spec, MediaLeaf):
        return {spec.name: Interval(origin, origin + spec.duration)}
    da, db = spec_duration(spec.left), spec_duration(spec.right)
    a, b = schedule_pair(spec.relation, da, db, delay=spec.delay, origin=origin)
    start = min(a.start, b.start)
    shift = origin - start
    left = spec_intervals(spec.left, origin=a.start + shift)
    right = spec_intervals(spec.right, origin=b.start + shift)
    clash = set(left) & set(right)
    if clash:
        raise SpecError(f"duplicate leaf names: {sorted(clash)}")
    left.update(right)
    return left


@dataclass
class CompiledOCPN:
    """Result of compiling a specification.

    Attributes
    ----------
    timed_net:
        The executable timed Petri net.
    media_places:
        Map leaf name -> place name (``P_<leaf>``).
    start_place / done_place:
        Source and sink places.
    spec:
        The original specification.
    """

    timed_net: TimedPetriNet
    media_places: Dict[str, str]
    start_place: str
    done_place: str
    spec: Spec

    def execute(self, **kwargs) -> TimedExecution:
        self.timed_net.net.reset()
        return self.timed_net.execute(**kwargs)

    def measured_intervals(self, execution: Optional[TimedExecution] = None) -> Dict[str, Interval]:
        """Playout interval of every media leaf in an executed run."""
        run = execution or self.execute()
        result: Dict[str, Interval] = {}
        for leaf, place in self.media_places.items():
            intervals = run.playout_intervals(place)
            if len(intervals) != 1:
                raise SpecError(
                    f"leaf {leaf!r} played {len(intervals)} times, expected once"
                )
            start, end = intervals[0]
            result[leaf] = Interval(start, end)
        return result


class OCPNCompiler:
    """Compiles a :data:`Spec` tree into a safe timed Petri net.

    Every fragment is bounded by an entry transition and an exit transition;
    relations wire fragments together through zero-duration link places and
    positive-duration delay places. The result is safe (1-bounded) and
    deadlock-free by construction — property tests in
    ``tests/property/test_ocpn_properties.py`` check this on random specs.
    """

    def __init__(self, name: str = "ocpn") -> None:
        self.name = name
        self._net = PetriNet(name)
        self._fresh = itertools.count()
        self._media_places: Dict[str, str] = {}
        self._durations: Dict[str, float] = {}
        self._extra_marking: Dict[str, int] = {}

    # -- helpers -------------------------------------------------------

    def _place(self, prefix: str, duration: float = 0.0) -> str:
        name = f"{prefix}_{next(self._fresh)}"
        self._net.add_place(name)
        if duration:
            self._durations[name] = duration
        return name

    def _transition(self, prefix: str = "t") -> str:
        name = f"{prefix}_{next(self._fresh)}"
        self._net.add_transition(name)
        return name

    def _link(self, t_from: str, t_to: str, duration: float = 0.0, label: str = "link") -> str:
        """Connect two transitions through a place of given duration."""
        place = self._place(label, duration)
        self._net.add_arc(t_from, place)
        self._net.add_arc(place, t_to)
        return place

    # -- fragment compilation -----------------------------------------

    def _compile_leaf(self, spec: MediaLeaf) -> Tuple[str, str]:
        """Compile a media playout; overridden by XOCPN to add channels."""
        if spec.name in self._media_places:
            raise SpecError(f"duplicate leaf name {spec.name!r}")
        t_in = self._transition("t_in")
        t_out = self._transition("t_out")
        place = f"P_{spec.name}"
        self._net.add_place(place, label=spec.name)
        self._durations[place] = spec.duration
        self._net.add_arc(t_in, place)
        self._net.add_arc(place, t_out)
        self._media_places[spec.name] = place
        return t_in, t_out

    def _compile(self, spec: Spec) -> Tuple[str, str]:
        """Compile ``spec``; return (entry transition, exit transition)."""
        if isinstance(spec, MediaLeaf):
            return self._compile_leaf(spec)

        rel, swapped = spec.relation.canonicalize()
        left, right = (spec.right, spec.left) if swapped else (spec.left, spec.right)
        da, db = spec_duration(left), spec_duration(right)
        # validate the parameters once, via the interval algebra
        schedule_pair(rel, da, db, delay=spec.delay)

        a_in, a_out = self._compile(left)
        b_in, b_out = self._compile(right)

        if rel is TemporalRelation.MEETS:
            self._link(a_out, b_in)
            return a_in, b_out

        if rel is TemporalRelation.BEFORE:
            self._link(a_out, b_in, duration=spec.delay, label="delay")
            return a_in, b_out

        t_in = self._transition("t_in")
        t_out = self._transition("t_out")

        if rel in (TemporalRelation.EQUALS, TemporalRelation.STARTS):
            # both start together; exit waits for both ends
            self._link(t_in, a_in)
            self._link(t_in, b_in)
        elif rel is TemporalRelation.FINISHES:
            # b starts first; a starts after (db - da) so both finish together
            self._link(t_in, b_in)
            t_mid = self._transition("t_mid")
            self._link(t_in, t_mid, duration=db - da, label="delay")
            self._link(t_mid, a_in)
        elif rel is TemporalRelation.OVERLAPS:
            # a starts first; b starts after delay
            self._link(t_in, a_in)
            t_mid = self._transition("t_mid")
            self._link(t_in, t_mid, duration=spec.delay, label="delay")
            self._link(t_mid, b_in)
        elif rel is TemporalRelation.DURING:
            # b starts first; a starts after delay, ends inside b
            self._link(t_in, b_in)
            t_mid = self._transition("t_mid")
            self._link(t_in, t_mid, duration=spec.delay, label="delay")
            self._link(t_mid, a_in)
        else:  # pragma: no cover - canonicalize() precludes this
            raise SpecError(f"cannot compile relation {rel}")

        self._link(a_out, t_out)
        self._link(b_out, t_out)
        return t_in, t_out

    def _after_start(self, t_begin: str) -> None:
        """Hook: extra arcs out of the global start transition (XOCPN)."""

    def compile(self, spec: Spec) -> CompiledOCPN:
        entry, exit_ = self._compile(spec)
        start = "P_start"
        done = "P_done"
        self._net.add_place(start, label="start")
        self._net.add_place(done, label="done")
        t_begin = self._transition("t_begin")
        self._net.add_arc(start, t_begin)
        self._link(t_begin, entry)
        self._after_start(t_begin)
        self._net.add_arc(exit_, done)
        self._net.set_marking({start: 1, **self._extra_marking})
        self._net.validate()
        timed = TimedPetriNet(self._net, self._durations)
        return CompiledOCPN(
            timed_net=timed,
            media_places=dict(self._media_places),
            start_place=start,
            done_place=done,
            spec=spec,
        )


def compile_spec(spec: Spec, *, name: str = "ocpn") -> CompiledOCPN:
    """Convenience wrapper around :class:`OCPNCompiler`."""
    return OCPNCompiler(name).compile(spec)


def verify_schedule(compiled: CompiledOCPN, *, tol: float = 1e-6) -> Dict[str, float]:
    """Execute the net and compare against the interval-algebra schedule.

    Returns per-leaf absolute start-time error; raises :class:`SpecError`
    if any error exceeds ``tol``. This is the "theory matches practice"
    check the paper attributes to the Petri-net approach.
    """
    reference = spec_intervals(compiled.spec)
    measured = compiled.measured_intervals()
    errors: Dict[str, float] = {}
    for leaf, ref in reference.items():
        got = measured[leaf]
        err = max(abs(got.start - ref.start), abs(got.end - ref.end))
        errors[leaf] = err
        if err > tol:
            raise SpecError(
                f"leaf {leaf!r}: net plays {got}, spec requires {ref} (err={err})"
            )
    return errors
