"""Base Petri net model: places, transitions, arcs, markings, firing.

This module implements the classical place/transition net of Murata [1] and
Peterson [2], which everything else in :mod:`repro.core` builds upon:

* :class:`Place` — a condition or resource holder carrying tokens.
* :class:`Transition` — an event; *enabled* when every input place holds at
  least as many tokens as its arc weight (and every inhibitor arc's place
  holds fewer than its weight), and *firing* moves tokens.
* :class:`Arc` — a weighted, directed connection; normal or inhibitor.
* :class:`Marking` — an immutable token assignment, usable as a dict key so
  reachability graphs can be built over it.
* :class:`PetriNet` — the net itself, with enabling/firing semantics and
  incidence-matrix export for invariant analysis.

The multimedia models (OCPN, XOCPN, the paper's extended timed net) subclass
or wrap these primitives; see :mod:`repro.core.timed` and
:mod:`repro.core.ocpn`.

References
----------
[1] T. Murata, "Petri Nets: Properties, Analysis and Applications,"
    Proc. IEEE 77(4), 1989.
[2] J. L. Peterson, "Petri Net Theory and the Modeling of Systems,"
    Prentice-Hall, 1981.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class PetriNetError(Exception):
    """Base class for all structural and behavioural net errors."""


class DuplicateNodeError(PetriNetError):
    """A place or transition with the same name already exists."""


class UnknownNodeError(PetriNetError):
    """A referenced place or transition does not exist in the net."""


class NotEnabledError(PetriNetError):
    """An attempt was made to fire a transition that is not enabled."""


@dataclass(frozen=True)
class Place:
    """A place (circle) in a Petri net.

    Parameters
    ----------
    name:
        Unique identifier within the net.
    capacity:
        Optional maximum number of tokens the place may hold
        (``None`` = unbounded, the classical model).
    label:
        Optional human-readable annotation (e.g. the media object the
        place represents in an OCPN).
    """

    name: str
    capacity: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("place name must be non-empty")
        if self.capacity is not None and self.capacity < 0:
            raise ValueError(f"place {self.name!r}: capacity must be >= 0")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Transition:
    """A transition (bar) in a Petri net.

    Parameters
    ----------
    name:
        Unique identifier within the net.
    priority:
        Used by :mod:`repro.core.prioritized`; among simultaneously enabled
        transitions, higher priority fires first. The base semantics of
        :meth:`PetriNet.enabled` ignore priority.
    label:
        Optional human-readable annotation (e.g. "sync point t1").
    """

    name: str
    priority: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transition name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Arc:
    """A directed arc between a place and a transition (either direction).

    ``source`` and ``target`` are node names; exactly one endpoint must be a
    place and the other a transition (validated by :class:`PetriNet`).
    ``inhibitor`` arcs may only run place→transition and *disable* the
    transition when the place holds ``weight`` or more tokens.
    """

    source: str
    target: str
    weight: int = 1
    inhibitor: bool = False

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError("arc weight must be >= 1")


class Marking(Mapping[str, int]):
    """An immutable token count per place, hashable for graph search.

    Only places with a non-zero count are stored; ``marking["p"]`` returns 0
    for any unknown key, so markings over the same net compare equal
    regardless of which zero entries were supplied.
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: Optional[Mapping[str, int]] = None) -> None:
        cleaned: Dict[str, int] = {}
        for name, count in (counts or {}).items():
            if count < 0:
                raise ValueError(f"negative token count for place {name!r}")
            if count:
                cleaned[name] = count
        self._counts: Dict[str, int] = cleaned
        self._hash = hash(frozenset(cleaned.items()))

    def __getitem__(self, place: str) -> int:
        return self._counts.get(place, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._counts == other._counts
        if isinstance(other, Mapping):
            return self._counts == {k: v for k, v in other.items() if v}
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._counts.items()))
        return f"Marking({{{inner}}})"

    def with_delta(self, delta: Mapping[str, int]) -> "Marking":
        """Return a new marking with ``delta`` added per place."""
        counts = dict(self._counts)
        for name, change in delta.items():
            counts[name] = counts.get(name, 0) + change
        return Marking(counts)

    def total(self) -> int:
        """Total number of tokens across all places."""
        return sum(self._counts.values())

    def covers(self, other: "Marking") -> bool:
        """True if this marking has at least as many tokens everywhere."""
        return all(self[p] >= n for p, n in other.items())


class PetriNet:
    """A place/transition net with weighted and inhibitor arcs.

    The net is mutable during construction (``add_place`` etc.) and then
    queried/fired. Firing never mutates the net structure; the *current
    marking* is tracked on the instance but all behavioural methods also
    accept an explicit marking so analyses can explore without side effects.

    Examples
    --------
    >>> net = PetriNet("producer-consumer")
    >>> _ = net.add_place("buffer")
    >>> _ = net.add_transition("produce")
    >>> _ = net.add_arc("produce", "buffer")
    >>> net.set_marking({})
    >>> net.fire("produce")
    >>> net.marking["buffer"]
    1
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        # arcs indexed for O(1) enabling checks
        self._inputs: Dict[str, Dict[str, Arc]] = {}  # transition -> place -> arc
        self._outputs: Dict[str, Dict[str, Arc]] = {}  # transition -> place -> arc
        self._inhibitors: Dict[str, Dict[str, Arc]] = {}
        self._place_out: Dict[str, List[str]] = {}  # place -> transitions it feeds
        self._place_in: Dict[str, List[str]] = {}  # place -> transitions feeding it
        self._place_inhibits: Dict[str, List[str]] = {}  # place -> transitions it inhibits
        self.marking: Marking = Marking()
        self.initial_marking: Marking = Marking()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_place(
        self,
        name: str,
        *,
        capacity: Optional[int] = None,
        label: str = "",
        tokens: int = 0,
    ) -> Place:
        """Add a place; optionally seed ``tokens`` into the current marking."""
        if name in self._places or name in self._transitions:
            raise DuplicateNodeError(f"node {name!r} already exists")
        place = Place(name, capacity=capacity, label=label)
        self._places[name] = place
        self._place_out[name] = []
        self._place_in[name] = []
        self._place_inhibits[name] = []
        if tokens:
            self.marking = self.marking.with_delta({name: tokens})
            self.initial_marking = self.initial_marking.with_delta({name: tokens})
        return place

    def add_transition(self, name: str, *, priority: int = 0, label: str = "") -> Transition:
        if name in self._places or name in self._transitions:
            raise DuplicateNodeError(f"node {name!r} already exists")
        transition = Transition(name, priority=priority, label=label)
        self._transitions[name] = transition
        self._inputs[name] = {}
        self._outputs[name] = {}
        self._inhibitors[name] = {}
        return transition

    def add_arc(
        self, source: str, target: str, *, weight: int = 1, inhibitor: bool = False
    ) -> Arc:
        """Connect a place to a transition or vice versa.

        Inhibitor arcs must run place→transition.
        """
        arc = Arc(source, target, weight=weight, inhibitor=inhibitor)
        if source in self._places and target in self._transitions:
            if inhibitor:
                self._inhibitors[target][source] = arc
                self._place_inhibits[source].append(target)
            else:
                self._inputs[target][source] = arc
                self._place_out[source].append(target)
        elif source in self._transitions and target in self._places:
            if inhibitor:
                raise PetriNetError("inhibitor arcs must run place -> transition")
            self._outputs[source][target] = arc
            self._place_in[target].append(source)
        else:
            raise UnknownNodeError(
                f"arc {source!r}->{target!r} must connect an existing place and transition"
            )
        return arc

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def places(self) -> Tuple[Place, ...]:
        return tuple(self._places.values())

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        return tuple(self._transitions.values())

    def place(self, name: str) -> Place:
        try:
            return self._places[name]
        except KeyError:
            raise UnknownNodeError(f"no place named {name!r}") from None

    def transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise UnknownNodeError(f"no transition named {name!r}") from None

    def has_place(self, name: str) -> bool:
        return name in self._places

    def has_transition(self, name: str) -> bool:
        return name in self._transitions

    def inputs(self, transition: str) -> Dict[str, int]:
        """Map of input place name -> arc weight for ``transition``."""
        self.transition(transition)
        return {p: a.weight for p, a in self._inputs[transition].items()}

    def outputs(self, transition: str) -> Dict[str, int]:
        """Map of output place name -> arc weight for ``transition``."""
        self.transition(transition)
        return {p: a.weight for p, a in self._outputs[transition].items()}

    def inhibitors(self, transition: str) -> Dict[str, int]:
        self.transition(transition)
        return {p: a.weight for p, a in self._inhibitors[transition].items()}

    def preset(self, place: str) -> Tuple[str, ...]:
        """Transitions that output into ``place``."""
        self.place(place)
        return tuple(self._place_in[place])

    def postset(self, place: str) -> Tuple[str, ...]:
        """Transitions consuming from ``place`` (via normal arcs)."""
        self.place(place)
        return tuple(self._place_out[place])

    def inhibited_by(self, place: str) -> Tuple[str, ...]:
        """Transitions with an inhibitor arc from ``place``."""
        self.place(place)
        return tuple(self._place_inhibits[place])

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------

    def set_marking(self, counts: Mapping[str, int]) -> None:
        """Set both the current and the initial marking."""
        for name in counts:
            self.place(name)
        self.marking = Marking(counts)
        self.initial_marking = self.marking

    def reset(self) -> None:
        """Restore the initial marking."""
        self.marking = self.initial_marking

    def is_enabled(self, transition: str, marking: Optional[Marking] = None) -> bool:
        """True if ``transition`` may fire under ``marking`` (default: current)."""
        m = self.marking if marking is None else marking
        self.transition(transition)
        for place, arc in self._inputs[transition].items():
            if m[place] < arc.weight:
                return False
        for place, arc in self._inhibitors[transition].items():
            if m[place] >= arc.weight:
                return False
        # capacity constraints on output places
        for place, arc in self._outputs[transition].items():
            cap = self._places[place].capacity
            if cap is not None:
                consumed = self._inputs[transition].get(place)
                after = m[place] + arc.weight - (consumed.weight if consumed else 0)
                if after > cap:
                    return False
        return True

    def enabled(self, marking: Optional[Marking] = None) -> List[str]:
        """Names of all transitions enabled under ``marking``."""
        return [t for t in self._transitions if self.is_enabled(t, marking)]

    def fire_delta(self, transition: str) -> Dict[str, int]:
        """Token delta produced by firing ``transition`` (no enabling check)."""
        delta: Dict[str, int] = {}
        for place, arc in self._inputs[transition].items():
            delta[place] = delta.get(place, 0) - arc.weight
        for place, arc in self._outputs[transition].items():
            delta[place] = delta.get(place, 0) + arc.weight
        return delta

    def successor(self, marking: Marking, transition: str) -> Marking:
        """Marking reached by firing ``transition`` from ``marking``."""
        if not self.is_enabled(transition, marking):
            raise NotEnabledError(
                f"transition {transition!r} is not enabled in {marking!r}"
            )
        return marking.with_delta(self.fire_delta(transition))

    def fire(self, transition: str) -> Marking:
        """Fire ``transition`` from the current marking, updating it."""
        self.marking = self.successor(self.marking, transition)
        return self.marking

    def fire_sequence(self, transitions: Iterable[str]) -> Marking:
        """Fire a sequence of transitions in order; atomic on failure.

        If any firing is not enabled the current marking is left unchanged
        and :class:`NotEnabledError` is raised.
        """
        m = self.marking
        for t in transitions:
            m = self.successor(m, t)
        self.marking = m
        return m

    def run(
        self,
        *,
        max_steps: int = 10_000,
        chooser: Optional[callable] = None,
    ) -> List[str]:
        """Fire enabled transitions until quiescence or ``max_steps``.

        ``chooser`` picks among enabled transitions (default: first by
        insertion order — deterministic). Returns the fired sequence.
        """
        fired: List[str] = []
        for _ in range(max_steps):
            enabled = self.enabled()
            if not enabled:
                break
            choice = enabled[0] if chooser is None else chooser(enabled)
            self.fire(choice)
            fired.append(choice)
        return fired

    # ------------------------------------------------------------------
    # linear-algebraic view (Murata section V)
    # ------------------------------------------------------------------

    def incidence_matrix(self) -> Tuple[List[str], List[str], List[List[int]]]:
        """Return (place_names, transition_names, C) with C[i][j] = net
        token change of place i when transition j fires.

        Inhibitor arcs do not contribute (they carry no tokens).
        """
        place_names = list(self._places)
        transition_names = list(self._transitions)
        index = {p: i for i, p in enumerate(place_names)}
        matrix = [[0] * len(transition_names) for _ in place_names]
        for j, t in enumerate(transition_names):
            for place, arc in self._inputs[t].items():
                matrix[index[place]][j] -= arc.weight
            for place, arc in self._outputs[t].items():
                matrix[index[place]][j] += arc.weight
        return place_names, transition_names, matrix

    def has_inhibitors(self) -> bool:
        return any(self._inhibitors[t] for t in self._transitions)

    # ------------------------------------------------------------------
    # structural checks
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`PetriNetError` on structural problems.

        Checks that every transition has at least one input or output arc
        (isolated transitions are almost always construction bugs) and that
        capacities are not already violated by the current marking.
        """
        for t in self._transitions:
            if not self._inputs[t] and not self._outputs[t] and not self._inhibitors[t]:
                raise PetriNetError(f"transition {t!r} is isolated (no arcs)")
        for p, place in self._places.items():
            if place.capacity is not None and self.marking[p] > place.capacity:
                raise PetriNetError(
                    f"place {p!r} holds {self.marking[p]} tokens, capacity {place.capacity}"
                )

    def copy(self, *, name: Optional[str] = None) -> "PetriNet":
        """Structural deep copy, including current and initial markings."""
        clone = PetriNet(name or self.name)
        for p in self._places.values():
            clone.add_place(p.name, capacity=p.capacity, label=p.label)
        for t in self._transitions.values():
            clone.add_transition(t.name, priority=t.priority, label=t.label)
        for t in self._transitions:
            for arc in itertools.chain(
                self._inputs[t].values(),
                self._outputs[t].values(),
                self._inhibitors[t].values(),
            ):
                clone.add_arc(
                    arc.source, arc.target, weight=arc.weight, inhibitor=arc.inhibitor
                )
        clone.marking = self.marking
        clone.initial_marking = self.initial_marking
        return clone

    def __repr__(self) -> str:
        return (
            f"PetriNet({self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)})"
        )
