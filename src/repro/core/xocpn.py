"""Extended Object Composition Petri Nets (XOCPN) — Woo, Qazi & Ghafoor.

XOCPN extends OCPN with an explicit *communication subnet*: before a media
object can play, its data must be transferred over a network channel with a
given bandwidth, and channels are set up "according to the required QoS of
the data" (paper §1). This module models that with, per media leaf ``x``:

* a **request place** ``REQ_x`` — the transfer has been ordered;
* a **channel place** ``C_x`` with duration ``size / bandwidth`` — the
  transfer in flight;
* a **data-ready place** ``D_x`` — the object is buffered at the client;
* a **channel token place** ``CH_<k>`` per channel — channel capacity, so
  objects assigned to the same channel transfer one at a time.

Two strategies are compiled:

* ``prefetch`` (the XOCPN idea): all transfers are requested at presentation
  start, in parallel with playout; a leaf's playout transition additionally
  waits on ``D_x``, so a late transfer *stalls* playout measurably.
* ``lazy`` (the strawman OCPN behaviour): the transfer is requested only
  when the schedule reaches the leaf, so every transfer time lands on the
  critical path.

:func:`measure_stalls` quantifies the difference — reproduced as ablation
bench A2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .intervals import Interval
from .ocpn import (
    CompiledOCPN,
    MediaLeaf,
    OCPNCompiler,
    Spec,
    SpecError,
    spec_intervals,
    spec_leaves,
)


@dataclass(frozen=True)
class Channel:
    """A network channel with a fixed bandwidth (bytes/second)."""

    name: str
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"channel {self.name!r}: bandwidth must be positive")

    def transfer_time(self, size: float) -> float:
        return size / self.bandwidth


@dataclass
class QoSRequirement:
    """Per-object resource requirement: bytes to move before playout."""

    size: float
    channel: str

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be >= 0")


@dataclass
class CompiledXOCPN(CompiledOCPN):
    """A compiled XOCPN; adds the data-ready place map for inspection."""

    data_places: Dict[str, str] = field(default_factory=dict)
    channel_places: Dict[str, str] = field(default_factory=dict)
    strategy: str = "prefetch"


class XOCPNCompiler(OCPNCompiler):
    """OCPN compiler that threads channel/QoS places through every leaf.

    Parameters
    ----------
    channels:
        Available channels.
    requirements:
        Map leaf name -> :class:`QoSRequirement`. Leaves without an entry
        need no transfer (e.g. locally generated text).
    strategy:
        ``"prefetch"`` or ``"lazy"`` (see module docstring).
    """

    def __init__(
        self,
        channels: Mapping[str, Channel],
        requirements: Mapping[str, QoSRequirement],
        *,
        strategy: str = "prefetch",
        name: str = "xocpn",
    ) -> None:
        super().__init__(name)
        if strategy not in ("prefetch", "lazy"):
            raise SpecError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.channels = dict(channels)
        self.requirements = dict(requirements)
        for leaf, req in self.requirements.items():
            if req.channel not in self.channels:
                raise SpecError(
                    f"leaf {leaf!r} assigned to unknown channel {req.channel!r}"
                )
        self._channel_places: Dict[str, str] = {}
        self._data_places: Dict[str, str] = {}
        self._prefetch_requests: List[str] = []  # REQ places to fill at start

    def _channel_place(self, channel: str) -> str:
        """The capacity-token place for ``channel`` (created on demand)."""
        if channel not in self._channel_places:
            place = f"CH_{channel}"
            self._net.add_place(place, label=f"channel {channel}")
            self._extra_marking[place] = 1
            self._channel_places[channel] = place
        return self._channel_places[channel]

    def _compile_fetch(self, leaf: MediaLeaf, req: QoSRequirement) -> Tuple[str, str]:
        """Build REQ -> (channel held) C -> D pipeline; return (REQ, D)."""
        channel = self.channels[req.channel]
        ch_place = self._channel_place(req.channel)
        req_place = f"REQ_{leaf.name}"
        data_place = f"D_{leaf.name}"
        self._net.add_place(req_place, label=f"request {leaf.name}")
        self._net.add_place(data_place, label=f"data ready {leaf.name}")
        c_place = f"C_{leaf.name}"
        self._net.add_place(c_place, label=f"transfer {leaf.name}")
        self._durations[c_place] = channel.transfer_time(req.size)
        t_fs = self._transition(f"t_fetch_{leaf.name}")
        t_fe = self._transition(f"t_ready_{leaf.name}")
        self._net.add_arc(req_place, t_fs)
        self._net.add_arc(ch_place, t_fs)
        self._net.add_arc(t_fs, c_place)
        self._net.add_arc(c_place, t_fe)
        self._net.add_arc(t_fe, data_place)
        self._net.add_arc(t_fe, ch_place)
        self._data_places[leaf.name] = data_place
        return req_place, data_place

    def _compile_leaf(self, spec: MediaLeaf) -> Tuple[str, str]:
        req = self.requirements.get(spec.name)
        if req is None or req.size == 0:
            return super()._compile_leaf(spec)

        req_place, data_place = self._compile_fetch(spec, req)
        if self.strategy == "prefetch":
            # playout entry additionally waits on the data token
            t_in, t_out = super()._compile_leaf(spec)
            self._net.add_arc(data_place, t_in)
            self._prefetch_requests.append(req_place)
            return t_in, t_out
        # lazy: entry orders the fetch; playout starts once data arrives
        t_in = self._transition("t_in")
        self._net.add_arc(t_in, req_place)
        t_play, t_out = super()._compile_leaf(spec)
        self._net.add_arc(data_place, t_play)
        # t_play must not fire before t_in scheduled it: chain them
        self._link(t_in, t_play)
        return t_in, t_out

    def _after_start(self, t_begin: str) -> None:
        for req_place in self._prefetch_requests:
            self._net.add_arc(t_begin, req_place)

    def compile(self, spec: Spec) -> CompiledXOCPN:
        base = super().compile(spec)
        return CompiledXOCPN(
            timed_net=base.timed_net,
            media_places=base.media_places,
            start_place=base.start_place,
            done_place=base.done_place,
            spec=base.spec,
            data_places=dict(self._data_places),
            channel_places=dict(self._channel_places),
            strategy=self.strategy,
        )


def compile_xocpn(
    spec: Spec,
    channels: Mapping[str, Channel],
    requirements: Mapping[str, QoSRequirement],
    *,
    strategy: str = "prefetch",
    name: str = "xocpn",
) -> CompiledXOCPN:
    return XOCPNCompiler(channels, requirements, strategy=strategy, name=name).compile(spec)


@dataclass
class StallReport:
    """Playout delay versus the ideal (infinite-bandwidth) schedule."""

    per_leaf: Dict[str, float]
    makespan: float
    ideal_makespan: float

    @property
    def total_stall(self) -> float:
        return sum(self.per_leaf.values())

    @property
    def max_stall(self) -> float:
        return max(self.per_leaf.values(), default=0.0)

    @property
    def stalled_leaves(self) -> List[str]:
        """Leaves delayed by more than a perceptual threshold (1 ms)."""
        return [name for name, s in self.per_leaf.items() if s > 1e-3]


def measure_stalls(compiled: CompiledXOCPN, *, tol: float = 1e-9) -> StallReport:
    """Execute and report per-leaf start delay vs the QoS-free schedule."""
    reference = spec_intervals(compiled.spec)
    execution = compiled.execute()
    per_leaf: Dict[str, float] = {}
    for leaf, place in compiled.media_places.items():
        intervals = execution.playout_intervals(place)
        if not intervals:
            raise SpecError(f"leaf {leaf!r} never played")
        measured_start = intervals[0][0]
        per_leaf[leaf] = max(0.0, measured_start - reference[leaf].start)
    ideal = max(i.end for i in reference.values())
    return StallReport(
        per_leaf=per_leaf, makespan=execution.makespan(), ideal_makespan=ideal
    )
