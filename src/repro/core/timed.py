"""Timed Petri nets with place durations (OCPN execution semantics).

In the timed model used by OCPN/XOCPN and the paper's extended net, *places*
carry durations: a token entering place ``p`` is **locked** for ``tau(p)``
seconds (the media object is playing) and only afterwards becomes available
to output transitions. Transitions fire instantaneously as soon as all their
input tokens are unlocked (earliest-firing semantics), which is what makes
the net a deterministic schedule for a pre-orchestrated presentation.

:class:`TimedPetriNet` couples a :class:`~repro.core.petri.PetriNet`
structure with a duration map; :class:`TimedExecution` runs it and records a
:class:`~repro.core.scheduler.PresentationTimeline`-compatible event list:
``(time, kind, name)`` with kinds ``"enter"`` (token/playout starts),
``"exit"`` (playout ends / token unlocked) and ``"fire"``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .petri import Marking, PetriNet, PetriNetError


@dataclass(frozen=True)
class TimedEvent:
    """One event in a timed execution trace."""

    time: float
    kind: str  # "enter" | "exit" | "fire"
    name: str  # place name for enter/exit, transition name for fire

    def __post_init__(self) -> None:
        if self.kind not in ("enter", "exit", "fire"):
            raise ValueError(f"unknown event kind {self.kind!r}")


class TimedPetriNet:
    """A Petri net whose places hold tokens for a fixed duration.

    Parameters
    ----------
    net:
        The underlying untimed structure.
    durations:
        Map place name -> playout duration in seconds. Places absent from
        the map are instantaneous (duration 0), e.g. control places.
    """

    def __init__(
        self, net: PetriNet, durations: Optional[Mapping[str, float]] = None
    ) -> None:
        self.net = net
        self._durations: Dict[str, float] = {}
        for place, tau in (durations or {}).items():
            self.set_duration(place, tau)

    def set_duration(self, place: str, tau: float) -> None:
        self.net.place(place)  # validates existence
        if tau < 0:
            raise ValueError(f"duration for {place!r} must be >= 0")
        self._durations[place] = float(tau)

    def duration(self, place: str) -> float:
        return self._durations.get(place, 0.0)

    @property
    def durations(self) -> Dict[str, float]:
        return dict(self._durations)

    def execute(
        self,
        *,
        max_firings: int = 100_000,
        stop_time: Optional[float] = None,
        rate: float = 1.0,
    ) -> "TimedExecution":
        """Run to quiescence under earliest-firing semantics.

        ``rate`` scales playback speed (2.0 = double speed — used by the
        extended net's speed-change interaction). Returns the completed
        :class:`TimedExecution`.
        """
        execution = TimedExecution(self, rate=rate)
        execution.run(max_firings=max_firings, stop_time=stop_time)
        return execution


class TimedExecution:
    """Stepwise executor for a :class:`TimedPetriNet`.

    The executor can be driven to completion with :meth:`run` or advanced
    event-by-event with :meth:`step`, which the interactive playback engine
    uses to interleave user actions (pause/skip) with net evolution.
    """

    def __init__(self, timed_net: TimedPetriNet, *, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.timed_net = timed_net
        self.net = timed_net.net
        self.rate = rate
        self.now = 0.0
        self.events: List[TimedEvent] = []
        # (unlock_time, seq, place) heap of locked tokens
        self._locked: List[Tuple[float, int, str]] = []
        self._seq = itertools.count()
        # unlocked token counts per place
        self._available: Dict[str, int] = {}
        self.firings = 0
        # event-driven enabling: _armed holds transitions currently enabled
        # under the available marking; a transition's status can only change
        # when a place in its neighbourhood changes, so only those are
        # re-checked (keeps large compiled nets near-linear to execute)
        self._order: Dict[str, int] = {
            t.name: i for i, t in enumerate(self.net.transitions)
        }
        self._armed: set = set()
        self._prioritized = hasattr(self.net, "priority_enabled")
        self._recheck(self._order)
        for place, count in self.net.initial_marking.items():
            for _ in range(count):
                self._admit_token(place, self.now)

    # ------------------------------------------------------------------

    def _recheck(self, transitions) -> None:
        """Refresh the armed set for the given transitions."""
        marking = Marking(self._available)
        for t in transitions:
            if self.net.is_enabled(t, marking):
                self._armed.add(t)
            else:
                self._armed.discard(t)

    def _place_changed(self, place: str) -> None:
        """Re-check the neighbourhood of a place whose count changed.

        Consumers (postset) may gain/lose enabling; producers (preset)
        only matter when the place has a capacity bound.
        """
        affected = set(self.net.postset(place))
        affected.update(self.net.inhibited_by(place))
        if self.net.place(place).capacity is not None:
            affected.update(self.net.preset(place))
        self._recheck(affected)

    def _admit_token(self, place: str, when: float) -> None:
        """A token enters ``place`` at time ``when`` and locks for tau."""
        tau = self.timed_net.duration(place) / self.rate
        self.events.append(TimedEvent(when, "enter", place))
        if tau <= 0:
            self._available[place] = self._available.get(place, 0) + 1
            self.events.append(TimedEvent(when, "exit", place))
            self._place_changed(place)
        else:
            heapq.heappush(self._locked, (when + tau, next(self._seq), place))

    def _release_until(self, when: float) -> None:
        """Unlock every token whose playout completes by ``when``."""
        while self._locked and self._locked[0][0] <= when + 1e-12:
            unlock_time, _, place = heapq.heappop(self._locked)
            self._available[place] = self._available.get(place, 0) + 1
            self.events.append(TimedEvent(unlock_time, "exit", place))
            self._place_changed(place)

    def _enabled(self) -> List[str]:
        if not self._armed:
            return []
        armed = sorted(self._armed, key=self._order.__getitem__)
        if self._prioritized:
            # apply the prioritized net's masking rule over the armed set
            top = max(self.net.transition(t).priority for t in armed)
            armed = [t for t in armed if self.net.transition(t).priority == top]
        return armed

    @property
    def available_marking(self) -> Marking:
        """Unlocked tokens only — what transitions can see right now."""
        return Marking(self._available)

    @property
    def pending_unlocks(self) -> int:
        return len(self._locked)

    def is_quiescent(self) -> bool:
        return not self._locked and not self._enabled()

    # ------------------------------------------------------------------

    def step(self) -> Optional[TimedEvent]:
        """Advance by one firing (or one unlock if nothing is enabled).

        Returns the ``fire`` event, or ``None`` when the net is quiescent.
        """
        self._release_until(self.now)
        enabled = self._enabled()
        while not enabled and self._locked:
            self.now = max(self.now, self._locked[0][0])
            self._release_until(self.now)
            enabled = self._enabled()
        if not enabled:
            return None
        transition = enabled[0]
        return self._fire(transition)

    def _fire(self, transition: str) -> TimedEvent:
        marking = Marking(self._available)
        if not self.net.is_enabled(transition, marking):
            raise PetriNetError(f"{transition!r} not enabled at t={self.now}")
        for place, weight in self.net.inputs(transition).items():
            self._available[place] -= weight
        for place in self.net.inputs(transition):
            self._place_changed(place)
        event = TimedEvent(self.now, "fire", transition)
        self.events.append(event)
        self.firings += 1
        for place, weight in self.net.outputs(transition).items():
            for _ in range(weight):
                self._admit_token(place, self.now)
        return event

    def fire_external(self, transition: str) -> TimedEvent:
        """Force-fire an interaction transition at the current time.

        Used by the extended net: user actions (pause, skip) are transitions
        whose tokens come from a control sub-net; they fire when the *user*
        acts, not at the earliest moment.
        """
        self._release_until(self.now)
        return self._fire(transition)

    def advance_to(self, when: float) -> None:
        """Move the clock forward, unlocking tokens along the way."""
        if when < self.now - 1e-12:
            raise ValueError("time cannot go backwards")
        self.now = max(self.now, when)
        self._release_until(self.now)

    def run(
        self, *, max_firings: int = 100_000, stop_time: Optional[float] = None
    ) -> None:
        """Fire until quiescence, ``max_firings``, or ``stop_time``."""
        while self.firings < max_firings:
            if stop_time is not None and self.now > stop_time:
                break
            if self.step() is None:
                break
        # drain remaining unlocks so exit events are complete
        if stop_time is None:
            while self._locked:
                self.now = self._locked[0][0]
                self._release_until(self.now)
        else:
            self._release_until(stop_time)

    # ------------------------------------------------------------------
    # trace queries
    # ------------------------------------------------------------------

    def makespan(self) -> float:
        """Total presentation duration (time of the last event)."""
        return max((e.time for e in self.events), default=0.0)

    def playout_intervals(self, place: str) -> List[Tuple[float, float]]:
        """(start, end) pairs for each token playout in ``place``."""
        starts: List[float] = []
        intervals: List[Tuple[float, float]] = []
        for event in self.events:
            if event.name != place:
                continue
            if event.kind == "enter":
                starts.append(event.time)
            elif event.kind == "exit":
                intervals.append((starts.pop(0), event.time))
        return intervals

    def firing_times(self, transition: str) -> List[float]:
        return [e.time for e in self.events if e.kind == "fire" and e.name == transition]

    def first_start(self, place: str) -> Optional[float]:
        for event in self.events:
            if event.kind == "enter" and event.name == place:
                return event.time
        return None
