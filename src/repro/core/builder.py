"""Fluent construction helpers for nets and presentation specs.

Two small DSLs:

* :class:`NetBuilder` — chainable construction of raw Petri nets, used
  heavily in tests ("place p1 with 1 token, transition t, arc p1->t").
* :class:`PresentationBuilder` — builds the segment list of a lecture
  (each segment = slide image shown in parallel with a video interval,
  plus optional annotations), the structure Figures 6–7 of the paper show.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .extended import ExtendedPresentation, Segment
from .intervals import TemporalRelation
from .ocpn import Composite, MediaLeaf, Spec, SpecError, parallel, sequence
from .petri import PetriNet


class NetBuilder:
    """Chainable Petri-net construction.

    Examples
    --------
    >>> net = (NetBuilder("demo")
    ...        .place("p", tokens=1)
    ...        .transition("t")
    ...        .arc("p", "t")
    ...        .build())
    >>> net.enabled()
    ['t']
    """

    def __init__(self, name: str = "net") -> None:
        self._net = PetriNet(name)

    def place(self, name: str, *, tokens: int = 0, capacity: Optional[int] = None,
              label: str = "") -> "NetBuilder":
        self._net.add_place(name, tokens=tokens, capacity=capacity, label=label)
        return self

    def places(self, *names: str) -> "NetBuilder":
        for name in names:
            self._net.add_place(name)
        return self

    def transition(self, name: str, *, priority: int = 0, label: str = "") -> "NetBuilder":
        self._net.add_transition(name, priority=priority, label=label)
        return self

    def transitions(self, *names: str) -> "NetBuilder":
        for name in names:
            self._net.add_transition(name)
        return self

    def arc(self, source: str, target: str, *, weight: int = 1,
            inhibitor: bool = False) -> "NetBuilder":
        self._net.add_arc(source, target, weight=weight, inhibitor=inhibitor)
        return self

    def chain(self, *nodes: str) -> "NetBuilder":
        """Arc each consecutive pair: ``chain("p1","t1","p2")``."""
        for src, dst in zip(nodes, nodes[1:]):
            self._net.add_arc(src, dst)
        return self

    def marking(self, **tokens: int) -> "NetBuilder":
        self._net.set_marking(tokens)
        return self

    def build(self) -> PetriNet:
        self._net.validate()
        return self._net


class PresentationBuilder:
    """Builds a lecture presentation segment by segment.

    Each :meth:`slide` call adds one synchronization segment: the slide
    image displayed for the whole segment, the video/audio interval playing
    in parallel, and any annotations shown DURING the segment at an offset.
    """

    def __init__(self, name: str = "lecture") -> None:
        self.name = name
        self._segments: List[Segment] = []
        self._counter = 0

    def slide(
        self,
        duration: float,
        *,
        name: Optional[str] = None,
        with_audio: bool = False,
        annotations: Sequence[tuple] = (),
    ) -> "PresentationBuilder":
        """Add a segment of ``duration`` seconds.

        ``annotations`` is a sequence of ``(label, offset, length)`` shown
        DURING the segment. Raises :class:`SpecError` if an annotation does
        not fit inside the segment.
        """
        if duration <= 0:
            raise SpecError("segment duration must be positive")
        index = self._counter
        self._counter += 1
        seg_name = name or f"slide{index}"
        video = MediaLeaf(f"video_{seg_name}", duration)
        image = MediaLeaf(f"image_{seg_name}", duration)
        parts: List[Spec] = [video, image]
        if with_audio:
            parts.append(MediaLeaf(f"audio_{seg_name}", duration))
        spec: Spec = parallel(*parts)
        for label, offset, length in annotations:
            if offset <= 0 or offset + length >= duration:
                raise SpecError(
                    f"annotation {label!r} ({offset}+{length}) does not fit "
                    f"strictly inside segment of {duration}s"
                )
            spec = Composite(
                TemporalRelation.DURING,
                MediaLeaf(f"note_{seg_name}_{label}", length),
                spec,
                delay=offset,
            )
        self._segments.append(Segment(seg_name, spec))
        return self

    def segment(self, name: str, spec: Spec) -> "PresentationBuilder":
        """Add a fully custom segment."""
        self._segments.append(Segment(name, spec))
        return self

    def build(self) -> ExtendedPresentation:
        return ExtendedPresentation(self._segments, name=self.name)
