"""Behavioural and structural analysis of Petri nets.

Implements the classical decision procedures from Murata's survey that the
paper leans on when it claims Petri nets give the model "both practice and
theory":

* :func:`reachability_graph` — explicit-state exploration with a state cap.
* :func:`coverability_graph` — Karp–Miller tree with ω-acceleration, usable
  on unbounded nets.
* :func:`is_bounded`, :func:`is_safe` — token-count limits.
* :func:`find_deadlocks`, :func:`is_deadlock_free` — dead markings.
* :func:`is_live` — L4-liveness over the (finite) reachability graph.
* :func:`p_invariants`, :func:`t_invariants` — integer kernel of the
  incidence matrix via Fraction-based Gaussian elimination.

All functions take the net's *initial marking* as the starting point unless
an explicit marking is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .petri import Marking, PetriNet, PetriNetError

#: Sentinel token count meaning "unbounded" in coverability markings.
OMEGA = -1


class StateSpaceLimitExceeded(PetriNetError):
    """Raised when reachability exploration exceeds the state cap."""


@dataclass
class ReachabilityGraph:
    """Explicit reachability graph.

    Attributes
    ----------
    initial:
        The starting marking.
    markings:
        All reachable markings (including ``initial``).
    edges:
        ``(source_marking, transition_name, target_marking)`` triples.
    """

    initial: Marking
    markings: Set[Marking] = field(default_factory=set)
    edges: List[Tuple[Marking, str, Marking]] = field(default_factory=list)

    def successors(self, marking: Marking) -> List[Tuple[str, Marking]]:
        return [(t, dst) for src, t, dst in self.edges if src == marking]

    def transitions_fired(self) -> Set[str]:
        """Every transition that fires somewhere in the graph."""
        return {t for _, t, _ in self.edges}

    def dead_markings(self) -> List[Marking]:
        """Markings with no outgoing edge."""
        sources = {src for src, _, _ in self.edges}
        return [m for m in self.markings if m not in sources]

    def __len__(self) -> int:
        return len(self.markings)


def reachability_graph(
    net: PetriNet,
    *,
    initial: Optional[Marking] = None,
    max_states: int = 100_000,
) -> ReachabilityGraph:
    """Breadth-first construction of the reachability graph.

    Raises :class:`StateSpaceLimitExceeded` if more than ``max_states``
    distinct markings are found (the net may be unbounded — use
    :func:`coverability_graph` instead).
    """
    start = net.initial_marking if initial is None else initial
    graph = ReachabilityGraph(initial=start)
    graph.markings.add(start)
    frontier = [start]
    while frontier:
        marking = frontier.pop()
        for t in net.enabled(marking):
            nxt = marking.with_delta(net.fire_delta(t))
            graph.edges.append((marking, t, nxt))
            if nxt not in graph.markings:
                graph.markings.add(nxt)
                if len(graph.markings) > max_states:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_states} reachable markings"
                    )
                frontier.append(nxt)
    return graph


# ----------------------------------------------------------------------
# coverability (Karp-Miller)
# ----------------------------------------------------------------------


def _omega_marking(counts: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((p, n) for p, n in counts.items() if n != 0))


@dataclass
class CoverabilityGraph:
    """Karp–Miller coverability graph over ω-extended markings.

    Each node is a tuple of ``(place, count)`` pairs where ``count`` may be
    :data:`OMEGA` to denote "arbitrarily many".
    """

    initial: Tuple[Tuple[str, int], ...]
    nodes: Set[Tuple[Tuple[str, int], ...]] = field(default_factory=set)
    edges: List[Tuple[tuple, str, tuple]] = field(default_factory=list)

    def has_omega(self) -> bool:
        return any(n == OMEGA for node in self.nodes for _, n in node)

    def unbounded_places(self) -> Set[str]:
        return {p for node in self.nodes for p, n in node if n == OMEGA}


def coverability_graph(
    net: PetriNet, *, initial: Optional[Marking] = None, max_nodes: int = 50_000
) -> CoverabilityGraph:
    """Build the Karp–Miller coverability graph.

    Inhibitor-arc nets are rejected: coverability is undecidable for them.
    """
    if net.has_inhibitors():
        raise PetriNetError("coverability analysis does not support inhibitor arcs")

    start_marking = net.initial_marking if initial is None else initial
    start = _omega_marking(dict(start_marking.items()))
    graph = CoverabilityGraph(initial=start)
    graph.nodes.add(start)
    # ancestry paths for the acceleration step
    paths: Dict[tuple, List[tuple]] = {start: []}
    frontier = [start]

    def enabled_in(node: tuple) -> List[str]:
        counts = dict(node)
        result = []
        for t in (tr.name for tr in net.transitions):
            ok = True
            for place, weight in net.inputs(t).items():
                n = counts.get(place, 0)
                if n != OMEGA and n < weight:
                    ok = False
                    break
            if ok:
                result.append(t)
        return result

    def fire_in(node: tuple, t: str) -> tuple:
        counts = dict(node)
        for place, weight in net.inputs(t).items():
            if counts.get(place, 0) != OMEGA:
                counts[place] = counts.get(place, 0) - weight
        for place, weight in net.outputs(t).items():
            if counts.get(place, 0) != OMEGA:
                counts[place] = counts.get(place, 0) + weight
        return _omega_marking(counts)

    def covers_strictly(big: tuple, small: tuple) -> bool:
        b, s = dict(big), dict(small)
        places = set(b) | set(s)
        ge_all, gt_some = True, False
        for p in places:
            nb, ns = b.get(p, 0), s.get(p, 0)
            if nb == OMEGA:
                if ns != OMEGA:
                    gt_some = True
                continue
            if ns == OMEGA or nb < ns:
                ge_all = False
                break
            if nb > ns:
                gt_some = True
        return ge_all and gt_some

    while frontier:
        node = frontier.pop()
        for t in enabled_in(node):
            nxt = fire_in(node, t)
            # acceleration: any strictly-covered ancestor pumps to omega
            accelerated = dict(nxt)
            for ancestor in paths[node] + [node]:
                if covers_strictly(nxt, ancestor):
                    anc = dict(ancestor)
                    for p, n in list(accelerated.items()):
                        if n != OMEGA and n > anc.get(p, 0):
                            accelerated[p] = OMEGA
            nxt = _omega_marking(accelerated)
            graph.edges.append((node, t, nxt))
            if nxt not in graph.nodes:
                graph.nodes.add(nxt)
                if len(graph.nodes) > max_nodes:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_nodes} coverability nodes"
                    )
                paths[nxt] = paths[node] + [node]
                frontier.append(nxt)
    return graph


# ----------------------------------------------------------------------
# boundedness / safety / liveness / deadlock
# ----------------------------------------------------------------------


def is_bounded(net: PetriNet, *, max_nodes: int = 50_000) -> bool:
    """True if no place can accumulate unboundedly many tokens."""
    graph = coverability_graph(net, max_nodes=max_nodes)
    return not graph.has_omega()


def bound(net: PetriNet, *, max_states: int = 100_000) -> int:
    """The k such that the net is k-bounded (max tokens in any place)."""
    graph = reachability_graph(net, max_states=max_states)
    return max(
        (n for m in graph.markings for n in m.values()),
        default=0,
    )


def is_safe(net: PetriNet, *, max_states: int = 100_000) -> bool:
    """True if every place holds at most one token in every reachable marking.

    OCPNs are safe by construction; this is a key sanity check for the
    compiled multimedia nets.
    """
    return bound(net, max_states=max_states) <= 1


def find_deadlocks(
    net: PetriNet,
    *,
    accepting: Optional[Sequence[Marking]] = None,
    max_states: int = 100_000,
) -> List[Marking]:
    """Reachable markings with no enabled transition.

    ``accepting`` markings (e.g. "presentation finished") are excluded —
    terminating nets legitimately end in them.
    """
    graph = reachability_graph(net, max_states=max_states)
    dead = graph.dead_markings()
    if accepting:
        dead = [m for m in dead if m not in set(accepting)]
    return dead


def is_deadlock_free(
    net: PetriNet,
    *,
    accepting: Optional[Sequence[Marking]] = None,
    max_states: int = 100_000,
) -> bool:
    return not find_deadlocks(net, accepting=accepting, max_states=max_states)


def is_live(net: PetriNet, *, max_states: int = 100_000) -> bool:
    """L4-liveness: from every reachable marking, every transition can
    eventually fire again.

    Decided over the explicit reachability graph: for each transition t,
    every reachable marking must be able to reach some marking enabling t.
    """
    graph = reachability_graph(net, max_states=max_states)
    markings = list(graph.markings)
    succ: Dict[Marking, List[Marking]] = {m: [] for m in markings}
    for src, _, dst in graph.edges:
        succ[src].append(dst)

    transition_names = [t.name for t in net.transitions]
    enabling: Dict[str, Set[Marking]] = {
        t: {m for m in markings if net.is_enabled(t, m)} for t in transition_names
    }
    for t in transition_names:
        if not enabling[t]:
            return False  # dead transition
        # backward closure of "can reach a marking enabling t"
        can = set(enabling[t])
        changed = True
        while changed:
            changed = False
            for m in markings:
                if m not in can and any(s in can for s in succ[m]):
                    can.add(m)
                    changed = True
        if len(can) != len(markings):
            return False
    return True


def is_reversible(net: PetriNet, *, max_states: int = 100_000) -> bool:
    """True if the initial marking is reachable from every reachable marking."""
    graph = reachability_graph(net, max_states=max_states)
    markings = list(graph.markings)
    succ: Dict[Marking, List[Marking]] = {m: [] for m in markings}
    for src, _, dst in graph.edges:
        succ[src].append(dst)
    target = graph.initial
    can = {target}
    changed = True
    while changed:
        changed = False
        for m in markings:
            if m not in can and any(s in can for s in succ[m]):
                can.add(m)
                changed = True
    return len(can) == len(markings)


def is_reachable(
    net: PetriNet, goal: Marking, *, max_states: int = 100_000
) -> bool:
    """Explicit-state test that ``goal`` is reachable from the initial marking."""
    graph = reachability_graph(net, max_states=max_states)
    return goal in graph.markings


def shortest_firing_sequence(
    net: PetriNet, goal: Marking, *, max_states: int = 100_000
) -> Optional[List[str]]:
    """A shortest transition sequence from the initial marking to ``goal``.

    Breadth-first over markings; ``None`` when unreachable. The witness is
    invaluable when a test asserts reachability and fails — it shows *how*
    the net gets somewhere (or that it cannot).
    """
    start = net.initial_marking
    if start == goal:
        return []
    parents: Dict[Marking, Tuple[Marking, str]] = {}
    visited = {start}
    frontier = [start]
    while frontier:
        next_frontier: List[Marking] = []
        for marking in frontier:
            for t in net.enabled(marking):
                nxt = marking.with_delta(net.fire_delta(t))
                if nxt in visited:
                    continue
                visited.add(nxt)
                if len(visited) > max_states:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_states} markings explored"
                    )
                parents[nxt] = (marking, t)
                if nxt == goal:
                    path: List[str] = []
                    cursor = nxt
                    while cursor != start:
                        cursor, fired = parents[cursor]
                        path.append(fired)
                    return list(reversed(path))
                next_frontier.append(nxt)
        frontier = next_frontier
    return None


def is_free_choice(net: PetriNet) -> bool:
    """True for (extended) free-choice nets: any two transitions sharing an
    input place have *identical* presets.

    Free choice is the hypothesis of Commoner's theorem — when
    :func:`repro.core.structural.commoner_check` passes **and** the net is
    free-choice, deadlock-freedom is a theorem, not just evidence.
    Inhibitor arcs break the free-choice property by definition.
    """
    if net.has_inhibitors():
        return False
    presets: Dict[str, frozenset] = {
        t.name: frozenset(net.inputs(t.name)) for t in net.transitions
    }
    sharers: Dict[str, List[str]] = {}
    for t, pre in presets.items():
        for place in pre:
            sharers.setdefault(place, []).append(t)
    for place, transitions in sharers.items():
        first = presets[transitions[0]]
        if any(presets[t] != first for t in transitions[1:]):
            return False
    return True


def reachability_graph_to_dot(graph: ReachabilityGraph) -> str:
    """Graphviz rendering of a reachability graph.

    Markings are node labels (``p1:1 p2:2``); the initial marking is drawn
    with a double border; dead markings are shaded.
    """
    def label(marking: Marking) -> str:
        inner = " ".join(f"{p}:{n}" for p, n in sorted(marking.items()))
        return inner or "(empty)"

    ids = {m: f"m{i}" for i, m in enumerate(sorted(graph.markings, key=label))}
    dead = set(graph.dead_markings())
    lines = ["digraph reachability {", "  rankdir=LR;"]
    for marking, node_id in ids.items():
        attrs = [f'label="{label(marking)}"']
        if marking == graph.initial:
            attrs.append("peripheries=2")
        if marking in dead:
            attrs.append('style=filled, fillcolor="#dddddd"')
        lines.append(f"  {node_id} [{', '.join(attrs)}];")
    for src, t, dst in graph.edges:
        lines.append(f'  {ids[src]} -> {ids[dst]} [label="{t}"];')
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# invariants (integer kernel via rational Gaussian elimination)
# ----------------------------------------------------------------------


def _nullspace_basis(matrix: List[List[Fraction]]) -> List[List[Fraction]]:
    """Basis of the right null space of ``matrix`` (rows x cols)."""
    if not matrix:
        return []
    rows = [row[:] for row in matrix]
    n_cols = len(rows[0])
    pivot_cols: List[int] = []
    r = 0
    for c in range(n_cols):
        pivot = next((i for i in range(r, len(rows)) if rows[i][c] != 0), None)
        if pivot is None:
            continue
        rows[r], rows[pivot] = rows[pivot], rows[r]
        pv = rows[r][c]
        rows[r] = [x / pv for x in rows[r]]
        for i in range(len(rows)):
            if i != r and rows[i][c] != 0:
                factor = rows[i][c]
                rows[i] = [a - factor * b for a, b in zip(rows[i], rows[r])]
        pivot_cols.append(c)
        r += 1
        if r == len(rows):
            break
    free_cols = [c for c in range(n_cols) if c not in pivot_cols]
    basis = []
    for fc in free_cols:
        vec = [Fraction(0)] * n_cols
        vec[fc] = Fraction(1)
        for i, pc in enumerate(pivot_cols):
            vec[pc] = -rows[i][fc]
        basis.append(vec)
    return basis


def _integerize(vec: List[Fraction]) -> List[int]:
    from math import gcd

    denom = 1
    for x in vec:
        denom = denom * x.denominator // gcd(denom, x.denominator)
    ints = [int(x * denom) for x in vec]
    g = 0
    for x in ints:
        g = gcd(g, abs(x))
    if g > 1:
        ints = [x // g for x in ints]
    # normalize sign: first non-zero positive
    for x in ints:
        if x != 0:
            if x < 0:
                ints = [-v for v in ints]
            break
    return ints


def p_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Place invariants: integer vectors y with yᵀC = 0.

    A P-invariant is a weighted set of places whose total token count is
    conserved by every firing — e.g. the "floor token" in the floor-control
    net is conserved, which is exactly the mutual-exclusion argument.
    """
    place_names, _, C = net.incidence_matrix()
    if not place_names:
        return []
    # yT C = 0  <=>  C^T y = 0; rows of C^T are columns of C
    n_t = len(C[0]) if C else 0
    ct = [[Fraction(C[i][j]) for i in range(len(place_names))] for j in range(n_t)]
    if not ct:  # no transitions: every unit vector is an invariant
        return [{p: 1} for p in place_names]
    basis = _nullspace_basis(ct)
    result = []
    for vec in basis:
        ints = _integerize(vec)
        result.append({p: w for p, w in zip(place_names, ints) if w})
    return result


def t_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Transition invariants: integer vectors x with Cx = 0.

    A T-invariant is a firing-count vector returning the net to its starting
    marking — e.g. one full play/pause/resume cycle in the interaction net.
    """
    place_names, transition_names, C = net.incidence_matrix()
    if not transition_names:
        return []
    rows = [[Fraction(x) for x in row] for row in C]
    if not rows:
        return [{t: 1} for t in transition_names]
    basis = _nullspace_basis(rows)
    result = []
    for vec in basis:
        ints = _integerize(vec)
        result.append({t: w for t, w in zip(transition_names, ints) if w})
    return result


def is_p_invariant(net: PetriNet, weights: Dict[str, int]) -> bool:
    """Check yᵀC = 0 for an explicit weight vector ``weights``.

    :func:`p_invariants` returns *a* basis of the invariant space; a
    particular invariant of interest (e.g. mutual exclusion:
    ``floor + Σ holding_u``) may be a combination of basis vectors, so
    verify it directly with this predicate.
    """
    place_names, transition_names, C = net.incidence_matrix()
    index = {p: i for i, p in enumerate(place_names)}
    for p in weights:
        if p not in index:
            raise PetriNetError(f"unknown place {p!r}")
    for j in range(len(transition_names)):
        if sum(w * C[index[p]][j] for p, w in weights.items()) != 0:
            return False
    return True


def conserved_token_count(net: PetriNet, invariant: Dict[str, int]) -> int:
    """Weighted token total of ``invariant`` under the initial marking."""
    return sum(w * net.initial_marking[p] for p, w in invariant.items())
