"""Structural analysis: siphons, traps, and Commoner's condition.

Murata's structural toolbox complements the behavioural analyses of
:mod:`repro.core.analysis`:

* a **siphon** is a place set S with ``•S ⊆ S•`` — once S is emptied no
  transition can refill it, so an unmarked siphon is a permanent hole;
* a **trap** is a place set S with ``S• ⊆ •S`` — once marked, S can never
  be fully emptied;
* **Commoner's condition** — every minimal siphon contains a trap marked
  at M₀ — guarantees deadlock-freedom for free-choice nets, and is the
  classical structural argument for nets like the floor-control net.

Minimal-siphon enumeration is exponential in general; the implementation
recursively restricts the candidate set and is comfortable for the control
and floor nets of this system (≲ 30 places). A ``max_places`` guard
refuses silently-expensive inputs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from .petri import Marking, PetriNet, PetriNetError


class StructuralError(PetriNetError):
    """Analysis refused (too large) or malformed input."""


def _preset_of_places(net: PetriNet, places: Set[str]) -> Set[str]:
    """Transitions with an output arc into any place of the set (•S)."""
    result: Set[str] = set()
    for place in places:
        result.update(net.preset(place))
    return result


def _postset_of_places(net: PetriNet, places: Set[str]) -> Set[str]:
    """Transitions with an input arc from any place of the set (S•)."""
    result: Set[str] = set()
    for place in places:
        result.update(net.postset(place))
    return result


def is_siphon(net: PetriNet, places: Iterable[str]) -> bool:
    """True if ``places`` is a (non-empty) siphon: •S ⊆ S•."""
    subset = set(places)
    if not subset:
        return False
    for place in subset:
        net.place(place)
    return _preset_of_places(net, subset) <= _postset_of_places(net, subset)


def is_trap(net: PetriNet, places: Iterable[str]) -> bool:
    """True if ``places`` is a (non-empty) trap: S• ⊆ •S."""
    subset = set(places)
    if not subset:
        return False
    for place in subset:
        net.place(place)
    return _postset_of_places(net, subset) <= _preset_of_places(net, subset)


def maximal_siphon_within(net: PetriNet, places: Iterable[str]) -> Set[str]:
    """The largest siphon contained in ``places`` (possibly empty).

    Standard polynomial refinement: repeatedly drop any place fed by a
    transition that takes no input from the current set.
    """
    current = set(places)
    for place in current:
        net.place(place)
    changed = True
    while changed and current:
        changed = False
        postset = _postset_of_places(net, current)
        for place in list(current):
            if any(t not in postset for t in net.preset(place)):
                current.discard(place)
                changed = True
    return current


def maximal_trap_within(net: PetriNet, places: Iterable[str]) -> Set[str]:
    """The largest trap contained in ``places`` (possibly empty)."""
    current = set(places)
    for place in current:
        net.place(place)
    changed = True
    while changed and current:
        changed = False
        preset = _preset_of_places(net, current)
        for place in list(current):
            if any(t not in preset for t in net.postset(place)):
                current.discard(place)
                changed = True
    return current


def minimal_siphons(
    net: PetriNet, *, max_places: int = 30, limit: int = 10_000
) -> List[FrozenSet[str]]:
    """All minimal (inclusion-wise) siphons of the net.

    Recursive branch-and-bound over place subsets; exponential worst case,
    guarded by ``max_places`` (structure size) and ``limit`` (result+node
    budget). Suitable for control-scale nets, not arbitrary models.
    """
    place_names = [p.name for p in net.places]
    if len(place_names) > max_places:
        raise StructuralError(
            f"net has {len(place_names)} places; minimal-siphon enumeration "
            f"is capped at {max_places} (raise max_places explicitly)"
        )
    found: List[FrozenSet[str]] = []
    budget = [limit]

    def add_minimal(candidate: FrozenSet[str]) -> None:
        nonlocal found
        for existing in found:
            if existing <= candidate:
                return
        found = [f for f in found if not candidate <= f]
        found.append(candidate)

    def search(allowed: Set[str], required: Set[str]) -> None:
        """Find minimal siphons within ``allowed`` containing ``required``."""
        if budget[0] <= 0:
            raise StructuralError("siphon enumeration budget exceeded")
        budget[0] -= 1
        siphon = maximal_siphon_within(net, allowed)
        if not required <= siphon:
            return
        if not siphon:
            return
        # shrink: try removing each non-required place
        removable = sorted(siphon - required)
        if not removable:
            add_minimal(frozenset(siphon))
            return
        shrunk = False
        for place in removable:
            smaller = maximal_siphon_within(net, siphon - {place})
            if required <= smaller and smaller:
                shrunk = True
                search(smaller, required)
        if not shrunk:
            add_minimal(frozenset(siphon))

    all_places = set(place_names)
    base = maximal_siphon_within(net, all_places)
    for place in sorted(base):
        search(base, {place})
    return sorted(found, key=lambda s: (len(s), sorted(s)))


def marked_traps_in(
    net: PetriNet, siphon: Iterable[str], marking: Optional[Marking] = None
) -> Set[str]:
    """The maximal trap inside ``siphon`` that is marked under ``marking``.

    Returns the trap (possibly empty set if none / unmarked).
    """
    m = net.initial_marking if marking is None else marking
    trap = maximal_trap_within(net, siphon)
    if trap and any(m[p] > 0 for p in trap):
        return trap
    return set()


def commoner_check(
    net: PetriNet, *, max_places: int = 30
) -> Dict[FrozenSet[str], bool]:
    """Commoner's condition per minimal siphon.

    Maps each minimal siphon to True when it contains a trap marked at the
    initial marking. All-True implies deadlock-freedom for free-choice
    nets (and is strong evidence for others — the floor-control and
    control nets of this system satisfy it by construction).
    """
    result: Dict[FrozenSet[str], bool] = {}
    for siphon in minimal_siphons(net, max_places=max_places):
        result[siphon] = bool(marked_traps_in(net, siphon))
    return result


def unmarked_siphons(
    net: PetriNet, marking: Optional[Marking] = None, *, max_places: int = 30
) -> List[FrozenSet[str]]:
    """Minimal siphons empty under ``marking`` — each is a dead spot."""
    m = net.initial_marking if marking is None else marking
    return [
        siphon
        for siphon in minimal_siphons(net, max_places=max_places)
        if all(m[p] == 0 for p in siphon)
    ]
