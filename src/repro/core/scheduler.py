"""Presentation timelines derived from timed-net executions.

The bridge between the Petri-net world and the media world: a
:class:`PresentationTimeline` is the flat list of playout intervals per
media object that the orchestrator (:mod:`repro.lod.orchestrator`) turns
into stream packets and script commands, and that the metrics layer
compares against measured playback.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .intervals import Interval
from .ocpn import CompiledOCPN, spec_intervals
from .timed import TimedExecution


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled playout of one media object."""

    media: str
    interval: Interval

    @property
    def start(self) -> float:
        return self.interval.start

    @property
    def end(self) -> float:
        return self.interval.end


class PresentationTimeline:
    """An ordered set of media playouts on a shared clock.

    Supports point queries ("what's active at t?"), event listing
    (start/stop edges — these become script commands) and drift comparison
    against another timeline.
    """

    def __init__(self, entries: Iterable[TimelineEntry] = ()) -> None:
        self.entries: List[TimelineEntry] = sorted(
            entries, key=lambda e: (e.start, e.media)
        )

    @classmethod
    def from_schedule(cls, schedule: Mapping[str, Interval]) -> "PresentationTimeline":
        return cls(TimelineEntry(m, i) for m, i in schedule.items())

    @classmethod
    def from_execution(
        cls, compiled: CompiledOCPN, execution: Optional[TimedExecution] = None
    ) -> "PresentationTimeline":
        run = execution or compiled.execute()
        entries = []
        for media, place in compiled.media_places.items():
            for start, end in run.playout_intervals(place):
                entries.append(TimelineEntry(media, Interval(start, end)))
        return cls(entries)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def duration(self) -> float:
        return max((e.end for e in self.entries), default=0.0)

    def media_names(self) -> List[str]:
        return sorted({e.media for e in self.entries})

    def active_at(self, t: float) -> List[str]:
        return sorted(e.media for e in self.entries if e.start <= t < e.end)

    def entry_for(self, media: str) -> TimelineEntry:
        for e in self.entries:
            if e.media == media:
                return e
        raise KeyError(f"no timeline entry for {media!r}")

    def edges(self) -> List[Tuple[float, str, str]]:
        """Sorted (time, "start"|"stop", media) edge events."""
        events: List[Tuple[float, str, str]] = []
        for e in self.entries:
            events.append((e.start, "start", e.media))
            events.append((e.end, "stop", e.media))
        # stops before starts at the same instant, so MEETS hands over cleanly
        order = {"stop": 0, "start": 1}
        return sorted(events, key=lambda ev: (ev[0], order[ev[1]], ev[2]))

    def drift_against(self, reference: "PresentationTimeline") -> Dict[str, float]:
        """Per-media max |endpoint error| vs ``reference``.

        Media present in only one timeline get ``float('inf')`` — a missing
        playout is the worst possible drift.
        """
        result: Dict[str, float] = {}
        mine = {e.media: e for e in self.entries}
        theirs = {e.media: e for e in reference.entries}
        for media in set(mine) | set(theirs):
            if media not in mine or media not in theirs:
                result[media] = float("inf")
                continue
            a, b = mine[media].interval, theirs[media].interval
            result[media] = max(abs(a.start - b.start), abs(a.end - b.end))
        return result

    def max_drift(self, reference: "PresentationTimeline") -> float:
        drifts = self.drift_against(reference)
        return max(drifts.values(), default=0.0)


def timeline_for(compiled: CompiledOCPN) -> PresentationTimeline:
    """The *nominal* timeline straight from the interval algebra (no net run)."""
    return PresentationTimeline.from_schedule(spec_intervals(compiled.spec))


@dataclass
class QoSMetrics:
    """Quality metrics of a measured timeline vs. its specification."""

    max_sync_error: float
    mean_sync_error: float
    missing_objects: int
    makespan_measured: float
    makespan_nominal: float

    @property
    def makespan_inflation(self) -> float:
        if self.makespan_nominal == 0:
            return 0.0
        return self.makespan_measured / self.makespan_nominal - 1.0


def qos_metrics(
    measured: PresentationTimeline, nominal: PresentationTimeline
) -> QoSMetrics:
    drifts = measured.drift_against(nominal)
    finite = [d for d in drifts.values() if d != float("inf")]
    missing = sum(1 for d in drifts.values() if d == float("inf"))
    return QoSMetrics(
        max_sync_error=max(finite, default=0.0),
        mean_sync_error=(sum(finite) / len(finite)) if finite else 0.0,
        missing_objects=missing,
        makespan_measured=measured.duration,
        makespan_nominal=nominal.duration,
    )
