"""The paper's contribution: the **extended timed Petri net** model.

Deng et al. extend OCPN/XOCPN along the three axes those models lack
(paper §1):

1. **Schedule changes caused by user interactions** — play, pause, resume,
   skip forward/backward between synchronization points, and playback-speed
   changes. The legal interaction sequences are themselves a small Petri net
   (the *control subnet*, :func:`build_control_net`): e.g. ``pause`` is only
   enabled while the ``playing`` place is marked. The
   :class:`InteractivePlayer` fires control transitions, so an illegal
   operation surfaces as :class:`~repro.core.petri.NotEnabledError` rather
   than undefined behaviour.

2. **Synchronization across distributed platforms** — a lecture plays at
   several sites connected by links with latency/jitter; a coordinator
   propagates interaction commands and periodic sync beacons
   (:class:`DistributedCoordinator`), and per-site drift is measurable.

3. **Floor control with multiple users** — a floor token place gives one
   user at a time the right to steer the shared presentation
   (:func:`build_floor_net`, :class:`FloorControl`); mutual exclusion is a
   P-invariant of the net.

The presentation itself is an OCPN compiled from a *segment sequence*
(:class:`ExtendedPresentation`) — the lecture structure of the paper, where
each segment is a slide synchronized with a video interval. Segment
boundaries are the net's synchronization points, which is what skip
operations target.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .intervals import Interval
from .ocpn import (
    CompiledOCPN,
    MediaLeaf,
    Spec,
    SpecError,
    compile_spec,
    sequence,
    spec_duration,
    spec_intervals,
)
from .petri import Marking, NotEnabledError, PetriNet


# ----------------------------------------------------------------------
# control subnet (interaction axis)
# ----------------------------------------------------------------------


class Interaction(enum.Enum):
    """User interactions of the extended model."""

    PLAY = "play"
    PAUSE = "pause"
    RESUME = "resume"
    SKIP_FORWARD = "skip_forward"
    SKIP_BACKWARD = "skip_backward"
    SET_SPEED = "set_speed"
    STOP = "stop"


#: Control transitions allowed per interaction, keyed by transition name.
CONTROL_TRANSITIONS = {
    Interaction.PLAY: "t_play",
    Interaction.PAUSE: "t_pause",
    Interaction.RESUME: "t_resume",
    Interaction.SKIP_FORWARD: "t_skip_fwd",
    Interaction.SKIP_BACKWARD: "t_skip_back",
    Interaction.SET_SPEED: "t_speed",
    Interaction.STOP: "t_stop",
}


def build_control_net() -> PetriNet:
    """The interaction-state subnet: idle → playing ⇄ paused → stopped.

    Skip and speed-change are self-loops on ``playing`` (they mutate the
    schedule, not the control state); ``stop`` is reachable from both
    ``playing`` and ``paused`` (via resume). One token circulates — a
    P-invariant, so the player is always in exactly one state.
    """
    net = PetriNet("control")
    net.add_place("idle", tokens=1)
    net.add_place("playing")
    net.add_place("paused")
    net.add_place("stopped")
    net.add_transition("t_play")
    net.add_arc("idle", "t_play")
    net.add_arc("t_play", "playing")
    net.add_transition("t_pause")
    net.add_arc("playing", "t_pause")
    net.add_arc("t_pause", "paused")
    net.add_transition("t_resume")
    net.add_arc("paused", "t_resume")
    net.add_arc("t_resume", "playing")
    for name in ("t_skip_fwd", "t_skip_back", "t_speed"):
        net.add_transition(name)
        net.add_arc("playing", name)
        net.add_arc(name, "playing")
    net.add_transition("t_stop")
    net.add_arc("playing", "t_stop")
    net.add_arc("t_stop", "stopped")
    return net


# ----------------------------------------------------------------------
# presentation structure (segments = sync points)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Segment:
    """One synchronization unit of a lecture (e.g. a slide + its video)."""

    name: str
    spec: Spec

    @property
    def duration(self) -> float:
        return spec_duration(self.spec)


class ExtendedPresentation:
    """A lecture as an ordered list of segments, compiled to one OCPN.

    Exposes the nominal schedule (per-leaf intervals, segment boundaries)
    that :class:`InteractivePlayer` renders against.
    """

    def __init__(self, segments: Sequence[Segment], *, name: str = "lecture") -> None:
        if not segments:
            raise SpecError("a presentation needs at least one segment")
        names = [s.name for s in segments]
        if len(set(names)) != len(names):
            raise SpecError("segment names must be unique")
        self.name = name
        self.segments = list(segments)
        self.spec: Spec = sequence(*(s.spec for s in segments))
        self.compiled: CompiledOCPN = compile_spec(self.spec, name=name)
        self.schedule: Dict[str, Interval] = spec_intervals(self.spec)
        # segment boundaries on the presentation timeline
        self.boundaries: List[float] = [0.0]
        for segment in self.segments:
            self.boundaries.append(self.boundaries[-1] + segment.duration)

    @property
    def duration(self) -> float:
        return self.boundaries[-1]

    def segment_index_at(self, position: float) -> int:
        """Index of the segment containing presentation time ``position``."""
        if position < 0:
            raise ValueError("position must be >= 0")
        for i in range(len(self.segments)):
            if position < self.boundaries[i + 1]:
                return i
        return len(self.segments) - 1

    def segment_start(self, index: int) -> float:
        return self.boundaries[index]

    def active_leaves(self, position: float) -> List[str]:
        """Media leaves whose interval covers ``position`` (render set)."""
        return sorted(
            name
            for name, interval in self.schedule.items()
            if interval.start <= position < interval.end
        )

    def verify(self) -> None:
        """Check the compiled net reproduces the interval-algebra schedule."""
        from .ocpn import verify_schedule

        verify_schedule(self.compiled)


# ----------------------------------------------------------------------
# interactive player (schedule-change axis)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlayerEvent:
    """A state- or render-relevant event emitted by the player."""

    wall_time: float
    position: float
    kind: str  # "interaction" | "segment" | "render"
    detail: str


class InteractivePlayer:
    """Executes an :class:`ExtendedPresentation` under user control.

    Wall-clock time is advanced explicitly with :meth:`advance` (the network
    simulator drives it); presentation position advances at ``rate`` while
    the control net marks ``playing``. All interactions are validated by the
    control subnet — the formal content of the paper's "dynamical operations
    of users".
    """

    def __init__(self, presentation: ExtendedPresentation, *, user: str = "local") -> None:
        self.presentation = presentation
        self.user = user
        self.control = build_control_net()
        self.wall_time = 0.0
        self.position = 0.0
        self.rate = 1.0
        self.events: List[PlayerEvent] = []
        self._last_segment: Optional[int] = None

    # -- state queries ---------------------------------------------------

    @property
    def state(self) -> str:
        """Current control-net state: idle/playing/paused/stopped."""
        for place in ("idle", "playing", "paused", "stopped"):
            if self.control.marking[place]:
                return place
        raise AssertionError("control net lost its token")  # pragma: no cover

    @property
    def finished(self) -> bool:
        return self.position >= self.presentation.duration - 1e-9

    def current_segment(self) -> int:
        return self.presentation.segment_index_at(
            min(self.position, self.presentation.duration - 1e-9)
        )

    def active_media(self) -> List[str]:
        if self.state != "playing":
            return []
        return self.presentation.active_leaves(min(self.position, self.presentation.duration - 1e-9))

    # -- interactions ------------------------------------------------------

    def _fire(self, interaction: Interaction, detail: str = "") -> None:
        transition = CONTROL_TRANSITIONS[interaction]
        self.control.fire(transition)  # raises NotEnabledError when illegal
        self.events.append(
            PlayerEvent(self.wall_time, self.position, "interaction",
                        detail or interaction.value)
        )

    def play(self) -> None:
        self._fire(Interaction.PLAY)
        self._note_segment()

    def pause(self) -> None:
        self._fire(Interaction.PAUSE)

    def resume(self) -> None:
        self._fire(Interaction.RESUME)

    def stop(self) -> None:
        self._fire(Interaction.STOP)

    def set_speed(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._fire(Interaction.SET_SPEED, f"speed={rate}")
        self.rate = rate

    def skip_forward(self) -> int:
        """Jump to the start of the next segment; returns the new index."""
        self._fire(Interaction.SKIP_FORWARD)
        index = min(self.current_segment() + 1, len(self.presentation.segments) - 1)
        self.position = self.presentation.segment_start(index)
        self._note_segment()
        return index

    def skip_backward(self) -> int:
        """Jump to the start of the previous segment (or this one's start)."""
        self._fire(Interaction.SKIP_BACKWARD)
        index = self.current_segment()
        # skipping back from mid-segment returns to its start; from a
        # boundary, to the previous segment
        if abs(self.position - self.presentation.segment_start(index)) < 1e-9:
            index = max(0, index - 1)
        self.position = self.presentation.segment_start(index)
        self._note_segment()
        return index

    def seek(self, position: float) -> None:
        """Direct positioning (used by sync beacons), no control firing."""
        if position < 0:
            raise ValueError("position must be >= 0")
        self.position = min(position, self.presentation.duration)
        self._note_segment()

    # -- time ------------------------------------------------------------

    def _note_segment(self) -> None:
        segment = self.current_segment()
        if segment != self._last_segment:
            self._last_segment = segment
            self.events.append(
                PlayerEvent(
                    self.wall_time,
                    self.position,
                    "segment",
                    self.presentation.segments[segment].name,
                )
            )

    def advance(self, wall_dt: float) -> None:
        """Advance wall time; position moves only while playing."""
        if wall_dt < 0:
            raise ValueError("time cannot go backwards")
        self.wall_time += wall_dt
        if self.state == "playing" and not self.finished:
            # advance segment-by-segment so boundary events are emitted
            remaining = wall_dt * self.rate
            while remaining > 1e-12 and not self.finished:
                boundary = self.presentation.boundaries[self.current_segment() + 1]
                step = min(remaining, boundary - self.position)
                self.position += step
                remaining -= step
                if self.position >= boundary - 1e-12:
                    self.position = boundary
                    if not self.finished:
                        self._note_segment()
            if self.finished:
                self.position = self.presentation.duration

    def segment_events(self) -> List[PlayerEvent]:
        return [e for e in self.events if e.kind == "segment"]


# ----------------------------------------------------------------------
# floor control (multi-user axis)
# ----------------------------------------------------------------------


def build_floor_net(users: Sequence[str]) -> PetriNet:
    """The floor-control net: one floor token, per-user request/grant/release.

    Places per user ``u``: ``idle_u``, ``waiting_u``, ``holding_u``.
    Shared place ``floor`` holds the single floor token. Mutual exclusion
    (at most one ``holding_*`` marked) follows from the P-invariant
    ``floor + Σ holding_u = 1``, checked in the tests via
    :func:`repro.core.analysis.p_invariants`.
    """
    if not users:
        raise ValueError("floor net needs at least one user")
    if len(set(users)) != len(users):
        raise ValueError("user names must be unique")
    net = PetriNet("floor-control")
    net.add_place("floor", tokens=1, label="floor token")
    for user in users:
        net.add_place(f"idle_{user}", tokens=1)
        net.add_place(f"waiting_{user}")
        net.add_place(f"holding_{user}")
        net.add_transition(f"request_{user}")
        net.add_arc(f"idle_{user}", f"request_{user}")
        net.add_arc(f"request_{user}", f"waiting_{user}")
        net.add_transition(f"grant_{user}")
        net.add_arc(f"waiting_{user}", f"grant_{user}")
        net.add_arc("floor", f"grant_{user}")
        net.add_arc(f"grant_{user}", f"holding_{user}")
        net.add_transition(f"release_{user}")
        net.add_arc(f"holding_{user}", f"release_{user}")
        net.add_arc(f"release_{user}", "floor")
        net.add_arc(f"release_{user}", f"idle_{user}")
    return net


class FloorControl:
    """FIFO floor arbitration over :func:`build_floor_net`.

    The Petri net defines *legality*; this class adds the *policy* (grant
    order) and an audit log. Grants happen explicitly via :meth:`grant_next`
    or implicitly on release when someone is waiting.
    """

    def __init__(self, users: Sequence[str], *, tracer=None) -> None:
        self.users = list(users)
        self.net = build_floor_net(users)
        self.queue: List[str] = []
        self.log: List[Tuple[float, str, str]] = []  # (time, action, user)
        self.now = 0.0
        self.tracer = tracer  # optional repro.obs.Tracer

    def _check_user(self, user: str) -> None:
        if user not in self.users:
            raise KeyError(f"unknown user {user!r}")

    @property
    def holder(self) -> Optional[str]:
        for user in self.users:
            if self.net.marking[f"holding_{user}"]:
                return user
        return None

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("time cannot go backwards")
        self.now += dt

    def request(self, user: str) -> bool:
        """User asks for the floor; granted immediately if free.

        Returns True if the floor was granted right away.
        """
        self._check_user(user)
        self.net.fire(f"request_{user}")
        self.log.append((self.now, "request", user))
        self.queue.append(user)
        if self.holder is None:
            return self.grant_next() == user
        return False

    def grant_next(self) -> Optional[str]:
        """Grant the floor to the longest-waiting user, if any."""
        if self.holder is not None or not self.queue:
            return None
        user = self.queue.pop(0)
        self.net.fire(f"grant_{user}")
        self.log.append((self.now, "grant", user))
        if self.tracer is not None:
            self.tracer.event("floor.grant", user=user)
        return user

    def release(self, user: str) -> Optional[str]:
        """Holder gives the floor back; auto-grants to the next waiter."""
        self._check_user(user)
        self.net.fire(f"release_{user}")  # NotEnabledError if not holder
        self.log.append((self.now, "release", user))
        if self.tracer is not None:
            self.tracer.event("floor.release", user=user)
        return self.grant_next()

    def drop(self, user: str) -> Optional[str]:
        """Forcibly evict a departed user from the arbitration.

        A site crash/disconnect fires no ``release`` of its own — without
        this, a holder's death orphans the floor token forever. Dropping
        the holder fires the net's ordinary ``release`` transition (the
        P-invariant ``floor + Σ holding_u = 1`` is untouched) and grants
        the next waiter; dropping a waiter removes it from the FIFO queue
        so it can never be granted a floor it is not present to use (its
        ``waiting`` token strands harmlessly — by policy the queue, not
        the marking, decides grants). Returns the new holder, if any.
        """
        self._check_user(user)
        if self.holder == user:
            self.net.fire(f"release_{user}")
            self.log.append((self.now, "drop", user))
            if self.tracer is not None:
                self.tracer.event("floor.drop", user=user)
            return self.grant_next()
        if user in self.queue:
            self.queue.remove(user)
            self.log.append((self.now, "drop", user))
        return None

    def holding_times(self) -> Dict[str, float]:
        """Total floor-holding time per user (for fairness metrics)."""
        held: Dict[str, float] = {u: 0.0 for u in self.users}
        grant_time: Dict[str, float] = {}
        for when, action, user in self.log:
            if action == "grant":
                grant_time[user] = when
            elif action == "release" and user in grant_time:
                held[user] += when - grant_time.pop(user)
        current = self.holder
        if current is not None and current in grant_time:
            held[current] += self.now - grant_time[current]
        return held


# ----------------------------------------------------------------------
# distributed synchronization axis
# ----------------------------------------------------------------------


@dataclass
class SiteLink:
    """Network and clock characteristics between coordinator and one site.

    ``clock_skew`` is the site's local-clock rate error (e.g. ``0.01`` means
    the replica's presentation clock runs 1% fast) — without periodic
    beacons this makes drift grow linearly with play time, which is exactly
    the failure mode of static OCPN schedules on distributed platforms.
    """

    latency: float = 0.05
    jitter: float = 0.0
    clock_skew: float = 0.0

    def delay(self, rng) -> float:
        if self.jitter <= 0:
            return self.latency
        return max(0.0, self.latency + rng.uniform(-self.jitter, self.jitter))


@dataclass(frozen=True)
class _PendingCommand:
    deliver_at: float
    action: str
    param: float = 0.0


class DistributedCoordinator:
    """Master/replica playback across sites — the paper's "distributed
    platforms" synchronization.

    The master player holds ground truth. Interaction commands are relayed
    to every site with per-link delay; every ``beacon_interval`` seconds the
    master broadcasts its position and replicas snap to it when their drift
    exceeds ``drift_threshold``. Setting ``beacon_interval=None`` disables
    beacons (the OCPN strawman) — bench S1 compares the two.
    """

    def __init__(
        self,
        presentation: ExtendedPresentation,
        sites: Mapping[str, SiteLink],
        *,
        beacon_interval: Optional[float] = 1.0,
        drift_threshold: float = 0.05,
        rng=None,
    ) -> None:
        import random

        self.presentation = presentation
        self.master = InteractivePlayer(presentation, user="master")
        self.sites: Dict[str, InteractivePlayer] = {
            name: InteractivePlayer(presentation, user=name) for name in sites
        }
        self.links = dict(sites)
        self.beacon_interval = beacon_interval
        self.drift_threshold = drift_threshold
        self.rng = rng or random.Random(0)
        self._pending: Dict[str, List[_PendingCommand]] = {name: [] for name in sites}
        self._next_beacon = beacon_interval
        self.drift_samples: Dict[str, List[Tuple[float, float]]] = {
            name: [] for name in sites
        }

    # -- command relay ----------------------------------------------------

    def _broadcast(self, action: str, param: float = 0.0) -> None:
        for name, link in self.links.items():
            deliver = self.master.wall_time + link.delay(self.rng)
            self._pending[name].append(_PendingCommand(deliver, action, param))

    def command(self, action: str, param: float = 0.0) -> None:
        """Apply an interaction at the master and relay it to all sites."""
        self._apply(self.master, action, param)
        self._broadcast(action, param)

    @staticmethod
    def _apply(player: InteractivePlayer, action: str, param: float) -> None:
        if action == "play":
            player.play()
        elif action == "pause":
            player.pause()
        elif action == "resume":
            player.resume()
        elif action == "stop":
            player.stop()
        elif action == "speed":
            player.set_speed(param)
        elif action == "skip_forward":
            player.skip_forward()
        elif action == "skip_backward":
            player.skip_backward()
        elif action == "beacon":
            if abs(player.position - param) > 1e-12:
                player.seek(param)
        else:
            raise ValueError(f"unknown action {action!r}")

    # -- time -------------------------------------------------------------

    def advance(self, dt: float, *, step: float = 0.01) -> None:
        """Advance global wall time in small steps, delivering commands."""
        remaining = dt
        while remaining > 1e-12:
            chunk = min(step, remaining)
            self.master.advance(chunk)
            for name, player in self.sites.items():
                player.advance(chunk * (1.0 + self.links[name].clock_skew))
                due = [c for c in self._pending[name] if c.deliver_at <= self.master.wall_time]
                self._pending[name] = [
                    c for c in self._pending[name] if c.deliver_at > self.master.wall_time
                ]
                for cmd in sorted(due, key=lambda c: c.deliver_at):
                    try:
                        self._apply(player, cmd.action, cmd.param)
                    except NotEnabledError:
                        pass  # command arrived after a conflicting one; beacon repairs
                self.drift_samples[name].append(
                    (self.master.wall_time, abs(player.position - self.master.position))
                )
            remaining -= chunk
            if self.beacon_interval is not None and self.master.wall_time >= (
                self._next_beacon or 0.0
            ):
                self._next_beacon += self.beacon_interval
                self._send_beacons()

    def _send_beacons(self) -> None:
        for name, link in self.links.items():
            deliver = self.master.wall_time + link.delay(self.rng)
            # beacon carries the master position *projected* to delivery time
            projected = self.master.position
            if self.master.state == "playing":
                projected = min(
                    self.presentation.duration,
                    projected + (deliver - self.master.wall_time) * self.master.rate,
                )
            self._pending[name].append(_PendingCommand(deliver, "beacon", projected))

    # -- metrics ------------------------------------------------------------

    def max_drift(self, site: str) -> float:
        samples = self.drift_samples[site]
        return max((d for _, d in samples), default=0.0)

    def mean_drift(self, site: str) -> float:
        samples = self.drift_samples[site]
        if not samples:
            return 0.0
        return sum(d for _, d in samples) / len(samples)
