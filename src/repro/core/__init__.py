"""Petri-net core: the paper's extended timed Petri net and its lineage.

Public surface of :mod:`repro.core`:

* base nets and analysis — :class:`PetriNet`, :class:`Marking`,
  :func:`reachability_graph`, :func:`p_invariants`, …
* timed semantics — :class:`TimedPetriNet`, :class:`TimedExecution`
* interval algebra — :class:`TemporalRelation`, :class:`Interval`
* OCPN / XOCPN compilers — :func:`compile_spec`, :func:`compile_xocpn`
* the extended model — :class:`ExtendedPresentation`,
  :class:`InteractivePlayer`, :class:`FloorControl`,
  :class:`DistributedCoordinator`
* prioritized baseline — :class:`PrioritizedPetriNet`
* scheduling — :class:`PresentationTimeline`, :func:`qos_metrics`
* builders/visualization — :class:`NetBuilder`, :class:`PresentationBuilder`,
  :func:`net_to_dot`
"""

from .analysis import (
    CoverabilityGraph,
    ReachabilityGraph,
    StateSpaceLimitExceeded,
    bound,
    conserved_token_count,
    coverability_graph,
    find_deadlocks,
    is_bounded,
    is_deadlock_free,
    is_live,
    is_free_choice,
    is_p_invariant,
    is_reachable,
    is_reversible,
    is_safe,
    p_invariants,
    reachability_graph,
    reachability_graph_to_dot,
    shortest_firing_sequence,
    t_invariants,
)
from .builder import NetBuilder, PresentationBuilder
from .extended import (
    CONTROL_TRANSITIONS,
    DistributedCoordinator,
    ExtendedPresentation,
    FloorControl,
    Interaction,
    InteractivePlayer,
    PlayerEvent,
    Segment,
    SiteLink,
    build_control_net,
    build_floor_net,
)
from .intervals import Interval, TemporalRelation, relation_between, schedule_pair
from .ocpn import (
    CompiledOCPN,
    Composite,
    MediaLeaf,
    OCPNCompiler,
    Spec,
    SpecError,
    compile_spec,
    parallel,
    relabel,
    repeat,
    sequence,
    spec_duration,
    spec_intervals,
    spec_leaves,
    verify_schedule,
)
from .petri import (
    Arc,
    DuplicateNodeError,
    Marking,
    NotEnabledError,
    PetriNet,
    PetriNetError,
    Place,
    Transition,
    UnknownNodeError,
)
from .pnml import (
    PNMLError,
    net_from_pnml,
    net_to_pnml,
    timed_net_from_pnml,
    timed_net_to_pnml,
)
from .prioritized import PrioritizedPetriNet, PrioritizedScheduler, preemption_order
from .structural import (
    StructuralError,
    commoner_check,
    is_siphon,
    is_trap,
    marked_traps_in,
    maximal_siphon_within,
    maximal_trap_within,
    minimal_siphons,
    unmarked_siphons,
)
from .scheduler import (
    PresentationTimeline,
    QoSMetrics,
    TimelineEntry,
    qos_metrics,
    timeline_for,
)
from .timed import TimedEvent, TimedExecution, TimedPetriNet
from .visualize import net_to_dot, timed_net_to_dot, timeline_to_ascii, timeline_to_svg
from .xocpn import (
    Channel,
    CompiledXOCPN,
    QoSRequirement,
    StallReport,
    XOCPNCompiler,
    compile_xocpn,
    measure_stalls,
)

__all__ = [
    # petri
    "Arc", "DuplicateNodeError", "Marking", "NotEnabledError", "PetriNet",
    "PetriNetError", "Place", "Transition", "UnknownNodeError",
    # analysis
    "CoverabilityGraph", "ReachabilityGraph", "StateSpaceLimitExceeded",
    "bound", "conserved_token_count", "coverability_graph", "find_deadlocks",
    "is_bounded", "is_deadlock_free", "is_free_choice", "is_live", "is_p_invariant", "is_reachable",
    "is_reversible", "is_safe", "p_invariants", "reachability_graph",
    "reachability_graph_to_dot", "shortest_firing_sequence", "t_invariants",
    # timed
    "TimedEvent", "TimedExecution", "TimedPetriNet",
    # intervals
    "Interval", "TemporalRelation", "relation_between", "schedule_pair",
    # ocpn
    "CompiledOCPN", "Composite", "MediaLeaf", "OCPNCompiler", "Spec",
    "SpecError", "compile_spec", "parallel", "relabel", "repeat", "sequence", "spec_duration",
    "spec_intervals", "spec_leaves", "verify_schedule",
    # xocpn
    "Channel", "CompiledXOCPN", "QoSRequirement", "StallReport",
    "XOCPNCompiler", "compile_xocpn", "measure_stalls",
    # extended
    "CONTROL_TRANSITIONS", "DistributedCoordinator", "ExtendedPresentation",
    "FloorControl", "Interaction", "InteractivePlayer", "PlayerEvent",
    "Segment", "SiteLink", "build_control_net", "build_floor_net",
    # prioritized
    "PrioritizedPetriNet", "PrioritizedScheduler", "preemption_order",
    # pnml
    "PNMLError", "net_from_pnml", "net_to_pnml", "timed_net_from_pnml",
    "timed_net_to_pnml",
    # structural
    "StructuralError", "commoner_check", "is_siphon", "is_trap",
    "marked_traps_in", "maximal_siphon_within", "maximal_trap_within",
    "minimal_siphons", "unmarked_siphons",
    # scheduler
    "PresentationTimeline", "QoSMetrics", "TimelineEntry", "qos_metrics",
    "timeline_for",
    # builder / visualize
    "NetBuilder", "PresentationBuilder", "net_to_dot", "timed_net_to_dot",
    "timeline_to_ascii", "timeline_to_svg",
]
