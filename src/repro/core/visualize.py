"""Graphviz (DOT) export for Petri nets and timelines.

Pure string generation — no Graphviz dependency; the output renders with
``dot -Tpng`` where available and is also asserted against in tests (the
export is a stable, inspectable artifact of a compiled net).
"""

from __future__ import annotations

from typing import Mapping, Optional

from .petri import PetriNet
from .scheduler import PresentationTimeline
from .timed import TimedPetriNet


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def net_to_dot(
    net: PetriNet,
    *,
    durations: Optional[Mapping[str, float]] = None,
    show_marking: bool = True,
) -> str:
    """Render a Petri net as a DOT digraph.

    Places are circles (doubled text with token count when marked),
    transitions are boxes, inhibitor arcs get ``odot`` arrowheads, and
    place durations (when supplied) annotate the label — the conventional
    timed-net drawing style.
    """
    lines = [f"digraph {_quote(net.name)} {{", "  rankdir=LR;"]
    for place in net.places:
        label = place.name
        if durations and durations.get(place.name):
            label += f"\\nτ={durations[place.name]:g}"
        tokens = net.marking[place.name]
        if show_marking and tokens:
            label += f"\\n● x{tokens}" if tokens > 1 else "\\n●"
        lines.append(f"  {_quote(place.name)} [shape=circle, label={_quote(label)}];")
    for transition in net.transitions:
        label = transition.name
        if transition.priority:
            label += f"\\nprio={transition.priority}"
        lines.append(
            f"  {_quote(transition.name)} [shape=box, height=0.2, label={_quote(label)}];"
        )
    for transition in net.transitions:
        name = transition.name
        for place, weight in net.inputs(name).items():
            attrs = f' [label="{weight}"]' if weight > 1 else ""
            lines.append(f"  {_quote(place)} -> {_quote(name)}{attrs};")
        for place, weight in net.outputs(name).items():
            attrs = f' [label="{weight}"]' if weight > 1 else ""
            lines.append(f"  {_quote(name)} -> {_quote(place)}{attrs};")
        for place, weight in net.inhibitors(name).items():
            label = f', label="{weight}"' if weight > 1 else ""
            lines.append(
                f"  {_quote(place)} -> {_quote(name)} [arrowhead=odot{label}];"
            )
    lines.append("}")
    return "\n".join(lines)


def timed_net_to_dot(timed: TimedPetriNet) -> str:
    return net_to_dot(timed.net, durations=timed.durations)


def timeline_to_svg(
    timeline: PresentationTimeline,
    *,
    width: int = 640,
    row_height: int = 22,
    label_width: int = 140,
) -> str:
    """Render a presentation timeline as a standalone SVG Gantt chart.

    Pure string generation (no dependencies); one row per media object,
    one rectangle per playout interval, with a second-axis ruler. Used by
    the publishing examples to emit an inspectable artifact of the
    schedule the Petri net produced.
    """
    names = timeline.media_names()
    total = timeline.duration or 1.0
    chart_width = width - label_width
    height = row_height * (len(names) + 1) + 10

    def x_of(t: float) -> float:
        return label_width + t / total * chart_width

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    palette = ["#4878a8", "#a85448", "#58a868", "#a89048", "#7858a8", "#48a0a8"]
    for row, name in enumerate(names):
        y = 5 + row * row_height
        parts.append(
            f'<text x="4" y="{y + row_height * 0.7:.1f}">{name}</text>'
        )
        color = palette[row % len(palette)]
        for entry in timeline.entries:
            if entry.media != name:
                continue
            x0, x1 = x_of(entry.start), x_of(entry.end)
            parts.append(
                f'<rect x="{x0:.1f}" y="{y:.1f}" '
                f'width="{max(x1 - x0, 1.0):.1f}" '
                f'height="{row_height - 6}" fill="{color}" rx="2">'
                f"<title>{name}: {entry.start:g}s – {entry.end:g}s</title>"
                f"</rect>"
            )
    # time ruler
    ruler_y = 5 + len(names) * row_height + 12
    parts.append(
        f'<line x1="{label_width}" y1="{ruler_y}" x2="{width}" '
        f'y2="{ruler_y}" stroke="#888"/>'
    )
    step = max(1.0, round(total / 8))
    t = 0.0
    while t <= total + 1e-9:
        x = x_of(min(t, total))
        parts.append(
            f'<line x1="{x:.1f}" y1="{ruler_y - 3}" x2="{x:.1f}" '
            f'y2="{ruler_y + 3}" stroke="#888"/>'
        )
        parts.append(
            f'<text x="{x - 8:.1f}" y="{ruler_y - 6}" fill="#555">{t:g}</text>'
        )
        t += step
    parts.append("</svg>")
    return "\n".join(parts)


def timeline_to_ascii(timeline: PresentationTimeline, *, width: int = 60) -> str:
    """ASCII Gantt chart of a presentation timeline (README/examples)."""
    total = timeline.duration or 1.0
    rows = []
    names = timeline.media_names()
    pad = max((len(n) for n in names), default=0)
    for name in names:
        row = [" "] * width
        for entry in timeline.entries:
            if entry.media != name:
                continue
            lo = int(entry.start / total * (width - 1))
            hi = max(lo + 1, int(entry.end / total * (width - 1)))
            for i in range(lo, min(hi, width)):
                row[i] = "█"
        rows.append(f"{name.ljust(pad)} |{''.join(row)}|")
    scale = f"{' ' * pad}  0{' ' * (width - len(f'{total:.1f}') - 1)}{total:.1f}s"
    return "\n".join(rows + [scale])
