"""Allen's interval algebra — the temporal vocabulary of OCPN.

Little & Ghafoor's OCPN construction (reference [4] of the paper) encodes
the thirteen possible temporal relationships between two media intervals.
This module provides:

* :class:`TemporalRelation` — the seven forward relations plus ``equals``
  (the six inverses are expressed with :meth:`TemporalRelation.inverse`).
* :class:`Interval` — a concrete ``(start, end)`` pair.
* :func:`relation_between` — classify two concrete intervals.
* :func:`schedule_pair` — given a relation, durations, and an optional delay,
  compute concrete start times for the two objects — the arithmetic that
  the OCPN compiler mirrors structurally.

All times are floats in seconds on the presentation timeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class TemporalRelation(enum.Enum):
    """The thirteen Allen relations, collapsed to 7 canonical + inverses.

    ``a BEFORE b`` means a ends strictly before b starts (gap > 0);
    ``MEETS`` is the gap == 0 case, and so on, exactly following
    Allen (1983) and the OCPN paper's figure of pairwise relations.
    """

    BEFORE = "before"
    MEETS = "meets"
    OVERLAPS = "overlaps"
    DURING = "during"
    STARTS = "starts"
    FINISHES = "finishes"
    EQUALS = "equals"
    # inverses
    AFTER = "after"
    MET_BY = "met-by"
    OVERLAPPED_BY = "overlapped-by"
    CONTAINS = "contains"
    STARTED_BY = "started-by"
    FINISHED_BY = "finished-by"

    def inverse(self) -> "TemporalRelation":
        pairs = {
            TemporalRelation.BEFORE: TemporalRelation.AFTER,
            TemporalRelation.MEETS: TemporalRelation.MET_BY,
            TemporalRelation.OVERLAPS: TemporalRelation.OVERLAPPED_BY,
            TemporalRelation.DURING: TemporalRelation.CONTAINS,
            TemporalRelation.STARTS: TemporalRelation.STARTED_BY,
            TemporalRelation.FINISHES: TemporalRelation.FINISHED_BY,
            TemporalRelation.EQUALS: TemporalRelation.EQUALS,
        }
        inverse_pairs = {v: k for k, v in pairs.items()}
        return pairs.get(self) or inverse_pairs[self]

    def is_canonical(self) -> bool:
        """True for the 7 relations OCPN compiles directly."""
        return self in _CANONICAL

    def canonicalize(self) -> Tuple["TemporalRelation", bool]:
        """Return (canonical relation, swapped) — swapped means the operand
        order must be exchanged to use the canonical construction."""
        if self.is_canonical():
            return self, False
        return self.inverse(), True


_CANONICAL = {
    TemporalRelation.BEFORE,
    TemporalRelation.MEETS,
    TemporalRelation.OVERLAPS,
    TemporalRelation.DURING,
    TemporalRelation.STARTS,
    TemporalRelation.FINISHES,
    TemporalRelation.EQUALS,
}


@dataclass(frozen=True)
class Interval:
    """A half-open time interval ``[start, end)`` with ``end > start``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError(f"interval must have end > start, got {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, delta: float) -> "Interval":
        return Interval(self.start + delta, self.end + delta)

    def overlaps_with(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


def relation_between(a: Interval, b: Interval, *, tol: float = 1e-9) -> TemporalRelation:
    """Classify the temporal relation of ``a`` with respect to ``b``."""

    def eq(x: float, y: float) -> bool:
        return abs(x - y) <= tol

    if eq(a.start, b.start) and eq(a.end, b.end):
        return TemporalRelation.EQUALS
    if eq(a.start, b.start):
        return TemporalRelation.STARTS if a.end < b.end else TemporalRelation.STARTED_BY
    if eq(a.end, b.end):
        return (
            TemporalRelation.FINISHES if a.start > b.start else TemporalRelation.FINISHED_BY
        )
    if eq(a.end, b.start):
        return TemporalRelation.MEETS
    if eq(b.end, a.start):
        return TemporalRelation.MET_BY
    if a.end < b.start:
        return TemporalRelation.BEFORE
    if b.end < a.start:
        return TemporalRelation.AFTER
    if a.start > b.start and a.end < b.end:
        return TemporalRelation.DURING
    if b.start > a.start and b.end < a.end:
        return TemporalRelation.CONTAINS
    if a.start < b.start:
        return TemporalRelation.OVERLAPS
    return TemporalRelation.OVERLAPPED_BY


def schedule_pair(
    relation: TemporalRelation,
    duration_a: float,
    duration_b: float,
    *,
    delay: float = 0.0,
    origin: float = 0.0,
) -> Tuple[Interval, Interval]:
    """Concrete intervals for two objects under ``relation``.

    ``delay`` parameterizes the relations that need one:

    * ``BEFORE``: gap between a's end and b's start (must be > 0).
    * ``OVERLAPS``: how long a plays before b starts (0 < delay, and the
      overlap must be positive).
    * ``DURING``: how long b plays before a starts (0 < delay and
      delay + duration_a < duration_b).

    Raises :class:`ValueError` when durations are inconsistent with the
    relation (e.g. ``EQUALS`` with different durations), mirroring the
    validation the OCPN compiler performs.
    """
    if duration_a <= 0 or duration_b <= 0:
        raise ValueError("durations must be positive")
    rel, swapped = relation.canonicalize()
    if swapped:
        b_int, a_int = schedule_pair(
            rel, duration_b, duration_a, delay=delay, origin=origin
        )
        return a_int, b_int

    a = Interval(origin, origin + duration_a)
    if rel is TemporalRelation.EQUALS:
        if abs(duration_a - duration_b) > 1e-9:
            raise ValueError("EQUALS requires identical durations")
        return a, Interval(origin, origin + duration_b)
    if rel is TemporalRelation.STARTS:
        if duration_a >= duration_b:
            raise ValueError("STARTS requires duration_a < duration_b")
        return a, Interval(origin, origin + duration_b)
    if rel is TemporalRelation.FINISHES:
        if duration_a >= duration_b:
            raise ValueError("FINISHES requires duration_a < duration_b")
        b = Interval(origin, origin + duration_b)
        return a.shifted(duration_b - duration_a), b
    if rel is TemporalRelation.MEETS:
        return a, Interval(a.end, a.end + duration_b)
    if rel is TemporalRelation.BEFORE:
        if delay <= 0:
            raise ValueError("BEFORE requires a positive delay")
        return a, Interval(a.end + delay, a.end + delay + duration_b)
    if rel is TemporalRelation.OVERLAPS:
        if not 0 < delay < duration_a:
            raise ValueError("OVERLAPS requires 0 < delay < duration_a")
        if origin + delay + duration_b <= a.end:
            raise ValueError("OVERLAPS requires b to end after a")
        return a, Interval(origin + delay, origin + delay + duration_b)
    if rel is TemporalRelation.DURING:
        if delay <= 0 or delay + duration_a >= duration_b:
            raise ValueError("DURING requires 0 < delay and delay+dur_a < dur_b")
        b = Interval(origin, origin + duration_b)
        return a.shifted(delay), b
    raise ValueError(f"unsupported relation {relation}")  # pragma: no cover
