"""Prioritized Petri nets — the comparison baseline (Guan, Yu & Yang [13]).

Reference [13] of the paper handles user interaction in distributed
multimedia by assigning *priorities* to transitions: among simultaneously
enabled transitions, only those of maximal priority may fire, so an
interaction transition with high priority preempts ordinary playback
transitions. The paper's extended model instead uses a separate control
subnet; bench S1 compares the two under interactive workloads.

:class:`PrioritizedPetriNet` refines the enabling rule of
:class:`~repro.core.petri.PetriNet`; :class:`PrioritizedScheduler` runs a
timed net under the prioritized rule.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from .petri import Marking, PetriNet
from .timed import TimedExecution, TimedPetriNet


class PrioritizedPetriNet(PetriNet):
    """A Petri net whose enabling rule respects transition priorities.

    A transition is *priority-enabled* when it is ordinarily enabled and no
    other ordinarily-enabled transition has a strictly higher priority.
    ``is_enabled`` keeps the base semantics (structural enabling);
    :meth:`enabled` applies the priority filter, so reachability-style
    analyses can still use the untimed rule explicitly.
    """

    def enabled(self, marking: Optional[Marking] = None) -> List[str]:
        base = [t for t in (tr.name for tr in self.transitions) if self.is_enabled(t, marking)]
        if not base:
            return []
        top = max(self.transition(t).priority for t in base)
        return [t for t in base if self.transition(t).priority == top]

    def priority_enabled(self, transition: str, marking: Optional[Marking] = None) -> bool:
        return transition in self.enabled(marking)


def preemption_order(net: PrioritizedPetriNet, marking: Optional[Marking] = None) -> List[str]:
    """All structurally enabled transitions, highest priority first.

    Useful for audit displays: shows what *would* fire and what is being
    preempted under the current marking.
    """
    base = [t for t in (tr.name for tr in net.transitions) if net.is_enabled(t, marking)]
    return sorted(base, key=lambda t: -net.transition(t).priority)


class PrioritizedScheduler:
    """Timed execution where each step fires the highest-priority choice.

    Wraps :class:`~repro.core.timed.TimedExecution` with a chooser that
    respects priorities — the firing-selection policy of [13].
    """

    def __init__(self, timed_net: TimedPetriNet) -> None:
        if not isinstance(timed_net.net, PrioritizedPetriNet):
            raise TypeError("PrioritizedScheduler requires a PrioritizedPetriNet")
        self.timed_net = timed_net

    def run(self, **kwargs) -> TimedExecution:
        """Execute to quiescence.

        :class:`~repro.core.timed.TimedExecution` already picks the first
        entry of ``net.enabled()``; because :class:`PrioritizedPetriNet`
        restricts that list to maximal-priority transitions, the combination
        realizes the prioritized firing rule with no further machinery.
        """
        self.timed_net.net.reset()
        return self.timed_net.execute(**kwargs)
