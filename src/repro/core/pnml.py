"""PNML-style XML interchange for Petri nets.

A pragmatic subset of the PNML standard (ISO/IEC 15909-2): places with
initial markings, transitions, weighted arcs, plus two tool-specific
extensions carried in ``<toolspecific tool="repro">`` elements — place
durations (timed nets) and inhibitor arcs — so every net this library
builds round-trips losslessly. Files written here open in PNML-aware
editors (ignoring the tool-specific parts), and plain PNML from other
tools loads here.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Optional, Tuple

from .petri import PetriNet, PetriNetError
from .timed import TimedPetriNet

_TOOL = "repro"


class PNMLError(PetriNetError):
    """Malformed or unsupported PNML input."""


def _text_child(parent: ET.Element, tag: str, text: str) -> ET.Element:
    outer = ET.SubElement(parent, tag)
    inner = ET.SubElement(outer, "text")
    inner.text = text
    return outer


def net_to_pnml(
    net: PetriNet, *, durations: Optional[Dict[str, float]] = None
) -> str:
    """Serialize a net (optionally with place durations) to PNML XML."""
    root = ET.Element("pnml")
    net_el = ET.SubElement(
        root, "net",
        id=net.name or "net",
        type="http://www.pnml.org/version-2009/grammar/ptnet",
    )
    page = ET.SubElement(net_el, "page", id="page0")

    for place in net.places:
        place_el = ET.SubElement(page, "place", id=place.name)
        _text_child(place_el, "name", place.label or place.name)
        tokens = net.initial_marking[place.name]
        if tokens:
            _text_child(place_el, "initialMarking", str(tokens))
        extras = []
        duration = (durations or {}).get(place.name)
        if duration:
            extras.append(("duration", f"{duration!r}"))
        if place.capacity is not None:
            extras.append(("capacity", str(place.capacity)))
        if extras:
            tool = ET.SubElement(
                place_el, "toolspecific", tool=_TOOL, version="1"
            )
            for key, value in extras:
                ET.SubElement(tool, key).text = value

    for transition in net.transitions:
        transition_el = ET.SubElement(page, "transition", id=transition.name)
        _text_child(transition_el, "name", transition.label or transition.name)
        if transition.priority:
            tool = ET.SubElement(
                transition_el, "toolspecific", tool=_TOOL, version="1"
            )
            ET.SubElement(tool, "priority").text = str(transition.priority)

    arc_index = 0
    for transition in net.transitions:
        name = transition.name
        for place, weight in net.inputs(name).items():
            arc_el = ET.SubElement(
                page, "arc", id=f"a{arc_index}", source=place, target=name
            )
            arc_index += 1
            if weight != 1:
                _text_child(arc_el, "inscription", str(weight))
        for place, weight in net.outputs(name).items():
            arc_el = ET.SubElement(
                page, "arc", id=f"a{arc_index}", source=name, target=place
            )
            arc_index += 1
            if weight != 1:
                _text_child(arc_el, "inscription", str(weight))
        for place, weight in net.inhibitors(name).items():
            arc_el = ET.SubElement(
                page, "arc", id=f"a{arc_index}", source=place, target=name
            )
            arc_index += 1
            if weight != 1:
                _text_child(arc_el, "inscription", str(weight))
            tool = ET.SubElement(arc_el, "toolspecific", tool=_TOOL, version="1")
            ET.SubElement(tool, "inhibitor").text = "true"

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def timed_net_to_pnml(timed: TimedPetriNet) -> str:
    return net_to_pnml(timed.net, durations=timed.durations)


def _read_text(element: ET.Element, tag: str) -> Optional[str]:
    child = element.find(f"{tag}/text")
    return child.text if child is not None else None


def _tool_element(element: ET.Element) -> Optional[ET.Element]:
    for tool in element.findall("toolspecific"):
        if tool.get("tool") == _TOOL:
            return tool
    return None


def net_from_pnml(xml_text: str) -> Tuple[PetriNet, Dict[str, float]]:
    """Parse PNML; returns ``(net, durations)``.

    ``durations`` is empty for untimed input. Unknown toolspecific blocks
    are ignored; structural errors raise :class:`PNMLError`.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise PNMLError(f"invalid PNML XML: {exc}") from exc
    net_el = root.find("net")
    if net_el is None:
        raise PNMLError("no <net> element")
    net = PetriNet(net_el.get("id", "net"))
    durations: Dict[str, float] = {}
    marking: Dict[str, int] = {}

    pages = net_el.findall("page") or [net_el]
    for page in pages:
        for place_el in page.findall("place"):
            place_id = place_el.get("id")
            if not place_id:
                raise PNMLError("place without id")
            label = _read_text(place_el, "name") or ""
            capacity = None
            tool = _tool_element(place_el)
            if tool is not None:
                duration_el = tool.find("duration")
                if duration_el is not None and duration_el.text:
                    durations[place_id] = float(duration_el.text)
                capacity_el = tool.find("capacity")
                if capacity_el is not None and capacity_el.text:
                    capacity = int(capacity_el.text)
            net.add_place(place_id, label=label, capacity=capacity)
            initial = _read_text(place_el, "initialMarking")
            if initial:
                marking[place_id] = int(initial)

        for transition_el in page.findall("transition"):
            transition_id = transition_el.get("id")
            if not transition_id:
                raise PNMLError("transition without id")
            label = _read_text(transition_el, "name") or ""
            priority = 0
            tool = _tool_element(transition_el)
            if tool is not None:
                priority_el = tool.find("priority")
                if priority_el is not None and priority_el.text:
                    priority = int(priority_el.text)
            net.add_transition(transition_id, priority=priority, label=label)

    for page in pages:
        for arc_el in page.findall("arc"):
            source = arc_el.get("source")
            target = arc_el.get("target")
            if not source or not target:
                raise PNMLError("arc missing source/target")
            weight_text = _read_text(arc_el, "inscription")
            weight = int(weight_text) if weight_text else 1
            inhibitor = False
            tool = _tool_element(arc_el)
            if tool is not None:
                flag = tool.find("inhibitor")
                inhibitor = flag is not None and flag.text == "true"
            net.add_arc(source, target, weight=weight, inhibitor=inhibitor)

    net.set_marking(marking)
    return net, durations


def timed_net_from_pnml(xml_text: str) -> TimedPetriNet:
    net, durations = net_from_pnml(xml_text)
    return TimedPetriNet(net, durations)
