"""Unit tests for player overlay state (current slide, active annotations)."""

import pytest

from repro.lod import (
    Lecture,
    LectureRecorder,
    MediaStore,
    MicrophoneSource,
    WebPublishingManager,
)
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import VirtualNetwork


@pytest.fixture
def world():
    recorder = LectureRecorder("Overlay", "Prof", microphone=MicrophoneSource())
    recorder.start()
    recorder.annotate(3.0, "note one", duration=4.0)
    recorder.advance_slide(10.0)
    recorder.annotate(12.0, "note two", duration=4.0)
    lecture = recorder.finish(20.0)
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=2e6, delay=0.02)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v", "/s", lecture)
    record = WebPublishingManager(server, store).publish(
        video_path="/v", slide_dir="/s", point="ov"
    )
    return net, record


def play_to(net, record, position):
    player = MediaPlayer(net, "student")
    player.connect(record.url)
    player.play(burst_factor=8.0)
    while player.state is not PlayerState.PLAYING or player.position < position:
        if player.state is PlayerState.FINISHED:
            break
        net.simulator.step()
    return player


class TestOverlayState:
    def test_no_slide_before_playback(self, world):
        net, record = world
        player = MediaPlayer(net, "student")
        assert player.current_slide is None
        assert player.active_annotations() == []

    def test_current_slide_tracks_position(self, world):
        net, record = world
        player = play_to(net, record, 5.0)
        assert player.current_slide == "slide0"
        net.simulator.run_until(net.simulator.now + 7)
        assert player.current_slide == "slide1"

    def test_annotation_active_during_lifetime(self, world):
        net, record = world
        player = play_to(net, record, 4.0)
        assert player.active_annotations(lifetime=4.0) == ["note one"]

    def test_annotation_expires(self, world):
        net, record = world
        player = play_to(net, record, 9.0)
        assert player.active_annotations(lifetime=4.0) == []

    def test_second_annotation_on_second_slide(self, world):
        net, record = world
        player = play_to(net, record, 13.0)
        assert player.current_slide == "slide1"
        assert player.active_annotations(lifetime=4.0) == ["note two"]
