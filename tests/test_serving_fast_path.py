"""The encode-once/serve-many serving path.

Covers the shared-schedule pacing groups (sessions started together ride
one event chain), their pause/seek/close detachment semantics, the
event-driven broadcast fan-out (an idle live point schedules nothing),
and — the load-bearing property — that the fast path delivers packets
byte-identical to the legacy per-session walk.
"""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.asf.header import StreamProperties
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.streaming import MediaServer, PublishError, SessionState
from repro.web import VirtualNetwork

PROFILE = get_profile("dsl-256k")


def make_asf(duration=20.0, slides=2):
    encoder = ASFEncoder(EncoderConfig(profile=PROFILE))
    per_slide = duration / slides
    return encoder.encode_file(
        file_id="lec",
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(slides)]
        ),
    )


def make_server(asf, clients, **server_kwargs):
    net = VirtualNetwork()
    for name in clients:
        net.connect("server", name, bandwidth=2_000_000, delay=0.02)
    server = MediaServer(net, "server", port=8080, **server_kwargs)
    server.publish("lecture", asf)
    return net, server


def open_and_play(server, client, sink):
    session = server.open_session("lecture", client, sink.append)
    server.play(session.session_id)
    return session


class TestPacingGroups:
    def test_same_instant_sessions_share_a_group(self):
        asf = make_asf()
        net, server = make_server(asf, ["c1", "c2"])
        a = open_and_play(server, "c1", [])
        b = open_and_play(server, "c2", [])
        assert a.pacing_group is not None
        assert a.pacing_group is b.pacing_group
        assert set(a.pacing_group.members) == {a.session_id, b.session_id}

    def test_staggered_sessions_get_separate_groups(self):
        asf = make_asf()
        net, server = make_server(asf, ["c1", "c2"])
        a = open_and_play(server, "c1", [])
        net.simulator.run_until(1.0)
        b = open_and_play(server, "c2", [])
        assert a.pacing_group is not b.pacing_group

    def test_group_event_count_is_shared(self):
        """N same-instant viewers add ~zero pacing events over one viewer."""
        asf = make_asf()

        def events_for(count):
            net, server = make_server(
                asf, [f"c{i}" for i in range(count)], pacing_quantum=0.25
            )
            sinks = [[] for _ in range(count)]
            for i in range(count):
                open_and_play(server, f"c{i}", sinks[i])
            net.simulator.run()
            assert all(len(s) == len(sinks[0]) for s in sinks)
            return net.simulator.events_processed

        def legacy_events_for(count):
            net, server = make_server(
                asf, [f"c{i}" for i in range(count)], shared_pacing=False
            )
            for i in range(count):
                open_and_play(server, f"c{i}", [])
            net.simulator.run()
            return net.simulator.events_processed

        one, eight = events_for(1), events_for(8)
        # link events scale with viewers; pacing events must not — so the
        # shared walk stays far below the legacy per-session event chains
        assert eight < legacy_events_for(8) * 0.5
        assert eight < one * 8

    def test_pause_detaches_without_stopping_others(self):
        asf = make_asf()
        net, server = make_server(asf, ["c1", "c2"])
        got_a, got_b = [], []
        a = open_and_play(server, "c1", got_a)
        b = open_and_play(server, "c2", got_b)
        net.simulator.run_until(2.0)
        server.pause(a.session_id)
        assert a.pacing_group is None
        assert b.pacing_group is not None
        paused_count = len(got_a)
        net.simulator.run_until(6.0)
        assert len(got_a) == paused_count  # a frozen
        assert len(got_b) > paused_count  # b kept going

    def test_resume_rejoins_from_paused_cursor(self):
        asf = make_asf()
        net, server = make_server(asf, ["c1"])
        got = []
        session = open_and_play(server, "c1", got)
        net.simulator.run_until(2.0)
        server.pause(session.session_id)
        cursor = session.packet_cursor
        assert cursor > 0
        net.simulator.run_until(5.0)
        server.resume(session.session_id)
        net.simulator.run()
        assert session.state is SessionState.FINISHED
        sequences = [p.sequence for p in got]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(asf.packets)  # nothing skipped

    def test_pause_after_delivery_finished_is_satisfied(self):
        """The client can still be rendering its buffer when the server's
        packet walk completes; a user pause then must not be an error."""
        asf = make_asf()
        net, server = make_server(asf, ["c1"])
        got = []
        session = open_and_play(server, "c1", got)
        net.simulator.run()
        assert session.state is SessionState.FINISHED
        delivered = len(got)
        server.pause(session.session_id)  # no-op, not a 409
        assert session.state is SessionState.FINISHED
        server.resume(session.session_id)  # replay-from-end, legal too
        net.simulator.run()
        assert session.state is SessionState.FINISHED
        assert len(got) == delivered  # cursor was at the end; nothing resent

    def test_close_mid_group_leaves_survivors_running(self):
        asf = make_asf()
        net, server = make_server(asf, ["c1", "c2"])
        got_b = []
        a = open_and_play(server, "c1", [])
        b = open_and_play(server, "c2", got_b)
        net.simulator.run_until(1.0)
        server.close_session(a.session_id)
        net.simulator.run()
        assert b.state is SessionState.FINISHED
        assert len({p.sequence for p in got_b}) == len(asf.packets)

    def test_quantum_validation(self):
        net = VirtualNetwork()
        net.connect("server", "c", bandwidth=1e6)
        with pytest.raises(PublishError):
            MediaServer(net, "server", pacing_quantum=-0.1)


class TestByteIdentity:
    @pytest.mark.parametrize("quantum", [0.0, 0.5])
    def test_fast_path_matches_legacy_bytes(self, quantum):
        """Same content, same wire bytes — fan-out sharing is invisible."""
        asf = make_asf()

        def delivered(**kwargs):
            net, server = make_server(asf, ["c1", "c2"], **kwargs)
            sinks = {name: [] for name in ("c1", "c2")}
            for name in sinks:
                open_and_play(server, name, sinks[name])
            net.simulator.run()
            return {
                name: b"".join(p.pack() for p in packets)
                for name, packets in sinks.items()
            }

        legacy = delivered(shared_pacing=False)
        fast = delivered(shared_pacing=True, pacing_quantum=quantum)
        assert fast == legacy

    def test_fast_path_matches_legacy_with_burst(self):
        asf = make_asf()

        def delivered(**kwargs):
            net, server = make_server(asf, ["c1"], **kwargs)
            got = []
            session = server.open_session("lecture", "c1", got.append)
            server.play(session.session_id, burst_factor=3.0,
                        burst_seconds=2.0)
            net.simulator.run()
            return [(p.sequence, p.pack()) for p in got]

        assert (
            delivered(shared_pacing=True)
            == delivered(shared_pacing=False)
        )


class TestEventDrivenBroadcast:
    def make_live_server(self):
        from repro.lod import LiveCaptureSession

        net = VirtualNetwork()
        net.connect("server", "viewer", bandwidth=2e6, delay=0.02)
        server = MediaServer(net, "server", port=8080)
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        return net, server, capture

    def test_idle_broadcast_point_schedules_nothing(self):
        """No viewers, no fresh packets -> no events: the old 50ms polling
        pump burned ~20 events/s whether or not anything happened."""
        net = VirtualNetwork()
        net.connect("server", "viewer", bandwidth=2e6)
        server = MediaServer(net, "server", port=8080)
        encoder = ASFEncoder(EncoderConfig(profile=get_profile("isdn-dual")))
        live = encoder.start_live(
            file_id="live",
            streams=[StreamProperties(1, "video", bitrate=100_000)],
        )
        server.publish("live", live.stream)
        before = net.simulator.events_processed
        net.simulator.run_until(10.0)
        assert net.simulator.events_processed == before

    def test_fanout_follows_capture(self):
        net, server, capture = self.make_live_server()
        server.publish("live", capture.stream)
        got = []
        session = server.open_session("live", "viewer", got.append)
        server.play(session.session_id)
        net.simulator.run_until(3.0)
        mid = len(got)
        assert mid > 0
        net.simulator.run_until(6.0)
        assert len(got) > mid  # still flowing with the capture
        capture.finish()

    def test_unpublish_stops_future_fanout(self):
        net, server, capture = self.make_live_server()
        server.publish("live", capture.stream)
        got = []
        session = server.open_session("live", "viewer", got.append)
        server.play(session.session_id)
        net.simulator.run_until(2.0)
        server.unpublish("live")
        net.simulator.run_until(2.5)  # drain packets already on the wire
        seen = len(got)
        net.simulator.run_until(5.0)
        assert len(got) == seen
        capture.finish()
