"""Unit tests for the base Petri net model (repro.core.petri)."""

import pytest

from repro.core.petri import (
    Arc,
    DuplicateNodeError,
    Marking,
    NotEnabledError,
    PetriNet,
    PetriNetError,
    Place,
    Transition,
    UnknownNodeError,
)


class TestPlace:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Place("")

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            Place("p", capacity=-1)

    def test_zero_capacity_allowed(self):
        assert Place("p", capacity=0).capacity == 0


class TestTransition:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Transition("")

    def test_default_priority_zero(self):
        assert Transition("t").priority == 0


class TestArc:
    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            Arc("a", "b", weight=0)


class TestMarking:
    def test_unknown_place_reads_zero(self):
        assert Marking({"p": 1})["q"] == 0

    def test_zero_entries_normalized_away(self):
        assert Marking({"p": 0, "q": 2}) == Marking({"q": 2})

    def test_hash_equal_markings(self):
        assert hash(Marking({"p": 1, "q": 0})) == hash(Marking({"p": 1}))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Marking({"p": -1})

    def test_with_delta(self):
        m = Marking({"p": 2}).with_delta({"p": -1, "q": 3})
        assert m["p"] == 1 and m["q"] == 3

    def test_with_delta_to_negative_raises(self):
        with pytest.raises(ValueError):
            Marking({"p": 1}).with_delta({"p": -2})

    def test_total(self):
        assert Marking({"a": 2, "b": 3}).total() == 5

    def test_covers(self):
        assert Marking({"a": 2, "b": 1}).covers(Marking({"a": 1}))
        assert not Marking({"a": 2}).covers(Marking({"b": 1}))

    def test_equality_with_plain_dict(self):
        assert Marking({"p": 1}) == {"p": 1, "q": 0}

    def test_len_and_iter(self):
        m = Marking({"a": 1, "b": 2})
        assert len(m) == 2 and set(m) == {"a", "b"}


@pytest.fixture
def simple_net():
    """p1 --t1--> p2 --t2--> p3 with one token in p1."""
    net = PetriNet("simple")
    net.add_place("p1", tokens=1)
    net.add_place("p2")
    net.add_place("p3")
    net.add_transition("t1")
    net.add_transition("t2")
    net.add_arc("p1", "t1")
    net.add_arc("t1", "p2")
    net.add_arc("p2", "t2")
    net.add_arc("t2", "p3")
    return net


class TestConstruction:
    def test_duplicate_place_rejected(self, simple_net):
        with pytest.raises(DuplicateNodeError):
            simple_net.add_place("p1")

    def test_place_transition_name_collision_rejected(self, simple_net):
        with pytest.raises(DuplicateNodeError):
            simple_net.add_transition("p1")

    def test_arc_between_two_places_rejected(self, simple_net):
        with pytest.raises(UnknownNodeError):
            simple_net.add_arc("p1", "p2")

    def test_arc_to_unknown_node_rejected(self, simple_net):
        with pytest.raises(UnknownNodeError):
            simple_net.add_arc("p1", "nope")

    def test_inhibitor_must_be_place_to_transition(self, simple_net):
        with pytest.raises(PetriNetError):
            simple_net.add_arc("t1", "p2", inhibitor=True)

    def test_isolated_transition_fails_validation(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("lonely")
        with pytest.raises(PetriNetError):
            net.validate()

    def test_accessors(self, simple_net):
        assert simple_net.inputs("t1") == {"p1": 1}
        assert simple_net.outputs("t1") == {"p2": 1}
        assert simple_net.preset("p2") == ("t1",)
        assert simple_net.postset("p2") == ("t2",)
        assert simple_net.inhibited_by("p1") == ()

    def test_inhibited_by_index(self, simple_net):
        simple_net.add_place("blocker")
        simple_net.add_arc("blocker", "t1", inhibitor=True)
        assert simple_net.inhibited_by("blocker") == ("t1",)
        assert simple_net.postset("blocker") == ()

    def test_unknown_lookup_raises(self, simple_net):
        with pytest.raises(UnknownNodeError):
            simple_net.place("zzz")
        with pytest.raises(UnknownNodeError):
            simple_net.transition("zzz")


class TestFiring:
    def test_enabled_initial(self, simple_net):
        assert simple_net.enabled() == ["t1"]

    def test_fire_moves_token(self, simple_net):
        simple_net.fire("t1")
        assert simple_net.marking == Marking({"p2": 1})
        assert simple_net.enabled() == ["t2"]

    def test_fire_disabled_raises(self, simple_net):
        with pytest.raises(NotEnabledError):
            simple_net.fire("t2")

    def test_fire_sequence(self, simple_net):
        final = simple_net.fire_sequence(["t1", "t2"])
        assert final == Marking({"p3": 1})

    def test_fire_sequence_atomic_on_failure(self, simple_net):
        before = simple_net.marking
        with pytest.raises(NotEnabledError):
            simple_net.fire_sequence(["t1", "t1"])
        assert simple_net.marking == before

    def test_reset_restores_initial(self, simple_net):
        simple_net.fire("t1")
        simple_net.reset()
        assert simple_net.marking == Marking({"p1": 1})

    def test_run_to_quiescence(self, simple_net):
        fired = simple_net.run()
        assert fired == ["t1", "t2"]
        assert simple_net.enabled() == []

    def test_run_respects_chooser(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("a")
        net.add_place("b")
        for t, dst in (("ta", "a"), ("tb", "b")):
            net.add_transition(t)
            net.add_arc("p", t)
            net.add_arc(t, dst)
        fired = net.run(chooser=lambda en: sorted(en)[-1])
        assert fired == ["tb"]

    def test_weighted_arcs(self):
        net = PetriNet()
        net.add_place("p", tokens=3)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        net.add_arc("t", "q", weight=5)
        net.fire("t")
        assert net.marking == Marking({"p": 1, "q": 5})
        assert not net.is_enabled("t")

    def test_inhibitor_arc_blocks(self):
        net = PetriNet()
        net.add_place("go", tokens=1)
        net.add_place("blocker", tokens=1)
        net.add_place("out")
        net.add_transition("t")
        net.add_arc("go", "t")
        net.add_arc("t", "out")
        net.add_arc("blocker", "t", inhibitor=True)
        assert not net.is_enabled("t")

    def test_inhibitor_arc_threshold(self):
        net = PetriNet()
        net.add_place("go", tokens=1)
        net.add_place("level", tokens=1)
        net.add_place("out")
        net.add_transition("t")
        net.add_arc("go", "t")
        net.add_arc("t", "out")
        net.add_arc("level", "t", inhibitor=True, weight=2)
        assert net.is_enabled("t")  # 1 < threshold 2

    def test_capacity_blocks_output(self):
        net = PetriNet()
        net.add_place("src", tokens=2)
        net.add_place("dst", capacity=1)
        net.add_transition("t")
        net.add_arc("src", "t")
        net.add_arc("t", "dst")
        net.fire("t")
        assert not net.is_enabled("t")  # dst full

    def test_capacity_selfloop_accounts_consumption(self):
        net = PetriNet()
        net.add_place("p", tokens=1, capacity=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        assert net.is_enabled("t")  # consume 1, produce 1 => stays at cap

    def test_successor_does_not_mutate(self, simple_net):
        before = simple_net.marking
        simple_net.successor(before, "t1")
        assert simple_net.marking == before


class TestIncidenceAndCopy:
    def test_incidence_matrix(self, simple_net):
        places, transitions, C = simple_net.incidence_matrix()
        i = {p: k for k, p in enumerate(places)}
        j = {t: k for k, t in enumerate(transitions)}
        assert C[i["p1"]][j["t1"]] == -1
        assert C[i["p2"]][j["t1"]] == 1
        assert C[i["p2"]][j["t2"]] == -1
        assert C[i["p3"]][j["t2"]] == 1

    def test_selfloop_cancels_in_incidence(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        _, _, C = net.incidence_matrix()
        assert C == [[0]]

    def test_copy_independent(self, simple_net):
        clone = simple_net.copy()
        clone.fire("t1")
        assert simple_net.marking == Marking({"p1": 1})
        assert clone.marking == Marking({"p2": 1})

    def test_copy_preserves_structure(self, simple_net):
        clone = simple_net.copy()
        assert {p.name for p in clone.places} == {"p1", "p2", "p3"}
        assert clone.inputs("t1") == {"p1": 1}

    def test_set_marking_unknown_place(self, simple_net):
        with pytest.raises(UnknownNodeError):
            simple_net.set_marking({"nope": 1})
