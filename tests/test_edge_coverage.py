"""Edge-path tests across modules: server API corners, coordinator speed
replication, broadcast unpublish, default links, executor stepping."""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, MediaUnit
from repro.asf.header import StreamProperties
from repro.core.extended import DistributedCoordinator, SiteLink
from repro.core.ocpn import MediaLeaf, compile_spec, sequence
from repro.core.timed import TimedExecution
from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.media import get_profile
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import VirtualNetwork


class TestCoordinatorSpeed:
    def test_speed_command_replicates(self):
        lecture = Lecture.from_slide_durations("S", "P", [30.0, 30.0])
        coord = DistributedCoordinator(
            lecture.to_presentation(), {"s": SiteLink(latency=0.02)},
            beacon_interval=None,
        )
        coord.command("play")
        coord.advance(2)
        coord.command("speed", 2.0)
        coord.advance(4)
        assert coord.master.rate == 2.0
        assert coord.sites["s"].rate == 2.0
        # both advanced ~2 + 4*2 = 10s of media
        assert coord.sites["s"].position == pytest.approx(
            coord.master.position, abs=0.2
        )

    def test_stop_command_replicates(self):
        lecture = Lecture.from_slide_durations("S", "P", [30.0])
        coord = DistributedCoordinator(
            lecture.to_presentation(), {"s": SiteLink(latency=0.02)}
        )
        coord.command("play")
        coord.advance(1)
        coord.command("stop")
        coord.advance(1)
        assert coord.sites["s"].state == "stopped"


class TestServerApiCorners:
    def make_server(self):
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=2e6)
        server = MediaServer(net, "server", port=8080)
        lecture = Lecture.from_slide_durations(
            "X", "P", [10.0], slide_width=160, slide_height=120
        )
        store = MediaStore()
        store.register_lecture("/v", "/s", lecture)
        manager = WebPublishingManager(server, store)
        manager.publish(video_path="/v", slide_dir="/s", point="x")
        return net, server

    def test_describe_python_api(self):
        net, server = self.make_server()
        header = server.describe("x")
        assert header.file_properties.duration_ms == 10_000

    def test_unpublish_broadcast_detaches_feed(self):
        net, server = self.make_server()
        encoder = ASFEncoder(EncoderConfig(profile=get_profile("isdn-dual")))
        live = encoder.start_live(
            file_id="live",
            streams=[StreamProperties(1, "video", bitrate=100_000)],
        )
        server.publish("livepoint", live.stream)
        assert live.stream.subscriber_count == 1  # server's fan-out feed
        server.unpublish("livepoint")
        assert live.stream.subscriber_count == 0
        # new encoder output schedules nothing on the unsubscribed server
        pending_before = net.simulator.pending()
        live.capture(
            [MediaUnit(1, 0, 0, True, b"x" * 200)]
        )
        assert net.simulator.pending() == pending_before

    def test_control_unknown_action_404(self):
        net, server = self.make_server()
        from repro.web import HTTPClient

        client = HTTPClient(net, "student")
        response = client.post(
            "http://server:8080/control/teleport", body={"session_id": 1}
        )
        assert response.status == 404

    def test_control_malformed_body_409(self):
        net, server = self.make_server()
        from repro.web import HTTPClient

        client = HTTPClient(net, "student")
        response = client.post("http://server:8080/control/play", body={})
        assert response.status == 409


class TestNetworkDefaults:
    def test_set_default_link_applies_to_lazy_links(self):
        net = VirtualNetwork()
        net.set_default_link(bandwidth=5_000.0, delay=0.5)
        link = net.link("a", "b")
        assert link.bandwidth == 5_000.0
        assert link.delay == 0.5

    def test_links_are_directional(self):
        net = VirtualNetwork()
        assert net.link("a", "b") is not net.link("b", "a")
        assert net.link("a", "b") is net.link("a", "b")


class TestExecutorStepping:
    def test_manual_stepping_with_external_fires(self):
        spec = sequence(MediaLeaf("a", 2.0), MediaLeaf("b", 3.0))
        compiled = compile_spec(spec)
        compiled.timed_net.net.reset()
        execution = TimedExecution(compiled.timed_net)
        fired = []
        while True:
            event = execution.step()
            if event is None:
                break
            fired.append((round(event.time, 3), event.name))
        # the b playout ends at 5s
        assert execution.makespan() == pytest.approx(5.0)
        assert len(fired) == execution.firings

    def test_advance_then_quiescence(self):
        spec = MediaLeaf("solo", 1.0)
        compiled = compile_spec(spec)
        compiled.timed_net.net.reset()
        execution = TimedExecution(compiled.timed_net)
        execution.run()
        assert execution.is_quiescent()
        assert execution.step() is None
