"""Integration: every example script runs clean and prints its key lines.

The examples are part of the public API contract — this keeps them green.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "published at http://server:8080/lod/lod30" in out
        assert "slide changes" in out
        assert "slide2" in out

    def test_lecture_publishing(self):
        out = run_example("lecture_publishing.py")
        assert "published ->" in out
        assert "script commands:" in out
        assert "extended-net playout schedule:" in out
        assert "stateful catch-up" in out

    def test_distance_learning_classroom(self):
        out = run_example("distance_learning_classroom.py")
        assert "denied:" in out
        assert "with 1s sync beacons" in out
        assert "Jain fairness index" in out

    def test_adaptive_summarization(self):
        out = run_example("adaptive_summarization.py")
        assert "LevelNodes[2]->value = 100" in out
        assert "LevelNodes[2]->value = 120" in out  # after the Fig. 3 insert
        assert "linear truncation" in out

    def test_live_broadcast(self):
        out = run_example("live_broadcast.py")
        assert "broadcasting at" in out
        assert "latecomer" in out
        assert "architecture" in out

    def test_shared_review_session(self):
        out = run_example("shared_review_session.py")
        assert "denied:" in out
        assert "floor passed to 'josh'" in out
        assert "per-member playback" in out

    def test_course_catalog(self):
        out = run_example("course_catalog.py")
        assert "published CS520" in out
        assert "resumed at" in out
        assert "course completion" in out

    def test_module_demo(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "Petri-net verification error" in result.stdout
        assert "content-tree summary levels" in result.stdout
