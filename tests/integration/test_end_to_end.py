"""Integration: the full LOD pipeline across realistic network conditions.

These tests stitch every subsystem together — recorder → orchestrator
(Petri-net verified) → publisher (HTTP form) → media server → multiple
heterogeneous students — and assert whole-system behaviour rather than
module contracts.
"""

import pytest

from repro.asf.drm import DRMError, LicenseServer
from repro.lod import (
    LectureRecorder,
    LODPlayback,
    MediaStore,
    MicrophoneSource,
    WebPublishingManager,
)
from repro.streaming import MediaPlayer, MediaServer
from repro.web import HTTPClient, VirtualNetwork, form_encode


def record_lecture():
    recorder = LectureRecorder(
        "Petri Nets in Practice", "Prof. Deng", microphone=MicrophoneSource()
    )
    recorder.start()
    recorder.annotate(4.0, "definition of a place", duration=2.0)
    recorder.advance_slide(10.0, importance=1)
    recorder.advance_slide(18.0)
    recorder.advance_slide(26.0, importance=1)
    return recorder.finish(34.0)


@pytest.fixture
def campus():
    """A server, the teacher's machine, and three students on different links."""
    net = VirtualNetwork()
    net.connect("teacher", "server", bandwidth=10e6, delay=0.005)
    net.connect("server", "lan-student", bandwidth=5e6, delay=0.005)
    net.connect("server", "dsl-student", bandwidth=500_000, delay=0.04)
    net.connect("server", "lossy-student", bandwidth=2e6, delay=0.08,
                loss_rate=0.03)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    lecture = record_lecture()
    store.register_lecture("/videos/petri.mpg", "/slides/petri/", lecture)
    manager = WebPublishingManager(server, store)
    return net, server, manager, lecture


class TestFullPipeline:
    def test_form_publish_then_three_students_watch(self, campus):
        net, server, manager, lecture = campus
        teacher = HTTPClient(net, "teacher")
        response = teacher.post(
            "http://server:8080/publish",
            body=form_encode(
                {"video_path": "/videos/petri.mpg",
                 "slide_dir": "/slides/petri/", "point": "petri101"}
            ),
        )
        assert response.ok
        url = response.body["url"]

        for host in ("lan-student", "dsl-student", "lossy-student"):
            player = MediaPlayer(net, host)
            report = player.watch(url)
            assert report.duration_watched == pytest.approx(
                lecture.duration, abs=0.3
            ), host
            slides = [c.command.parameter for c in report.slide_changes()]
            assert slides == [s.name for s in lecture.segments], host

    def test_slides_synchronized_within_tick_on_every_link(self, campus):
        net, server, manager, lecture = campus
        record = manager.publish(
            video_path="/videos/petri.mpg", slide_dir="/slides/petri/",
            point="sync-check",
        )
        for host in ("lan-student", "dsl-student", "lossy-student"):
            playback = LODPlayback(net, host, lecture, record.url)
            _, audit = playback.watch()
            assert audit.ok, host
            assert audit.max_error <= 2 * MediaPlayer.RENDER_TICK, host

    def test_annotation_commands_delivered(self, campus):
        net, server, manager, lecture = campus
        record = manager.publish(
            video_path="/videos/petri.mpg", slide_dir="/slides/petri/",
            point="notes",
        )
        report = MediaPlayer(net, "lan-student").watch(record.url)
        annotations = [
            c for c in report.commands if c.command.type == "ANNOTATION"
        ]
        assert len(annotations) == 1
        assert annotations[0].position == pytest.approx(4.0, abs=0.2)

    def test_level_replay_is_shorter_than_full(self, campus):
        net, server, manager, lecture = campus
        record = manager.publish(
            video_path="/videos/petri.mpg", slide_dir="/slides/petri/",
            point="levels",
        )
        tree = manager.content_tree_of("levels")
        playback = LODPlayback(net, "lan-student", lecture, record.url)
        level1 = playback.watch_level(tree, level=1)
        full = playback.watch_level(tree, level=tree.highest_level)
        assert len(level1.segments_played) < len(full.segments_played)
        assert level1.coverage == 1.0 and full.coverage == 1.0

    def test_concurrent_students_share_the_point(self, campus):
        net, server, manager, lecture = campus
        record = manager.publish(
            video_path="/videos/petri.mpg", slide_dir="/slides/petri/",
            point="shared",
        )
        players = [
            MediaPlayer(net, host)
            for host in ("lan-student", "dsl-student")
        ]
        for player in players:
            player.connect(record.url)
            player.play()
        reports = [p.run_until_finished() for p in players]
        for report in reports:
            assert report.duration_watched == pytest.approx(
                lecture.duration, abs=0.3
            )
        assert server.sessions.total_created == 2


class TestProtectedPipeline:
    def test_drm_end_to_end(self, campus):
        net, server, manager, lecture = campus
        licenses = LicenseServer()
        manager.license_server = licenses
        record = manager.publish(
            video_path="/videos/petri.mpg", slide_dir="/slides/petri/",
            point="protected", protect=True,
        )
        licenses.entitle("protected", "lan-student")
        ok = MediaPlayer(net, "lan-student", license_server=licenses)
        report = ok.watch(record.url)
        assert report.duration_watched > lecture.duration - 0.5

        denied = MediaPlayer(net, "dsl-student", license_server=licenses)
        with pytest.raises(DRMError):
            denied.connect(record.url)
