"""Integration: live capture → broadcast → synchronized live viewing.

The paper's second workflow: the teacher broadcasts in real time; students
join, receive inline SLIDE commands, and stay synchronized with the live
feed. Also covers model-vs-stream agreement: the extended Petri-net model
of the same lecture predicts the slide times the stream delivers.
"""

import pytest

from repro.lod import (
    Lecture,
    LiveCaptureSession,
    MicrophoneSource,
)
from repro.media import get_profile
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import VirtualNetwork


@pytest.fixture
def studio():
    net = VirtualNetwork()
    net.connect("server", "student1", bandwidth=2e6, delay=0.02)
    net.connect("server", "student2", bandwidth=2e6, delay=0.1)
    server = MediaServer(net, "server", port=8080)
    return net, server


class TestLiveBroadcast:
    def test_live_slides_reach_viewers(self, studio):
        net, server = studio
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"),
            microphone=MicrophoneSource(), chunk=0.5,
        )
        server.publish("live", capture.stream)

        player = MediaPlayer(net, "student1")
        player.connect(server.url_of("live"))
        player.play()

        capture.advance_slide("intro")
        net.simulator.run_until(5.0)
        capture.advance_slide("agenda")
        net.simulator.run_until(12.0)
        capture.finish()
        player.mark_stream_ended()
        net.simulator.run_until(14.0)
        player.stop()

        fired = [c.command.parameter for c in player.report().commands]
        assert fired == ["intro", "agenda"]

    def test_late_joiner_misses_earlier_commands(self, studio):
        net, server = studio
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        server.publish("live", capture.stream)
        capture.advance_slide("intro")
        net.simulator.run_until(5.0)

        late = MediaPlayer(net, "student2")
        late.connect(server.url_of("live"))
        late.play()
        net.simulator.run_until(6.0)
        capture.advance_slide("agenda")
        net.simulator.run_until(12.0)
        capture.finish()
        late.mark_stream_ended()
        net.simulator.run_until(14.0)
        late.stop()

        fired = [c.command.parameter for c in late.report().commands]
        assert fired == ["agenda"]  # live commands are not replayed

    def test_viewers_receive_paced_media(self, studio):
        net, server = studio
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        server.publish("live", capture.stream)
        player = MediaPlayer(net, "student1", preroll_override=1.0)
        player.connect(server.url_of("live"))
        player.play()
        net.simulator.run_until(10.0)
        capture.finish()
        player.mark_stream_ended()
        net.simulator.run_until(12.0)
        assert len(player.rendered) > 0
        player.stop()


class TestModelStreamAgreement:
    def test_net_model_predicts_stream_slide_times(self):
        """The extended net's schedule == the stream's fired slide times."""
        from repro.lod import MediaStore, WebPublishingManager

        lecture = Lecture.from_slide_durations(
            "Agreement", "Prof", [8.0, 12.0, 6.0],
            slide_width=320, slide_height=240,
        )
        presentation = lecture.to_presentation()
        predicted = {
            segment.name: presentation.segment_start(i)
            for i, segment in enumerate(presentation.segments)
        }

        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=2e6, delay=0.02)
        server = MediaServer(net, "server", port=8080)
        store = MediaStore()
        store.register_lecture("/v", "/s", lecture)
        record = WebPublishingManager(server, store).publish(
            video_path="/v", slide_dir="/s", point="agree"
        )
        report = MediaPlayer(net, "student").watch(record.url)
        measured = {
            c.command.parameter: c.position for c in report.slide_changes()
        }
        assert set(measured) == set(predicted)
        for name, expected in predicted.items():
            assert measured[name] == pytest.approx(expected, abs=0.1), name
