"""Integration: many concurrent students, and the resume workflow."""

import pytest

from repro.lod import (
    Course,
    CourseCatalog,
    Lecture,
    MediaStore,
    StudentProgress,
    WebPublishingManager,
)
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import VirtualNetwork


class TestManyStudents:
    N = 12

    def test_soak_concurrent_students(self):
        """N students on heterogeneous links all finish the same lecture."""
        lecture = Lecture.from_slide_durations(
            "Soak", "Prof", [10.0, 10.0], slide_width=160, slide_height=120,
        )
        net = VirtualNetwork()
        hosts = []
        for i in range(self.N):
            host = f"student{i}"
            net.connect(
                "server", host,
                bandwidth=500_000 + 150_000 * i,
                delay=0.01 + 0.005 * i,
                loss_rate=0.01 if i % 3 == 0 else 0.0,
                queue_limit=10_000,
            )
            hosts.append(host)
        server = MediaServer(net, "server", port=8080)
        store = MediaStore()
        store.register_lecture("/v", "/s", lecture)
        record = WebPublishingManager(server, store).publish(
            video_path="/v", slide_dir="/s", point="soak"
        )
        players = []
        for host in hosts:
            player = MediaPlayer(net, host)
            player.connect(record.url)
            player.play()
            players.append(player)
        assert server.sessions.total_created == self.N
        reports = [p.run_until_finished(timeout=600) for p in players]
        for host, report in zip(hosts, reports):
            assert report.duration_watched == pytest.approx(20.0, abs=0.3), host
            slides = [c.command.parameter for c in report.slide_changes()]
            assert slides == ["slide0", "slide1"], host
        # every session closed itself
        assert len(server.sessions) == 0

    def test_server_accounting_across_sessions(self):
        lecture = Lecture.from_slide_durations(
            "Acct", "Prof", [10.0], slide_width=160, slide_height=120,
        )
        net = VirtualNetwork()
        net.connect("server", "a", bandwidth=2e6)
        net.connect("server", "b", bandwidth=2e6)
        server = MediaServer(net, "server", port=8080)
        store = MediaStore()
        store.register_lecture("/v", "/s", lecture)
        record = WebPublishingManager(server, store).publish(
            video_path="/v", slide_dir="/s", point="acct"
        )
        MediaPlayer(net, "a").watch(record.url)
        MediaPlayer(net, "b").watch(record.url)
        assert server.sessions.total_created == 2
        assert server.http.requests_served >= 2 * 3  # describe+open+play each


class TestResumeWorkflow:
    def test_stop_and_resume_covers_whole_lecture(self):
        lecture = Lecture.from_slide_durations(
            "Resume", "Prof", [10.0, 10.0, 10.0],
            slide_width=160, slide_height=120,
        )
        net = VirtualNetwork()
        net.connect("server", "dana", bandwidth=2e6, delay=0.02)
        server = MediaServer(net, "server", port=8080)
        store = MediaStore()
        manager = WebPublishingManager(server, store)
        catalog = CourseCatalog(manager, store)
        course = Course("C1", "T")
        course.add(lecture)
        catalog.publish_course(course)
        progress = StudentProgress("dana", catalog)
        url = catalog.url_of("C1", "Resume")

        # session 1: stop partway
        player = MediaPlayer(net, "dana")
        player.connect(url)
        player.play(burst_factor=4.0)
        while player.state is not PlayerState.PLAYING:
            net.simulator.step()
        net.simulator.run_until(net.simulator.now + 14.0)
        player.stop()
        progress.record_session("C1", "Resume", player.report())
        mid = progress.resume_position("C1", "Resume")
        assert 10.0 < mid < 20.0
        assert 0.3 < progress.lecture_completion("C1", "Resume") < 0.7

        # session 2: resume from the stored position
        player = MediaPlayer(net, "dana")
        player.connect(url)
        player.play(start=mid, burst_factor=4.0)
        report = player.run_until_finished()
        progress.record_session("C1", "Resume", report, start=mid)
        assert progress.lecture_completion("C1", "Resume") == pytest.approx(1.0)
        assert progress.resume_position("C1", "Resume") == 0.0
        # the resumed session replayed the mid-lecture slide immediately
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired[0] == lecture.segment_at(mid).name
