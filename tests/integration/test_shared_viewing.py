"""Integration: floor-controlled shared viewing over real streams."""

import pytest

from repro.lod import (
    FloorDenied,
    Lecture,
    MediaStore,
    SharedViewing,
    WebPublishingManager,
)
from repro.streaming import MediaServer, PlayerState
from repro.web import VirtualNetwork


@pytest.fixture
def session():
    lecture = Lecture.from_slide_durations(
        "Shared", "Prof", [10.0, 10.0, 10.0],
        slide_width=160, slide_height=120,
    )
    net = VirtualNetwork()
    for user in ("anna", "ben", "caleb"):
        net.connect("server", user, bandwidth=2e6, delay=0.02)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v", "/s", lecture)
    record = WebPublishingManager(server, store).publish(
        video_path="/v", slide_dir="/s", point="shared"
    )
    shared = SharedViewing(
        net, record.url, ["anna", "ben", "caleb"], moderator="anna"
    )
    shared.start(burst_factor=4.0)
    shared.wait_all_playing()
    return net, shared


class TestSharedViewing:
    def test_moderator_holds_floor_initially(self, session):
        _, shared = session
        assert shared.floor.holder == "anna"

    def test_nonholder_denied(self, session):
        _, shared = session
        with pytest.raises(FloorDenied):
            shared.pause("ben")
        assert shared.denial_count() == 1

    def test_holder_pauses_everyone(self, session):
        _, shared = session
        shared.advance(2)
        assert shared.pause("anna") == 3
        positions = shared.positions()
        shared.advance(5)
        after = shared.positions()
        for user in positions:
            assert after[user] == pytest.approx(positions[user], abs=0.01)

    def test_resume_after_pause(self, session):
        _, shared = session
        shared.advance(2)
        shared.pause("anna")
        shared.advance(1)
        assert shared.resume("anna") == 3
        shared.advance(2)
        assert all(
            p.state is PlayerState.PLAYING for p in shared.players.values()
        )

    def test_floor_handoff_enables_new_holder(self, session):
        _, shared = session
        shared.request_floor("ben")
        shared.release_floor("anna")
        assert shared.floor.holder == "ben"
        assert shared.pause("ben") == 3
        with pytest.raises(FloorDenied):
            shared.resume("anna")
        shared.resume("ben")

    def test_holder_seek_moves_everyone(self, session):
        _, shared = session
        shared.advance(2)
        shared.seek("anna", 20.0)
        reports = shared.finish_all()
        for user, report in reports.items():
            # everyone replays slide2 after the shared seek
            fired = [c.command.parameter for c in report.slide_changes()]
            assert fired[-1] == "slide2", user

    def test_group_stays_together(self, session):
        _, shared = session
        shared.advance(5)
        assert shared.spread() < 0.5
        reports = shared.finish_all()
        assert all(
            r.duration_watched == pytest.approx(30.0, abs=0.3)
            for r in reports.values()
        )

    def test_requires_users(self):
        net = VirtualNetwork()
        with pytest.raises(ValueError):
            SharedViewing(net, "http://server:8080/lod/x", [])

    def test_moderator_must_be_member(self):
        net = VirtualNetwork()
        with pytest.raises(ValueError):
            SharedViewing(net, "http://x", ["a"], moderator="zzz")
