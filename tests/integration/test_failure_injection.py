"""Integration: failure injection — outages, mid-stream unpublish, decay.

The paper's system ran on a real campus network; these tests check the
reproduction degrades the way a streaming system should rather than
silently corrupting state.
"""

import pytest

from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.streaming import MediaPlayer, MediaServer, PlayerError, PlayerState
from repro.web import HTTPError, HTTPClient, VirtualNetwork


def published(duration_slides=(10.0, 10.0, 10.0), **link):
    lecture = Lecture.from_slide_durations(
        "FI", "Prof", list(duration_slides),
        slide_width=160, slide_height=120,
    )
    net = VirtualNetwork()
    params = dict(bandwidth=2e6, delay=0.02)
    params.update(link)
    net.connect("server", "student", **params)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v", "/s", lecture)
    record = WebPublishingManager(server, store).publish(
        video_path="/v", slide_dir="/s", point="fi"
    )
    return net, server, record


def play_until_playing(net, record, **player_kwargs):
    player = MediaPlayer(net, "student", **player_kwargs)
    player.connect(record.url)
    player.play()
    while player.state is not PlayerState.PLAYING:
        net.simulator.step()
    return player


class TestServerSideFailures:
    def test_unpublish_mid_stream_stalls_client(self):
        net, server, record = published()
        player = play_until_playing(net, record)
        net.simulator.run_until(net.simulator.now + 2)
        server.unpublish("fi")
        # the client loses its feed and cannot finish
        with pytest.raises(PlayerError):
            player.run_until_finished(timeout=40.0)
        assert player.state in (PlayerState.BUFFERING, PlayerState.PLAYING)

    def test_reconnect_after_republish(self):
        net, server, record = published()
        server.unpublish("fi")
        # describe now 404s
        fresh = MediaPlayer(net, "student")
        with pytest.raises(PlayerError):
            fresh.connect(record.url)

    def test_session_control_after_close_is_conflict(self):
        net, server, record = published()
        player = play_until_playing(net, record)
        server.close_session(player.session_id)
        with pytest.raises(PlayerError):
            player.pause()  # 409 from the control plane


class TestNetworkFailures:
    def test_total_outage_then_recovery(self):
        net, server, record = published()
        player = play_until_playing(net, record)
        net.simulator.run_until(net.simulator.now + 2)
        link = net.link("server", "student")
        link.loss_rate = 0.999999  # outage
        net.simulator.run_until(net.simulator.now + 8)
        assert player.rebuffer_count >= 1
        assert player.state is PlayerState.BUFFERING
        link.loss_rate = 0.0  # repair
        report = player.run_until_finished(timeout=200.0)
        assert report.duration_watched == pytest.approx(30.0, abs=0.3)
        assert report.rebuffer_time > 1.0

    def test_sustained_light_loss_degrades_but_completes(self):
        net, server, record = published(loss_rate=0.05)
        player = MediaPlayer(net, "student")
        report = player.watch(record.url)
        assert report.duration_watched == pytest.approx(30.0, abs=0.3)
        media_loss = [
            rate for stream, rate in report.loss_rates.items() if stream in (1, 2)
        ]
        assert any(rate > 0 for rate in media_loss)
        # commands are in the header, so slides still fire perfectly
        assert len(report.slide_changes()) == 3

    def test_control_plane_survives_loss(self):
        # lossy link: HTTP rides ARQ, so control still works (slower)
        net, server, record = published(loss_rate=0.25)
        player = MediaPlayer(net, "student")
        header = player.connect(record.url)
        assert header.file_properties.duration_ms == 30_000


class TestClientMisuse:
    def test_watch_timeout_is_reported(self):
        net, server, record = published(bandwidth=40_000)  # hopeless link
        player = MediaPlayer(net, "student")
        player.connect(record.url)
        player.play()
        with pytest.raises(PlayerError):
            player.run_until_finished(timeout=30.0)

    def test_report_available_after_failed_run(self):
        net, server, record = published(bandwidth=40_000)
        player = MediaPlayer(net, "student")
        player.connect(record.url)
        player.play()
        try:
            player.run_until_finished(timeout=30.0)
        except PlayerError:
            pass
        report = player.report()  # partial metrics still available
        assert report.duration_watched < 30.0

    def test_double_stop_rejected(self):
        net, server, record = published()
        player = play_until_playing(net, record)
        player.stop()
        with pytest.raises(PlayerError):
            player.stop()
