"""Unit tests for courses, catalog search, and student progress."""

import pytest

from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.lod.catalog import (
    CatalogError,
    Course,
    CourseCatalog,
    StudentProgress,
)
from repro.streaming import MediaPlayer, MediaServer
from repro.web import VirtualNetwork


def lecture(title, slides=2, seconds=10.0):
    return Lecture.from_slide_durations(
        title, "Prof", [seconds] * slides, slide_width=160, slide_height=120
    )


@pytest.fixture
def catalog_world():
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=2e6, delay=0.02)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    manager = WebPublishingManager(server, store)
    catalog = CourseCatalog(manager, store)
    course = Course("CS401", "Distributed Multimedia Systems")
    course.add(lecture("Petri Net Basics"))
    course.add(lecture("OCPN and XOCPN", slides=3))
    course.add(lecture("Streaming Protocols"))
    catalog.publish_course(course)
    return net, catalog, course


class TestCourse:
    def test_needs_code(self):
        with pytest.raises(CatalogError):
            Course("", "x")

    def test_duplicate_lecture_titles_rejected(self):
        course = Course("C1", "t")
        course.add(lecture("A"))
        with pytest.raises(CatalogError):
            course.add(lecture("A"))

    def test_total_duration(self):
        course = Course("C1", "t", [lecture("A"), lecture("B", slides=3)])
        assert course.total_duration == 50.0

    def test_lecture_lookup(self):
        course = Course("C1", "t", [lecture("A")])
        assert course.lecture("A").title == "A"
        with pytest.raises(CatalogError):
            course.lecture("Z")


class TestCourseCatalog:
    def test_publish_course_returns_urls(self, catalog_world):
        net, catalog, course = catalog_world
        assert len(catalog._records) == 3
        url = catalog.url_of("CS401", "Petri Net Basics")
        assert url.endswith("/lod/cs401-l0")

    def test_double_publish_rejected(self, catalog_world):
        net, catalog, course = catalog_world
        with pytest.raises(CatalogError):
            catalog.publish_course(course)

    def test_empty_course_rejected(self, catalog_world):
        net, catalog, _ = catalog_world
        with pytest.raises(CatalogError):
            catalog.publish_course(Course("EMPTY", "nothing"))

    def test_published_lectures_watchable(self, catalog_world):
        net, catalog, course = catalog_world
        url = catalog.url_of("CS401", "OCPN and XOCPN")
        report = MediaPlayer(net, "student").watch(url)
        assert report.duration_watched == pytest.approx(30.0, abs=0.3)

    def test_search_by_course_and_lecture(self, catalog_world):
        net, catalog, _ = catalog_world
        assert ("CS401", "Streaming Protocols") in catalog.search("streaming")
        assert len(catalog.search("cs401")) == 3
        assert catalog.search("zzzz") == []

    def test_search_by_segment_name(self, catalog_world):
        net, catalog, _ = catalog_world
        assert catalog.search("slide0")  # every lecture has one

    def test_unknown_lookups(self, catalog_world):
        net, catalog, _ = catalog_world
        with pytest.raises(CatalogError):
            catalog.url_of("CS401", "Nope")
        with pytest.raises(CatalogError):
            catalog.course("XX")


class TestStudentProgress:
    def test_record_session_and_resume(self, catalog_world):
        net, catalog, _ = catalog_world
        progress = StudentProgress("maria", catalog)
        url = catalog.url_of("CS401", "Petri Net Basics")
        player = MediaPlayer(net, "student")
        report = player.watch(url)
        progress.record_session("CS401", "Petri Net Basics", report)
        assert progress.lecture_completion(
            "CS401", "Petri Net Basics"
        ) == pytest.approx(1.0)
        # finished: resume from the top
        assert progress.resume_position("CS401", "Petri Net Basics") == 0.0

    def test_partial_watch_resumes_midway(self, catalog_world):
        net, catalog, _ = catalog_world
        progress = StudentProgress("maria", catalog)
        progress.record_interval("CS401", "Petri Net Basics", 0.0, 12.0)
        assert progress.resume_position(
            "CS401", "Petri Net Basics"
        ) == pytest.approx(12.0)
        assert progress.lecture_completion(
            "CS401", "Petri Net Basics"
        ) == pytest.approx(0.6)

    def test_intervals_merge(self, catalog_world):
        net, catalog, _ = catalog_world
        progress = StudentProgress("m", catalog)
        progress.record_interval("CS401", "Petri Net Basics", 0.0, 5.0)
        progress.record_interval("CS401", "Petri Net Basics", 3.0, 8.0)
        progress.record_interval("CS401", "Petri Net Basics", 15.0, 20.0)
        assert progress.lecture_completion(
            "CS401", "Petri Net Basics"
        ) == pytest.approx(13.0 / 20.0)

    def test_rewatching_does_not_double_count(self, catalog_world):
        net, catalog, _ = catalog_world
        progress = StudentProgress("m", catalog)
        progress.record_interval("CS401", "Petri Net Basics", 0.0, 10.0)
        progress.record_interval("CS401", "Petri Net Basics", 0.0, 10.0)
        assert progress.lecture_completion(
            "CS401", "Petri Net Basics"
        ) == pytest.approx(0.5)

    def test_course_completion_weighted_by_duration(self, catalog_world):
        net, catalog, course = catalog_world
        progress = StudentProgress("m", catalog)
        progress.record_interval("CS401", "Petri Net Basics", 0.0, 20.0)
        # 20 of 70 total seconds
        assert progress.course_completion("CS401") == pytest.approx(20 / 70)

    def test_next_unfinished_in_syllabus_order(self, catalog_world):
        net, catalog, _ = catalog_world
        progress = StudentProgress("m", catalog)
        assert progress.next_unfinished("CS401") == "Petri Net Basics"
        progress.record_interval("CS401", "Petri Net Basics", 0.0, 20.0)
        assert progress.next_unfinished("CS401") == "OCPN and XOCPN"
        progress.record_interval("CS401", "OCPN and XOCPN", 0.0, 30.0)
        progress.record_interval("CS401", "Streaming Protocols", 0.0, 20.0)
        assert progress.next_unfinished("CS401") is None

    def test_unknown_lecture_rejected(self, catalog_world):
        net, catalog, _ = catalog_world
        progress = StudentProgress("m", catalog)
        with pytest.raises(CatalogError):
            progress.record_interval("CS401", "Nope", 0, 1)

    def test_student_needs_name(self, catalog_world):
        net, catalog, _ = catalog_world
        with pytest.raises(CatalogError):
            StudentProgress("", catalog)
