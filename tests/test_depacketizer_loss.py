"""Depacketizer under adversity: loss, reordering, duplication.

The reassembly layer must stay exact when the network misbehaves:
out-of-order fragments still complete their object, duplicated packets
never produce a unit twice, and :meth:`Depacketizer.loss_report`
identifies exactly the objects that were dropped.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asf.packets import (
    DataPacket,
    Depacketizer,
    MediaUnit,
    Packetizer,
    Payload,
)


def fragment_packets(data: bytes, *, pieces: int, stream: int = 1,
                     object_number: int = 0, first_sequence: int = 0) -> list:
    """One object split across ``pieces`` single-payload packets."""
    step = (len(data) + pieces - 1) // pieces
    packets = []
    for i in range(pieces):
        chunk = data[i * step:(i + 1) * step]
        if not chunk:
            continue
        payload = Payload(
            stream, object_number, i * step, len(data), 0, True, chunk
        )
        packets.append(
            DataPacket(first_sequence + i, i * 10, [payload], packet_size=600)
        )
    return packets


class TestReordering:
    def test_out_of_order_fragments_reassemble(self):
        data = bytes(range(256)) * 3
        packets = fragment_packets(data, pieces=4)
        depacketizer = Depacketizer()
        finished = []
        for packet in (packets[2], packets[0], packets[3], packets[1]):
            finished += depacketizer.push_packet(packet)
        assert len(finished) == 1
        assert finished[0].data == data

    def test_reversed_delivery_of_many_objects(self):
        units = [
            MediaUnit(1, i, i * 100, True, bytes([i]) * 900) for i in range(6)
        ]
        packets = Packetizer(packet_size=700).packetize([units])
        depacketizer = Depacketizer()
        for packet in reversed(packets):
            depacketizer.push_packet(packet)
        got = {u.object_number: u.data for u in depacketizer.completed}
        assert got == {u.object_number: u.data for u in units}
        report = depacketizer.loss_report()
        assert report.lost[1] == []
        assert report.delivered[1] == 6

    def test_interleaved_objects_from_two_streams(self):
        a = fragment_packets(b"A" * 1000, pieces=3, stream=1)
        b = fragment_packets(b"B" * 1000, pieces=3, stream=2,
                             first_sequence=100)
        depacketizer = Depacketizer()
        for pa, pb in zip(a, b):
            depacketizer.push_packet(pb)
            depacketizer.push_packet(pa)
        datas = {u.stream_number: u.data for u in depacketizer.completed}
        assert datas == {1: b"A" * 1000, 2: b"B" * 1000}


class TestDuplication:
    def test_duplicate_packet_produces_unit_once(self):
        units = [MediaUnit(1, 0, 0, True, b"x" * 500)]
        packets = Packetizer(packet_size=600).packetize([units])
        depacketizer = Depacketizer()
        for packet in packets:
            depacketizer.push_packet(packet)
        for packet in packets:  # duplicated delivery of every packet
            assert depacketizer.push_packet(packet) == []
        assert len(depacketizer.completed) == 1
        assert depacketizer.loss_report().delivered[1] == 1

    def test_duplicate_fragment_mid_reassembly(self):
        data = b"y" * 1200
        packets = fragment_packets(data, pieces=3)
        depacketizer = Depacketizer()
        depacketizer.push_packet(packets[0])
        depacketizer.push_packet(packets[0])  # retransmit of the same fragment
        depacketizer.push_packet(packets[1])
        finished = depacketizer.push_packet(packets[2])
        assert len(finished) == 1
        assert finished[0].data == data
        assert len(depacketizer.completed) == 1

    def test_expect_replay_allows_reseeding(self):
        """After a seek the server re-sends old sequences on purpose."""
        units = [MediaUnit(1, i, i * 100, True, b"z" * 400) for i in range(3)]
        packets = Packetizer(packet_size=600).packetize([units])
        depacketizer = Depacketizer()
        for packet in packets:
            depacketizer.push_packet(packet)
        assert len(depacketizer.completed) == 3
        depacketizer.expect_replay()
        for packet in packets:
            depacketizer.push_packet(packet)
        # the replayed units complete again (the player re-buffers them)...
        assert len(depacketizer.completed) == 6
        # ...but delivery accounting stays per distinct object
        assert depacketizer.loss_report().delivered[1] == 3


class TestLossReports:
    def test_missing_object_reported(self):
        units = [MediaUnit(1, i, i * 100, True, b"m" * 900) for i in range(5)]
        packets = Packetizer(packet_size=700).packetize([units])
        drop = {p.sequence for p in packets if any(
            pl.object_number == 2 for pl in p.payloads
        )}
        depacketizer = Depacketizer()
        survivors = [p for p in packets if p.sequence not in drop]
        for packet in survivors:
            depacketizer.push_packet(packet)
        report = depacketizer.loss_report()
        assert 2 in report.lost[1]
        completed = {u.object_number for u in depacketizer.completed}
        assert 2 not in completed

    def test_gap_implied_by_numbering_counts_as_lost(self):
        """Even with no fragment seen, a hole below the max is a loss."""
        depacketizer = Depacketizer()
        for number in (0, 3):
            payload = Payload(1, number, 0, 4, 0, True, b"abcd")
            depacketizer.push_packet(DataPacket(number, 0, [payload],
                                                packet_size=600))
        report = depacketizer.loss_report()
        assert report.lost[1] == [1, 2]
        assert report.delivered[1] == 2
        assert report.loss_rate(1) == pytest.approx(0.5)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2_000),
                   min_size=1, max_size=12),
    drop=st.sets(st.integers(min_value=0, max_value=11)),
)
def test_packetize_drop_k_loss_report_exact(sizes, drop):
    """packetize → drop the packets carrying k objects → the loss report
    names exactly those objects, and every other object survives intact."""
    units = [
        MediaUnit(1, i, i * 50, True, bytes([i % 251]) * size)
        for i, size in enumerate(sizes)
    ]
    packets = Packetizer(packet_size=600).packetize([units])
    dropped_objects = {n for n in drop if n < len(units)}
    kept_packets = [
        p for p in packets
        if not any(pl.object_number in dropped_objects for pl in p.payloads)
    ]
    depacketizer = Depacketizer()
    for packet in kept_packets:
        depacketizer.push_packet(packet)

    completed = {u.object_number: u.data for u in depacketizer.completed}
    # objects sharing a packet with a dropped object may be collateral
    # damage; everything that did complete must be byte-exact
    for number, data in completed.items():
        assert data == units[number].data
    assert not (set(completed) & dropped_objects)

    report = depacketizer.loss_report()
    lost = set(report.lost.get(1, []))
    seen_or_done = lost | set(completed)
    if seen_or_done:
        highest = max(seen_or_done)
        # dense numbering: the report covers every hole up to the highest
        assert lost == set(range(highest + 1)) - set(completed)
    assert report.delivered.get(1, 0) == len(completed)
