"""Unit tests for the multiple-level content tree — including the paper's
§2.3 worked example and the Figure 3/4 insert/delete examples."""

import pytest

from repro.contenttree import ContentTree, ContentTreeError, build_example_tree


class TestNodeBasics:
    def test_empty_name_rejected(self):
        tree = ContentTree()
        with pytest.raises(ContentTreeError):
            tree.initialize("", 20)

    def test_negative_value_rejected(self):
        tree = ContentTree()
        with pytest.raises(ContentTreeError):
            tree.initialize("r", -1)

    def test_level_computation(self):
        tree = build_example_tree()
        assert tree.node("S0").level == 0
        assert tree.node("S1").level == 1
        assert tree.node("S2").level == 2

    def test_is_ancestor_of(self):
        tree = build_example_tree()
        assert tree.node("S0").is_ancestor_of(tree.node("S2"))
        assert not tree.node("S2").is_ancestor_of(tree.node("S0"))


class TestPaperSection23:
    """The exact four-step build of §2.3, checking every printed value."""

    def test_step1_add_s0(self):
        tree = ContentTree()
        tree.initialize("S0", 20)
        assert tree.highest_level == 0
        assert tree.presentation_time(0) == 20

    def test_step2_add_s1(self):
        tree = ContentTree()
        tree.initialize("S0", 20)
        tree.attach("S1", 20, level=1)
        assert tree.highest_level == 1
        assert tree.presentation_time(1) == 40

    def test_step3_add_s2(self):
        tree = ContentTree()
        tree.initialize("S0", 20)
        tree.attach("S1", 20, level=1)
        tree.attach("S2", 20, level=2)
        assert tree.highest_level == 2
        assert tree.presentation_time(2) == 60

    def test_step4_add_s3_s4(self):
        tree = build_example_tree()
        assert tree.highest_level == 2
        assert tree.presentation_time(1) == 60
        assert tree.presentation_time(2) == 100

    def test_full_level_values(self):
        assert build_example_tree().level_values() == [20.0, 60.0, 100.0]

    def test_structure(self):
        tree = build_example_tree()
        assert [c.name for c in tree.node("S0").children] == ["S1", "S4"]
        assert [c.name for c in tree.node("S1").children] == ["S2", "S3"]


class TestFigure3Insert:
    """Insert S5 at level 1 adopting S4 → LevelNodes 20 / 60 / 120."""

    def test_insert_reproduces_printed_levelnodes(self):
        tree = build_example_tree()
        tree.insert("S5", 20, parent="S0", adopt=["S4"])
        assert tree.highest_level == 2
        assert tree.presentation_time(0) == 20
        assert tree.presentation_time(1) == 60
        assert tree.presentation_time(2) == 120

    def test_insert_moves_adopted_one_level_deeper(self):
        tree = build_example_tree()
        tree.insert("S5", 20, parent="S0", adopt=["S4"])
        assert tree.node("S5").level == 1
        assert tree.node("S4").level == 2
        assert tree.node("S4").parent.name == "S5"

    def test_insert_preserves_sibling_order(self):
        tree = build_example_tree()
        tree.insert("S5", 20, parent="S0", adopt=["S4"])
        assert [c.name for c in tree.node("S0").children] == ["S1", "S5"]

    def test_insert_without_adoption_appends(self):
        tree = build_example_tree()
        tree.insert("S5", 20, parent="S1")
        assert [c.name for c in tree.node("S1").children] == ["S2", "S3", "S5"]

    def test_insert_explicit_position(self):
        tree = build_example_tree()
        tree.insert("S5", 20, parent="S0", position=0)
        assert [c.name for c in tree.node("S0").children] == ["S5", "S1", "S4"]

    def test_adopt_non_child_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.insert("S5", 20, parent="S0", adopt=["S2"])  # S2 is under S1

    def test_duplicate_name_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.insert("S1", 20, parent="S0")


class TestFigure4Delete:
    """Delete S5 (level 1): its children are adopted by its sibling S1."""

    def figure3_tree(self):
        tree = build_example_tree()
        tree.insert("S5", 20, parent="S0", adopt=["S4"])
        return tree

    def test_children_adopted_by_left_sibling(self):
        tree = self.figure3_tree()
        tree.delete("S5")
        assert "S5" not in tree
        assert tree.node("S4").parent.name == "S1"
        assert [c.name for c in tree.node("S1").children] == ["S2", "S3", "S4"]

    def test_level_values_after_delete(self):
        tree = self.figure3_tree()
        tree.delete("S5")
        # S4 is now a level-2 detail segment
        assert tree.level_values() == [20.0, 40.0, 100.0]

    def test_delete_leaf(self):
        tree = build_example_tree()
        tree.delete("S2")
        assert "S2" not in tree and len(tree) == 4

    def test_delete_only_child_adopts_to_right_sibling(self):
        tree = ContentTree()
        tree.initialize("r", 10)
        tree.attach("a", 10, parent="r")
        tree.attach("b", 10, parent="r")
        tree.attach("c", 10, parent="a")
        tree.delete("a")  # no left sibling: 'c' goes to right sibling 'b'
        assert tree.node("c").parent.name == "b"

    def test_delete_single_child_falls_back_to_parent(self):
        tree = ContentTree()
        tree.initialize("r", 10)
        tree.attach("a", 10, parent="r")
        tree.attach("c", 10, parent="a")
        tree.delete("a")
        assert tree.node("c").parent.name == "r"

    def test_delete_root_with_multiple_children_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.delete("S0")

    def test_delete_root_with_single_child_promotes(self):
        tree = ContentTree()
        tree.initialize("r", 10)
        tree.attach("a", 10, parent="r")
        tree.delete("r")
        assert tree.root.name == "a" and tree.root.level == 0

    def test_delete_last_node_empties_tree(self):
        tree = ContentTree()
        tree.initialize("r", 10)
        tree.delete("r")
        assert tree.root is None and len(tree) == 0


class TestOperations:
    def test_attach_requires_initialized(self):
        with pytest.raises(ContentTreeError):
            ContentTree().attach("x", 1, level=1)

    def test_attach_needs_exactly_one_placement(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.attach("x", 1)
        with pytest.raises(ContentTreeError):
            tree.attach("x", 1, level=1, parent="S0")

    def test_attach_level_zero_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.attach("x", 1, level=0)

    def test_attach_under_missing_level(self):
        tree = ContentTree()
        tree.initialize("r", 1)
        with pytest.raises(ContentTreeError):
            tree.attach("x", 1, level=3)

    def test_attach_by_level_picks_rightmost_parent(self):
        tree = build_example_tree()
        tree.attach("S9", 20, level=2)
        assert tree.node("S9").parent.name == "S4"

    def test_detach_subtree(self):
        tree = build_example_tree()
        removed = tree.detach("S1")
        assert "S1" not in tree and "S2" not in tree and "S3" not in tree
        assert len(tree) == 2
        # the detached subtree stays intact
        assert [n.name for n in removed.subtree()] == ["S1", "S2", "S3"]

    def test_detach_root_empties_tree(self):
        tree = build_example_tree()
        tree.detach("S0")
        assert tree.root is None and len(tree) == 0

    def test_second_initialize_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.initialize("again", 5)

    def test_unknown_node_errors(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.node("nope")


class TestQueries:
    def test_presentation_order_is_depth_first(self):
        tree = build_example_tree()
        assert [n.name for n in tree.nodes()] == ["S0", "S1", "S2", "S3", "S4"]

    def test_presentation_at_level(self):
        tree = build_example_tree()
        assert [n.name for n in tree.presentation_at(1)] == ["S0", "S1", "S4"]
        assert [n.name for n in tree.presentation_at(0)] == ["S0"]

    def test_level_nodes(self):
        tree = build_example_tree()
        assert [n.name for n in tree.level_nodes(2)] == ["S2", "S3"]

    def test_negative_level_rejected(self):
        with pytest.raises(ContentTreeError):
            build_example_tree().presentation_time(-1)

    def test_empty_tree_queries(self):
        tree = ContentTree()
        assert tree.highest_level == -1
        assert tree.level_values() == []
        assert tree.presentation_time(3) == 0

    def test_render(self):
        text = build_example_tree().render()
        assert text.splitlines()[0] == "S0 (20s)"
        assert "  S1 (20s)" in text
        assert "    S2 (20s)" in text

    def test_validate_ok(self):
        build_example_tree().validate()

    def test_validate_detects_corruption(self):
        tree = build_example_tree()
        tree.node("S2").parent = tree.node("S4")  # corrupt pointer
        with pytest.raises(ContentTreeError):
            tree.validate()
