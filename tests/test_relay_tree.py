"""Hierarchical relay trees: sibling/parent fills, live fan-out, budget.

The tentpole contracts of the multi-level relay topology:

* **fill cascade** — a cold leaf fills sibling → regional parent →
  origin, so a cold wave across a region costs the origin one data
  egress per *region*, not one per edge; the ``edge_cache`` counters
  attribute every fill to its source tier;
* **loop protection** — :class:`FillToken` path membership plus the hop
  limit make A→B→A impossible; leaves refuse to fill *on behalf of*
  other relays (cascades stay finite), parents refuse exhausted tokens;
* **live multicast** — a broadcast enters each region exactly once at
  the parent and fans out parent → leaves → viewers; late joiners get a
  bounded catch-up train from the parent's live history, and the full
  :class:`TraceChecker` one-feed-per-region invariant holds;
* **backbone budget** — every tree link a fill or feed crosses is
  charged before media moves and released after the burst (fills) or at
  feed end (live); refusal is honest admission, not silent best-effort;
* the new :class:`TraceChecker` tree invariants actually *catch*
  violating traces (synthetic-negative tests).
"""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.lod import LiveCaptureSession
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.obs import TraceChecker, Tracer
from repro.streaming import (
    BackboneBudget,
    BudgetError,
    FillToken,
    MediaServer,
    PublishError,
    build_relay_tree,
)
from repro.web import VirtualNetwork

PROFILE = get_profile("dsl-256k")
DURATION = 8.0


def make_asf(file_id="lec", duration=DURATION):
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id=file_id,
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
        images=[(ImageObject("s0", duration, width=320, height=240), 0.0)],
        commands=slide_commands([("s0", 0.0)]),
    )


def make_tree(*, regions=2, per_region=2, asf=None, budget=None,
              tracer=None, **tree_kwargs):
    """Origin + one parent per region + leaves, viewers wired to leaves."""
    reset_counters("edge_cache")
    net = VirtualNetwork()
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    if asf is not None:
        origin.publish("lecture", asf)
    region_map = {
        f"r{r}": [f"e{r}{i}" for i in range(per_region)]
        for r in range(regions)
    }
    directory, parents, leaves = build_relay_tree(
        net, origin, region_map,
        pacing_quantum=0.5, backbone_budget=budget, tracer=tracer,
        **tree_kwargs,
    )
    for leaf in leaves:
        net.connect(leaf.host, "viewer", bandwidth=2_000_000, delay=0.02)
    return net, origin, directory, parents, leaves


def blob_of(packets):
    return b"".join(p.pack() for p in packets)


def teardown_tree(origin, parents, leaves, budget=None):
    """Leaves before parents: a leaf's unpublish closes its parent
    replica, the parent's closes the origin's."""
    for leaf in leaves:
        if not leaf.crashed and not leaf.draining:
            leaf.shutdown()
    for parent in parents.values():
        if not parent.crashed:
            parent.shutdown()
    assert len(origin.sessions) == 0
    if budget is not None:
        budget.assert_no_leaks()


class TestFillCascade:
    def test_cold_wave_fills_sibling_parent_origin(self):
        tracer = Tracer("tree")
        budget = BackboneBudget(tracer=tracer)
        net, origin, directory, parents, leaves = make_tree(
            asf=make_asf(), budget=budget, tracer=tracer,
        )
        # cold wave, one leaf at a time: the first leaf of each region
        # warms the parent (parent pulls the origin), the second finds
        # its sibling already holding the run
        for leaf in leaves:
            leaf.prefetch("lecture")
        counters = get_counters("edge_cache")
        assert counters["origin_fills"] == 2      # one per regional parent
        assert counters["parent_fills"] == 2      # first leaf per region
        assert counters["sibling_fills"] == 2     # second leaf per region
        assert counters["fills"] == 6
        # the origin's data-plane egress: one replica session per region
        assert origin.sessions.total_created == 2

        # byte parity end to end through two relay hops
        reference = blob_of(origin.points["lecture"].content.packets)
        sinks = []
        for leaf in leaves:
            sink = []
            session = leaf.open_session("lecture", "viewer", sink.append)
            leaf.play(session.session_id, burst_factor=8.0)
            sinks.append(sink)
        net.simulator.run(max_events=5_000_000)
        for sink in sinks:
            assert blob_of(sink) == reference

        teardown_tree(origin, parents, leaves, budget)
        checker = TraceChecker(tracer.records).assert_ok()
        assert checker.fill_requests_seen == 6
        assert checker.backbone_reservations == checker.backbone_releases > 0

    def test_fill_reservations_release_after_burst(self):
        budget = BackboneBudget()
        net, origin, directory, parents, leaves = make_tree(
            asf=make_asf(), budget=budget,
        )
        leaves[0].prefetch("lecture")
        # the burst is over: fills hold no backbone bandwidth at rest,
        # even though the replica control sessions stay open
        budget.assert_no_leaks()
        assert budget.counters["reservations"] == budget.counters["releases"] == 2
        teardown_tree(origin, parents, leaves, budget)

    def test_budget_refusal_fails_fill_without_leaks(self):
        # backbone far too small for the content bitrate: every source
        # in the plan is refused at admission, no media ever moves
        budget = BackboneBudget(default_capacity=1_000.0)
        net, origin, directory, parents, leaves = make_tree(
            asf=make_asf(), budget=budget,
        )
        with pytest.raises(PublishError):
            leaves[0].prefetch("lecture")
        counters = get_counters("edge_cache")
        assert counters["fill_budget_refused"] >= 1
        assert budget.rejected >= 1
        budget.assert_no_leaks()
        assert origin.bytes_served == 0
        teardown_tree(origin, parents, leaves, budget)


class TestLoopProtection:
    def test_fill_token_wire_roundtrip(self):
        token = FillToken(("a", "b"), 2)
        assert FillToken.from_wire(token.wire()).path == ("a", "b")
        assert FillToken.from_wire(token.wire()).hops == 2
        child = token.descend("c")
        assert child.path == ("a", "b", "c") and child.hops == 1
        assert FillToken.from_wire({}) is None
        assert FillToken.from_wire({"fill_path": ""}) is None
        assert "fill_path=a,b" in token.query()

    def test_relay_refuses_token_carrying_its_own_name(self):
        net, origin, directory, parents, leaves = make_tree(asf=make_asf())
        target = leaves[0]
        response = leaves[1].http_client.get(
            f"http://{target.host}:{target.port}/lod/lecture"
            f"?replica=1&fill_path={target.name}&fill_hops=2"
        )
        assert response.status == 502
        assert get_counters("edge_cache")["fill_refused_loop"] == 1
        teardown_tree(origin, parents, leaves)

    def test_leaf_refuses_fill_on_behalf_of_another_relay(self):
        net, origin, directory, parents, leaves = make_tree(asf=make_asf())
        # a tokened describe at a cold *leaf*: it may answer from local
        # state only, never cascade a fill of its own for someone else
        target = leaves[1]
        response = leaves[0].http_client.get(
            f"http://{target.host}:{target.port}/lod/lecture"
            f"?replica=1&fill_path={leaves[0].name}&fill_hops=2"
        )
        assert response.status == 502
        assert get_counters("edge_cache")["fill_refused_cascade"] == 1
        assert origin.sessions.total_created == 0
        teardown_tree(origin, parents, leaves)

    def test_parent_refuses_exhausted_hop_budget(self):
        net, origin, directory, parents, leaves = make_tree(asf=make_asf())
        parent = parents["r0"]
        response = leaves[0].http_client.get(
            f"http://{parent.host}:{parent.port}/lod/lecture"
            f"?replica=1&fill_path={leaves[0].name}&fill_hops=0"
        )
        assert response.status == 502
        assert get_counters("edge_cache")["fill_refused_hops"] == 1
        assert origin.sessions.total_created == 0
        teardown_tree(origin, parents, leaves)


class TestLiveMulticast:
    def test_one_feed_per_region_with_late_joiner_catchup(self):
        tracer = Tracer("live-tree")
        budget = BackboneBudget(tracer=tracer)
        net, origin, directory, parents, leaves = make_tree(
            budget=budget, tracer=tracer,
        )
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        origin.publish("live", capture.stream)

        sinks = {}
        sessions = {}
        for leaf in leaves[:3]:
            sink = []
            sessions[leaf.name] = leaf.open_session("live", "viewer", sink.append)
            leaf.play(sessions[leaf.name].session_id)
            sinks[leaf.name] = sink
        net.simulator.run_until(4.0)

        # a late joiner on the last leaf: its region's feed is already
        # up at the parent, whose live history backfills the first 4s
        late = leaves[3]
        sink = []
        sessions[late.name] = late.open_session("live", "viewer", sink.append)
        late.play(sessions[late.name].session_id)
        sinks[late.name] = sink
        net.simulator.run_until(6.0)
        capture.finish()
        net.simulator.run(max_events=5_000_000)

        # one upstream live session per region, regardless of leaf count
        assert origin.sessions.total_created == 2
        sent = {p.sequence for p in capture.stream.packets}
        for name, got_packets in sinks.items():
            got = [p.sequence for p in got_packets]
            assert len(got) == len(set(got)), f"{name} saw duplicates"
            assert set(got) == sent, f"{name} missed live packets"
        counters = get_counters("edge_cache")
        assert counters["live_catchup_trains"] >= 1
        assert counters["live_catchup_packets"] > 0

        for leaf in leaves:
            leaf.close_session(sessions[leaf.name].session_id)
        net.simulator.run(max_events=1_000_000)
        teardown_tree(origin, parents, leaves, budget)
        checker = TraceChecker(tracer.records).assert_ok()
        # every relay in the tree ran exactly one feed, all ended
        assert checker.live_feeds_seen == len(leaves) + len(parents)

    def test_budget_refusal_blocks_live_attach(self):
        budget = BackboneBudget(default_capacity=1_000.0)
        net, origin, directory, parents, leaves = make_tree(budget=budget)
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        origin.publish("live", capture.stream)
        with pytest.raises(BudgetError):
            leaves[0].open_session("live", "viewer", lambda p: None)
        assert budget.rejected >= 1
        budget.assert_no_leaks()
        capture.finish()
        teardown_tree(origin, parents, leaves, budget)


class TestCheckerTreeInvariants:
    """The new invariants must fail on violating traces, not just pass
    on healthy ones."""

    def _violations(self, build):
        tracer = Tracer("synthetic")
        build(tracer)
        return TraceChecker(tracer.records).check()

    def test_looping_fill_path_is_flagged(self):
        violations = self._violations(lambda t: t.event(
            "edge.fill_request", edge="A", point="p", source="sibling",
            upstream="B", path=["A", "B", "A"], hops=1,
        ))
        assert any("looping path" in v for v in violations)

    def test_negative_hop_budget_is_flagged(self):
        violations = self._violations(lambda t: t.event(
            "edge.fill_request", edge="A", point="p", source="origin",
            upstream="origin", path=["A"], hops=-1,
        ))
        assert any("negative hop budget" in v for v in violations)

    def test_backbone_over_reservation_is_flagged(self):
        def build(t):
            t.event("backbone.reserve", rid="bb#1", link="a<->b",
                    bandwidth=30.0, reserved=30.0, capacity=50.0, owner="x")
            t.event("backbone.reserve", rid="bb#2", link="a<->b",
                    bandwidth=30.0, reserved=60.0, capacity=50.0, owner="y")
            t.event("backbone.release", rid="bb#1", link="a<->b",
                    bandwidth=30.0, owner="x")
            t.event("backbone.release", rid="bb#2", link="a<->b",
                    bandwidth=30.0, owner="y")
        violations = self._violations(build)
        assert any("over-reserved" in v for v in violations)

    def test_leaked_backbone_reservation_is_flagged(self):
        violations = self._violations(lambda t: t.event(
            "backbone.reserve", rid="bb#1", link="a<->b",
            bandwidth=10.0, reserved=10.0, capacity=50.0, owner="x",
        ))
        assert any("never released" in v for v in violations)

    def test_second_region_entry_is_flagged(self):
        def build(t):
            t.event("live.feed", feed="p1:live#1", edge="p1", region="r0",
                    point="live", upstream="origin", enters_region=True)
            t.event("live.feed", feed="p2:live#1", edge="p2", region="r0",
                    point="live", upstream="origin", enters_region=True)
            t.event("live.feed_end", feed="p1:live#1", edge="p1",
                    region="r0", point="live")
            t.event("live.feed_end", feed="p2:live#1", edge="p2",
                    region="r0", point="live")
        violations = self._violations(build)
        assert any("second upstream live feed" in v for v in violations)

    def test_unended_feed_is_flagged(self):
        violations = self._violations(lambda t: t.event(
            "live.feed", feed="p1:live#1", edge="p1", region="r0",
            point="live", upstream="origin", enters_region=True,
        ))
        assert any("never ended" in v for v in violations)
