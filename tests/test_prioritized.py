"""Unit tests for the prioritized Petri net baseline (repro.core.prioritized)."""

import pytest

from repro.core.prioritized import (
    PrioritizedPetriNet,
    PrioritizedScheduler,
    preemption_order,
)
from repro.core.timed import TimedPetriNet


def contention_net():
    """One token in 'p'; low-priority playback vs high-priority interaction."""
    net = PrioritizedPetriNet("contention")
    net.add_place("p", tokens=1)
    net.add_place("played")
    net.add_place("interacted")
    net.add_transition("t_play", priority=0)
    net.add_transition("t_interact", priority=5)
    net.add_arc("p", "t_play")
    net.add_arc("t_play", "played")
    net.add_arc("p", "t_interact")
    net.add_arc("t_interact", "interacted")
    return net


class TestPrioritizedEnabling:
    def test_higher_priority_masks_lower(self):
        net = contention_net()
        assert net.enabled() == ["t_interact"]

    def test_base_enabling_unchanged(self):
        net = contention_net()
        assert net.is_enabled("t_play")  # structurally enabled, just masked

    def test_priority_enabled(self):
        net = contention_net()
        assert net.priority_enabled("t_interact")
        assert not net.priority_enabled("t_play")

    def test_equal_priorities_all_enabled(self):
        net = PrioritizedPetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q1")
        net.add_place("q2")
        for t, dst in (("t1", "q1"), ("t2", "q2")):
            net.add_transition(t, priority=3)
            net.add_arc("p", t)
            net.add_arc(t, dst)
        assert set(net.enabled()) == {"t1", "t2"}

    def test_empty_when_nothing_enabled(self):
        net = contention_net()
        net.fire("t_interact")
        assert net.enabled() == []

    def test_fire_respects_mask(self):
        net = contention_net()
        fired = net.run()
        assert fired == ["t_interact"]

    def test_preemption_order(self):
        net = contention_net()
        assert preemption_order(net) == ["t_interact", "t_play"]

    def test_mask_lifts_when_high_priority_consumed(self):
        # separate tokens: after interaction fires, playback proceeds
        net = PrioritizedPetriNet()
        net.add_place("play_tok", tokens=1)
        net.add_place("int_tok", tokens=1)
        net.add_place("out1")
        net.add_place("out2")
        net.add_transition("t_play", priority=0)
        net.add_transition("t_int", priority=9)
        net.add_arc("play_tok", "t_play")
        net.add_arc("t_play", "out1")
        net.add_arc("int_tok", "t_int")
        net.add_arc("t_int", "out2")
        assert net.enabled() == ["t_int"]
        net.fire("t_int")
        assert net.enabled() == ["t_play"]


class TestPrioritizedScheduler:
    def test_requires_prioritized_net(self):
        from repro.core.petri import PetriNet

        plain = PetriNet()
        plain.add_place("p", tokens=1)
        plain.add_transition("t")
        plain.add_arc("p", "t")
        with pytest.raises(TypeError):
            PrioritizedScheduler(TimedPetriNet(plain))

    def test_timed_run_fires_high_priority_first(self):
        net = contention_net()
        timed = TimedPetriNet(net, {"interacted": 1.0})
        execution = PrioritizedScheduler(timed).run()
        assert execution.firing_times("t_interact") == [0.0]
        assert execution.firing_times("t_play") == []

    def test_run_resets_net(self):
        net = contention_net()
        timed = TimedPetriNet(net)
        sched = PrioritizedScheduler(timed)
        first = sched.run()
        second = sched.run()
        assert first.firings == second.firings == 1
