"""Unit tests for structural analysis: siphons, traps, Commoner's condition."""

import pytest

from repro.core.builder import NetBuilder
from repro.core.extended import build_control_net, build_floor_net
from repro.core.petri import PetriNet
from repro.core.structural import (
    StructuralError,
    commoner_check,
    is_siphon,
    is_trap,
    marked_traps_in,
    maximal_siphon_within,
    maximal_trap_within,
    minimal_siphons,
    unmarked_siphons,
)


def cycle_net():
    """p1 -t1-> p2 -t2-> p1: {p1, p2} is both a siphon and a trap."""
    return (
        NetBuilder("cycle")
        .place("p1", tokens=1)
        .place("p2")
        .transitions("t1", "t2")
        .chain("p1", "t1", "p2")
        .chain("p2", "t2", "p1")
        .build()
    )


def source_sink_net():
    """src -t-> sink: {src} is a siphon, {sink} is a trap."""
    return (
        NetBuilder("ss")
        .place("src", tokens=1)
        .place("sink")
        .transition("t")
        .chain("src", "t", "sink")
        .build()
    )


class TestPredicates:
    def test_cycle_is_siphon_and_trap(self):
        net = cycle_net()
        assert is_siphon(net, ["p1", "p2"])
        assert is_trap(net, ["p1", "p2"])

    def test_single_place_in_cycle_is_neither(self):
        net = cycle_net()
        assert not is_siphon(net, ["p1"])
        assert not is_trap(net, ["p1"])

    def test_source_is_siphon_not_trap(self):
        net = source_sink_net()
        assert is_siphon(net, ["src"])
        assert not is_trap(net, ["src"])

    def test_sink_is_trap_not_siphon(self):
        net = source_sink_net()
        assert is_trap(net, ["sink"])
        assert not is_siphon(net, ["sink"])

    def test_empty_set_is_neither(self):
        net = cycle_net()
        assert not is_siphon(net, [])
        assert not is_trap(net, [])

    def test_unknown_place_rejected(self):
        with pytest.raises(Exception):
            is_siphon(cycle_net(), ["zzz"])


class TestMaximalWithin:
    def test_maximal_siphon_drops_refillable_places(self):
        net = source_sink_net()
        assert maximal_siphon_within(net, ["src", "sink"]) == {"src", "sink"}
        assert maximal_siphon_within(net, ["sink"]) == set()

    def test_maximal_trap_drops_drainable_places(self):
        net = source_sink_net()
        assert maximal_trap_within(net, ["src"]) == set()
        assert maximal_trap_within(net, ["src", "sink"]) == {"src", "sink"}

    def test_result_is_siphon(self):
        net = cycle_net()
        result = maximal_siphon_within(net, ["p1", "p2"])
        assert is_siphon(net, result)


class TestMinimalSiphons:
    def test_cycle_minimal_siphon(self):
        assert minimal_siphons(cycle_net()) == [frozenset({"p1", "p2"})]

    def test_source_sink(self):
        siphons = minimal_siphons(source_sink_net())
        assert frozenset({"src"}) in siphons

    def test_all_results_are_minimal_siphons(self):
        net = build_floor_net(["a", "b"])
        siphons = minimal_siphons(net)
        for siphon in siphons:
            assert is_siphon(net, siphon)
            for place in siphon:
                assert not is_siphon(net, siphon - {place})

    def test_size_guard(self):
        net = PetriNet()
        for i in range(40):
            net.add_place(f"p{i}")
        with pytest.raises(StructuralError):
            minimal_siphons(net)

    def test_two_independent_cycles(self):
        net = (
            NetBuilder()
            .place("a1", tokens=1).place("a2")
            .place("b1", tokens=1).place("b2")
            .transitions("ta1", "ta2", "tb1", "tb2")
            .chain("a1", "ta1", "a2").chain("a2", "ta2", "a1")
            .chain("b1", "tb1", "b2").chain("b2", "tb2", "b1")
            .build()
        )
        siphons = minimal_siphons(net)
        assert frozenset({"a1", "a2"}) in siphons
        assert frozenset({"b1", "b2"}) in siphons
        assert len(siphons) == 2


class TestCommoner:
    def test_cycle_satisfies_commoner(self):
        checks = commoner_check(cycle_net())
        assert checks and all(checks.values())

    def test_floor_net_satisfies_commoner(self):
        """The floor-control net is deadlock-free by structure."""
        net = build_floor_net(["a", "b", "c"])
        checks = commoner_check(net)
        assert checks and all(checks.values())

    def test_control_net_has_expected_unmarked_trapless_siphon(self):
        """idle/playing/paused/stopped: 'stop' is absorbing by design.

        The control net is a state machine heading for an absorbing state,
        so some siphon legitimately fails Commoner (the net is *supposed*
        to terminate). This documents that the check distinguishes the two
        nets' designs.
        """
        checks = commoner_check(build_control_net())
        assert checks  # has minimal siphons
        assert not all(checks.values())  # termination is by design

    def test_unmarked_siphon_detection(self):
        net = (
            NetBuilder()
            .place("fuel")  # never marked
            .place("go", tokens=1)
            .place("done")
            .transition("t")
            .arc("fuel", "t")
            .arc("go", "t")
            .arc("t", "done")
            .build()
        )
        empty = unmarked_siphons(net)
        assert frozenset({"fuel"}) in empty

    def test_marked_traps_in(self):
        net = cycle_net()
        assert marked_traps_in(net, {"p1", "p2"}) == {"p1", "p2"}
        # unmarked marking: no marked trap
        from repro.core.petri import Marking

        assert marked_traps_in(net, {"p1", "p2"}, Marking({})) == set()
