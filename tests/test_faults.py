"""Unit tests for the fault-injection subsystem and recovery primitives.

Covers the chaos backbone in isolation: the Gilbert–Elliott burst-loss
model, the Link fault hooks it drives, FaultPlan/FaultInjector scripted
timelines, the ReliableChannel's backed-off retransmission, the Counters
accumulator, and the RecoveryClient NAK/degradation/stall state machine.
End-to-end recovery scenarios live in test_recovery.py.
"""

import pytest

from repro.net import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    GilbertElliott,
    Link,
    Message,
    QoSError,
    QoSManager,
    QoSSpec,
    ReliableChannel,
    SimulationError,
    Simulator,
)
from repro.metrics import Counters
from repro.streaming import RecoveryClient, RecoveryConfig, SessionTable
from repro.web import VirtualNetwork


class TestGilbertElliott:
    def test_from_average_round_trips(self):
        model = GilbertElliott.from_average(0.05, mean_burst=5.0)
        assert model.average_loss == pytest.approx(0.05)
        assert 1.0 / model.p_exit == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            GilbertElliott(p_enter=0.1, p_exit=0.0)  # bad state inescapable
        with pytest.raises(SimulationError):
            GilbertElliott(p_enter=1.5, p_exit=0.5)
        with pytest.raises(SimulationError):
            GilbertElliott.from_average(1.0)
        with pytest.raises(SimulationError):
            GilbertElliott.from_average(0.1, mean_burst=0.5)

    @staticmethod
    def _loss_runs(link, samples):
        """(measured loss rate, mean length of consecutive-loss runs)."""
        losses = [link._packet_lost() for _ in range(samples)]
        runs, current = [], 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        rate = sum(losses) / samples
        mean_run = sum(runs) / len(runs) if runs else 0.0
        return rate, mean_run

    def test_losses_cluster_into_bursts(self):
        samples = 20_000
        sim = Simulator()
        bursty = Link(
            sim, burst_loss=GilbertElliott.from_average(0.2, mean_burst=8.0),
            seed=7,
        )
        iid = Link(sim, loss_rate=0.2, seed=7)
        burst_rate, burst_run = self._loss_runs(bursty, samples)
        iid_rate, iid_run = self._loss_runs(iid, samples)
        # both processes hit the same stationary rate...
        assert burst_rate == pytest.approx(0.2, abs=0.03)
        assert iid_rate == pytest.approx(0.2, abs=0.03)
        # ...but the GE losses arrive in much longer runs
        assert burst_run > 2 * iid_run


class TestLinkFaultHooks:
    def test_down_link_drops_everything(self):
        sim = Simulator()
        link = Link(sim)
        delivered, drops = [], []
        link.take_down()
        accepted = link.transmit(100, lambda: delivered.append(1),
                                 on_drop=drops.append)
        sim.run()
        assert accepted is False
        assert drops == ["down"]
        assert link.stats.dropped_down == 1
        assert not delivered
        link.bring_up()
        link.transmit(100, lambda: delivered.append(2))
        sim.run()
        assert delivered == [2]

    def test_cut_does_not_reach_in_flight_packets(self):
        sim = Simulator()
        link = Link(sim, delay=0.1)
        delivered = []
        link.transmit(100, lambda: delivered.append(1))
        link.take_down()  # the packet already left the NIC
        sim.run()
        assert delivered == [1]

    def test_set_bandwidth_rerates(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1_000_000)
        before = link.serialization_time(1_000)
        link.set_bandwidth(100_000)
        assert link.serialization_time(1_000) == pytest.approx(before * 10)
        with pytest.raises(SimulationError):
            link.set_bandwidth(0)

    def test_set_loss_resets_burst_state(self):
        sim = Simulator()
        link = Link(sim, burst_loss=GilbertElliott(p_enter=1.0, p_exit=0.01))
        for _ in range(10):
            link._packet_lost()
        assert link._burst_bad  # p_enter=1 forces the bad state
        link.set_loss(loss_rate=0.0, burst_loss=None)
        assert not link._burst_bad
        assert all(not link._packet_lost() for _ in range(100))


class TestFaultPlan:
    def test_action_validation(self):
        with pytest.raises(SimulationError):
            FaultAction(-1.0, "link_down", ("a", "b"))
        with pytest.raises(SimulationError):
            FaultAction(0.0, "meteor_strike", ("a", "b"))

    def test_link_down_window_emits_reversals(self):
        plan = FaultPlan().link_down("a", "b", at=1.0, until=2.0)
        kinds = [(a.kind, a.target) for a in plan.sorted_actions()]
        assert kinds == [
            ("link_down", ("a", "b")),
            ("link_down", ("b", "a")),
            ("link_up", ("a", "b")),
            ("link_up", ("b", "a")),
        ]

    def test_one_directional_faults(self):
        plan = FaultPlan().burst_loss("a", "b", at=0.0, average=0.05)
        assert [a.target for a in plan.actions] == [("a", "b")]

    def test_bandwidth_needs_exactly_one_of_factor_bps(self):
        with pytest.raises(SimulationError):
            FaultPlan().bandwidth("a", "b", at=0.0)
        with pytest.raises(SimulationError):
            FaultPlan().bandwidth("a", "b", at=0.0, factor=0.5, bps=100.0)

    def test_partition_cuts_every_peer_pair(self):
        plan = FaultPlan().partition("srv", ["c1", "c2"], at=1.0, until=2.0)
        assert len(plan.actions) == 8  # 2 peers x 2 directions x down+up

    def test_restart_before_crash_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan().server_crash("srv", at=5.0, restart_at=4.0)

    def test_sorted_actions_order_by_time_then_kind(self):
        plan = (
            FaultPlan()
            .link_down("a", "b", at=2.0, both=False)
            .loss("a", "b", at=1.0, rate=0.1)
            .server_crash("srv", at=2.0)
        )
        ordered = plan.sorted_actions()
        assert [a.kind for a in ordered] == ["loss", "link_down", "server_crash"]


class TestFaultPlanWindowValidation:
    def test_overlapping_windows_same_family_target_rejected(self):
        plan = FaultPlan("overlap").link_down("a", "b", at=1.0, until=3.0)
        with pytest.raises(SimulationError, match="overlaps"):
            plan.link_down("a", "b", at=2.0, until=4.0)

    def test_open_ended_window_blocks_everything_after(self):
        plan = FaultPlan().link_down("a", "b", at=5.0)  # never restored
        with pytest.raises(SimulationError, match="overlaps"):
            plan.link_down("a", "b", at=100.0, until=101.0)

    def test_out_of_order_window_rejected(self):
        with pytest.raises(SimulationError, match="out of order"):
            FaultPlan().link_down("a", "b", at=3.0, until=3.0)
        with pytest.raises(SimulationError, match="out of order"):
            FaultPlan().loss("a", "b", at=3.0, rate=0.1, until=1.0)

    def test_boundary_touching_windows_allowed(self):
        plan = (
            FaultPlan()
            .link_down("a", "b", at=1.0, until=2.0)
            .link_down("a", "b", at=2.0, until=3.0)  # starts where one ends
        )
        assert len(plan.actions) == 8

    def test_distinct_targets_and_families_never_conflict(self):
        # same window everywhere: different pair, different direction,
        # different fault family — all independent claims
        plan = (
            FaultPlan()
            .link_down("a", "b", at=1.0, until=2.0, both=False)
            .link_down("b", "a", at=1.0, until=2.0, both=False)
            .link_down("a", "c", at=1.0, until=2.0)
            .loss("a", "b", at=1.0, rate=0.1, until=2.0)
            .bandwidth("a", "b", at=1.0, factor=0.5, until=2.0)
            .server_crash("a", at=1.0, restart_at=2.0)
        )
        assert plan.actions

    def test_loss_and_burst_loss_share_a_family(self):
        # both program the same Link knob: letting them overlap would
        # leave the second clear_loss a no-op lie
        plan = FaultPlan().loss("a", "b", at=1.0, rate=0.1, until=5.0)
        with pytest.raises(SimulationError, match="loss"):
            plan.burst_loss("a", "b", at=2.0, average=0.05, until=3.0)

    def test_double_crash_without_restart_between_rejected(self):
        plan = FaultPlan().server_crash("srv", at=1.0, restart_at=4.0)
        with pytest.raises(SimulationError, match="overlaps"):
            plan.server_crash("srv", at=2.0)

    def test_raw_add_bypasses_validation(self):
        # the documented escape hatch: hand-built actions skip the claims
        plan = FaultPlan().link_down("a", "b", at=1.0, until=5.0)
        plan.add(FaultAction(2.0, "link_down", ("a", "b")))
        assert len(plan.actions) == 5

    def test_describe_renders_the_timeline(self):
        plan = (
            FaultPlan("storm")
            .loss("a", "b", at=1.5, rate=0.25)
            .server_crash("srv", at=2.0, restart_at=8.0)
        )
        text = plan.describe()
        assert "FaultPlan 'storm': 3 action(s)" in text
        lines = text.splitlines()
        assert "loss" in lines[1] and "a/b" in lines[1] and "rate=0.25" in lines[1]
        assert "server_crash" in lines[2] and "srv" in lines[2]
        assert "server_restart" in lines[3] and "t=   8.000s" in lines[3]


class _StubServer:
    def __init__(self):
        self.calls = []

    def crash(self):
        self.calls.append("crash")

    def restart(self):
        self.calls.append("restart")


class TestFaultInjector:
    def _plan(self):
        return (
            FaultPlan("window")
            .link_down("server", "student", at=1.0, until=2.0, both=False)
            .bandwidth("server", "student", at=3.0, bps=100_000.0,
                       until=4.0, both=False)
        )

    def test_scripted_timeline_executes(self):
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=2_000_000)
        link = net.link("server", "student")
        injector = FaultInjector(net)
        assert injector.apply(self._plan()) == 4

        net.simulator.run_until(1.5)
        assert not link.up
        net.simulator.run_until(2.5)
        assert link.up
        net.simulator.run_until(3.5)
        assert link.bandwidth == 100_000.0
        net.simulator.run_until(4.5)
        assert link.bandwidth == 2_000_000  # restored to the original
        assert [(t, k) for t, k, _ in injector.log] == [
            (1.0, "link_down"), (2.0, "link_up"),
            (3.0, "bandwidth"), (4.0, "restore_bandwidth"),
        ]

    def test_same_plan_replays_identically(self):
        def run():
            net = VirtualNetwork()
            net.connect("server", "student")
            injector = FaultInjector(net)
            injector.apply(self._plan())
            net.simulator.run()
            return injector.log

        assert run() == run()

    def test_server_crash_restart_dispatch(self):
        net = VirtualNetwork()
        server = _StubServer()
        injector = FaultInjector(net, servers={"srv": server})
        injector.apply(FaultPlan().server_crash("srv", at=1.0, restart_at=2.0))
        net.simulator.run()
        assert server.calls == ["crash", "restart"]

    def test_register_server_after_construction(self):
        net = VirtualNetwork()
        server = _StubServer()
        injector = FaultInjector(net)
        injector.register_server("srv", server)
        injector.apply(FaultPlan().server_crash("srv", at=0.5))
        net.simulator.run()
        assert server.calls == ["crash"]


class TestReliableChannelBackoff:
    def _channel(self, sim, out_link, ack_link, **kwargs):
        received = []
        channel = ReliableChannel(
            sim, out_link, ack_link, received.append, **kwargs
        )
        return channel, received

    def test_retransmission_gaps_grow_to_the_cap(self):
        sim = Simulator()
        out = Link(sim)
        ack = Link(sim)
        out.take_down()  # nothing gets through: pure timer behaviour
        failed = []
        channel = ReliableChannel(
            sim, out, ack, lambda m: None,
            rto=0.1, backoff=2.0, rto_max=0.8, max_attempts=6,
            on_fail=failed.append,
        )
        times = []
        original = channel._transmit

        def spy(pending):
            times.append(sim.now)
            original(pending)

        channel._transmit = spy
        channel.send(Message("x", 10))
        sim.run()

        assert len(failed) == 1 and channel.in_flight == 0
        gaps = [b - a for a, b in zip(times, times[1:])]
        # first retry fires at exactly the base RTO (no jitter on the
        # first attempt), then doubles with +/-10% jitter, capped at 0.8
        assert gaps[0] == pytest.approx(0.1)
        assert gaps[1] == pytest.approx(0.2, rel=0.11)
        assert gaps[2] == pytest.approx(0.4, rel=0.11)
        assert gaps[3] == pytest.approx(0.8, rel=0.11)
        assert gaps[4] == pytest.approx(0.8, rel=0.11)
        assert all(b > a * 1.5 for a, b in zip(gaps[:3], gaps[1:4]))

    def test_lossfree_timeline_independent_of_jitter_seed(self):
        def delivery_time(seed):
            sim = Simulator()
            out, ack = Link(sim), Link(sim)
            arrivals = []
            channel = ReliableChannel(
                sim, out, ack, lambda m: arrivals.append(sim.now), seed=seed
            )
            channel.send(Message("x", 10))
            sim.run()
            assert channel.retransmissions == 0
            return arrivals, sim.events_processed

        assert delivery_time(0) == delivery_time(12345)

    def test_duplicate_arrivals_suppressed_without_history_set(self):
        sim = Simulator()
        out, ack = Link(sim), Link(sim)
        received = []
        channel = ReliableChannel(sim, out, ack, received.append)
        assert not hasattr(channel, "_delivered_seqs")
        message = Message("dup", 10)
        channel._arrive(0, message)
        channel._arrive(0, message)  # duplicated datagram
        sim.run()
        assert len(received) == 1
        channel._arrive(0, message)  # straggler far below the frontier
        sim.run()
        assert len(received) == 1

    def test_config_validation(self):
        sim = Simulator()
        out, ack = Link(sim), Link(sim)
        for kwargs in (
            {"rto": 0.0},
            {"backoff": 0.5},
            {"rto_max": 0.1, "rto": 0.25},
            {"jitter": 1.0},
        ):
            with pytest.raises(SimulationError):
                ReliableChannel(sim, out, ack, lambda m: None, **kwargs)


class TestCounters:
    def test_accumulates_and_reports(self):
        counters = Counters("test")
        counters.inc("a")
        counters.inc("a", 2)
        counters.inc("b", 5)
        assert counters["a"] == 3
        assert counters["missing"] == 0
        assert "b" in counters and "missing" not in counters
        assert counters.as_dict() == {"a": 3, "b": 5}
        assert len(counters) == 2

    def test_merge(self):
        left, right = Counters(), Counters()
        left.inc("a", 1)
        right.inc("a", 2)
        right.inc("b", 3)
        left.merge(right)
        assert left.as_dict() == {"a": 3, "b": 3}


class TestRecoveryClient:
    def _client(self, sim, *, runway=10.0, shift_result=True, **config):
        sent, shifts = [], []

        def on_downshift():
            shifts.append(sim.now)
            return shift_result

        client = RecoveryClient(
            sim,
            RecoveryConfig(**config),
            send_nak=sent.append,
            runway=lambda: runway,
            on_downshift=on_downshift,
        )
        return client, sent, shifts

    def test_gap_becomes_a_batched_nak_after_grace(self):
        sim = Simulator()
        client, sent, _ = self._client(sim, nak_delay=0.04)
        client.observe_gaps([7, 5])
        assert sent == []  # reorder grace: not yet
        sim.run_until(0.05)
        assert sent == [(5, 7)]
        assert client.counters["naks_sent"] == 1
        assert client.counters["sequences_nacked"] == 2

    def test_repair_cancels_the_retry_timer(self):
        sim = Simulator()
        client, sent, _ = self._client(sim)
        client.observe_gaps([3])
        sim.run_until(0.05)
        client.note_arrival(3)  # the repair landed
        assert client.pending_repairs == 0
        assert client.counters["repairs_received"] == 1
        events_before = sim.events_processed
        sim.run()
        # cancelled timer: nothing left to run but the cancelled shell
        assert sim.events_processed - events_before <= 1
        assert len(sent) == 1

    def test_budget_exhaustion_abandons(self):
        sim = Simulator()
        client, sent, _ = self._client(sim, nak_budget=2, nak_timeout=0.1)
        client.observe_gaps([9])
        sim.run()
        assert len(sent) == 2  # two attempts, then give up
        assert client.pending_repairs == 0
        assert client.counters["repairs_abandoned"] == 1

    def test_closed_window_abandons_without_asking(self):
        sim = Simulator()
        client, sent, _ = self._client(sim, runway=0.0)
        client.observe_gaps([1])
        sim.run()
        assert sent == []
        assert client.counters["repairs_abandoned"] == 1

    def test_abandon_storm_requests_downshift_once_per_cooldown(self):
        sim = Simulator()
        client, _, shifts = self._client(
            sim, runway=0.0, downshift_after=3, downshift_cooldown=60.0
        )
        client.observe_gaps([1, 2, 3])  # all abandoned at once
        sim.run()
        assert len(shifts) == 1
        assert client.counters["downshifts"] == 1
        client.observe_gaps([4, 5, 6])  # cooldown still running
        sim.run()
        assert len(shifts) == 1

    def test_failed_downshift_not_counted(self):
        sim = Simulator()
        client, _, shifts = self._client(
            sim, runway=0.0, downshift_after=2, shift_result=False
        )
        client.observe_gaps([1, 2])
        sim.run()
        assert len(shifts) == 1  # asked, but the server was at the floor
        assert client.counters["downshifts"] == 0

    def test_stall_detection_and_reset(self):
        sim = Simulator()
        client, _, _ = self._client(sim, watchdog_timeout=1.5)
        assert not client.stalled(1.0)
        assert client.stalled(1.6)
        sim.schedule(2.0, lambda: None)
        sim.run()
        client.reset()
        assert not client.stalled(sim.now + 1.0)
        assert client.pending_repairs == 0

    def test_config_validation(self):
        for kwargs in (
            {"nak_timeout": 0.0},
            {"nak_budget": -1},
            {"watchdog_timeout": 0.0},
            {"max_reconnects": 0},
        ):
            with pytest.raises(SimulationError):
                RecoveryConfig(**kwargs)


class TestQoSLeakAssertion:
    def test_names_the_leaking_owner(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1_000_000))
        manager.assert_no_leaks()  # nothing held: fine
        reservation = manager.reserve(
            QoSSpec(bandwidth=100_000), owner="session7"
        )
        with pytest.raises(QoSError, match="session7"):
            manager.assert_no_leaks()
        manager.release(reservation)
        manager.assert_no_leaks()


class TestSessionRecoveryFields:
    def test_defaults_and_all(self):
        table = SessionTable()
        session = table.create("p", "host", lambda pkt: None, broadcast=False)
        assert session.downshifts == 0
        assert session.retransmits_sent == 0
        assert table.all() == [session]
