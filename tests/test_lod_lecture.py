"""Unit tests for the lecture model and recorder (repro.lod)."""

import pytest

from repro.lod.lecture import (
    Lecture,
    LectureError,
    LectureSegment,
    TimedAnnotation,
)
from repro.lod.recorder import (
    CameraSource,
    LectureRecorder,
    MicrophoneSource,
)
from repro.media.objects import AnnotationObject, ImageObject, VideoObject


def simple_lecture(**kwargs):
    return Lecture.from_slide_durations(
        "Title", "Author", [10.0, 20.0, 10.0], **kwargs
    )


class TestLectureModel:
    def test_from_slide_durations(self):
        lec = simple_lecture()
        assert lec.duration == 40.0
        assert [s.start for s in lec.segments] == [0.0, 10.0, 30.0]
        assert lec.audio is not None

    def test_without_audio(self):
        lec = simple_lecture(with_audio=False)
        assert lec.audio is None

    def test_importances(self):
        lec = simple_lecture(importances=[0, 1, 0])
        assert [s.importance for s in lec.segments] == [0, 1, 0]

    def test_importances_length_checked(self):
        with pytest.raises(LectureError):
            simple_lecture(importances=[0])

    def test_needs_segments(self):
        with pytest.raises(LectureError):
            Lecture.from_slide_durations("T", "A", [])

    def test_segments_must_tile(self):
        video = VideoObject("v", 20.0)
        seg = LectureSegment("s0", ImageObject("s0", 10), 0.0, 10.0)
        gap = LectureSegment("s1", ImageObject("s1", 5), 12.0, 8.0)
        with pytest.raises(LectureError):
            Lecture("T", "A", video, [seg, gap])

    def test_segments_must_cover_video(self):
        video = VideoObject("v", 20.0)
        seg = LectureSegment("s0", ImageObject("s0", 10), 0.0, 10.0)
        with pytest.raises(LectureError):
            Lecture("T", "A", video, [seg])

    def test_duplicate_segment_names(self):
        video = VideoObject("v", 20.0)
        segs = [
            LectureSegment("s", ImageObject("a", 10), 0.0, 10.0),
            LectureSegment("s", ImageObject("b", 10), 10.0, 10.0),
        ]
        with pytest.raises(LectureError):
            Lecture("T", "A", video, segs)

    def test_audio_duration_mismatch(self):
        from repro.media.objects import AudioObject

        video = VideoObject("v", 10.0)
        seg = LectureSegment("s0", ImageObject("s0", 10), 0.0, 10.0)
        with pytest.raises(LectureError):
            Lecture("T", "A", video, [seg], audio=AudioObject("a", 9.0))

    def test_annotation_must_fit_segment(self):
        with pytest.raises(LectureError):
            LectureSegment(
                "s0",
                ImageObject("s0", 10),
                0.0,
                10.0,
                annotations=[
                    TimedAnnotation(AnnotationObject("n", 5.0, text="x"), 6.0)
                ],
            )

    def test_segment_at(self):
        lec = simple_lecture()
        assert lec.segment_at(0).name == "slide0"
        assert lec.segment_at(15).name == "slide1"
        assert lec.segment_at(39.9).name == "slide2"
        assert lec.segment_at(99).name == "slide2"  # clamped

    def test_segment_lookup(self):
        lec = simple_lecture()
        assert lec.segment("slide1").duration == 20.0
        with pytest.raises(LectureError):
            lec.segment("nope")


class TestLectureFormalViews:
    def test_script_commands_at_segment_starts(self):
        lec = simple_lecture()
        commands = lec.script_commands()
        slides = [(c.parameter, c.timestamp) for c in commands if c.type == "SLIDE"]
        assert slides == [("slide0", 0.0), ("slide1", 10.0), ("slide2", 30.0)]

    def test_annotation_commands(self):
        video = VideoObject("v", 10.0)
        seg = LectureSegment(
            "s0",
            ImageObject("s0", 10),
            0.0,
            10.0,
            annotations=[
                TimedAnnotation(AnnotationObject("n", 2.0, text="look here"), 3.0)
            ],
        )
        lec = Lecture("T", "A", video, [seg])
        notes = [c for c in lec.script_commands() if c.type == "ANNOTATION"]
        assert len(notes) == 1
        assert notes[0].timestamp == 3.0 and notes[0].parameter == "look here"

    def test_to_presentation_matches_structure(self):
        lec = simple_lecture()
        pres = lec.to_presentation()
        assert pres.duration == 40.0
        assert pres.boundaries == [0.0, 10.0, 30.0, 40.0]
        pres.verify()

    def test_presentation_includes_audio_leaves(self):
        pres = simple_lecture().to_presentation()
        assert "audio_slide0" in pres.schedule
        no_audio = simple_lecture(with_audio=False).to_presentation()
        assert "audio_slide0" not in no_audio.schedule

    def test_content_tree_levels(self):
        lec = simple_lecture(importances=[0, 1, 0])
        tree = lec.content_tree()
        # level 1 = essential slides (0 and 2): 20s; level 2 adds slide1
        assert tree.presentation_time(1) == 20.0
        assert tree.presentation_time(2) == 40.0

    def test_slide_schedule(self):
        assert simple_lecture().slide_schedule() == [
            ("slide0", 0.0), ("slide1", 10.0), ("slide2", 30.0)
        ]


class TestRecorder:
    def test_basic_recording(self):
        rec = LectureRecorder("T", "A", microphone=MicrophoneSource())
        rec.start()
        rec.advance_slide(10.0)
        rec.advance_slide(25.0)
        lec = rec.finish(30.0)
        assert [s.name for s in lec.segments] == ["slide0", "slide1", "slide2"]
        assert [s.duration for s in lec.segments] == [10.0, 15.0, 5.0]
        assert lec.audio is not None

    def test_no_microphone_no_audio(self):
        rec = LectureRecorder("T", "A")
        rec.start()
        assert rec.finish(10.0).audio is None

    def test_camera_parameters_flow_through(self):
        rec = LectureRecorder("T", "A", camera=CameraSource(width=640, height=480, fps=30))
        rec.start()
        lec = rec.finish(5.0)
        assert lec.video.width == 640 and lec.video.fps == 30

    def test_annotations_attach_to_segment(self):
        rec = LectureRecorder("T", "A")
        rec.start()
        rec.annotate(3.0, "remember this", duration=2.0)
        rec.advance_slide(10.0)
        rec.annotate(14.0, "and this", duration=2.0)
        lec = rec.finish(20.0)
        assert len(lec.segments[0].annotations) == 1
        assert lec.segments[0].annotations[0].offset == pytest.approx(3.0)
        assert len(lec.segments[1].annotations) == 1
        assert lec.segments[1].annotations[0].offset == pytest.approx(4.0)

    def test_annotation_overflowing_segment_dropped(self):
        rec = LectureRecorder("T", "A")
        rec.start()
        rec.annotate(9.0, "late note", duration=5.0)  # would cross boundary
        rec.advance_slide(10.0)
        lec = rec.finish(20.0)
        assert lec.segments[0].annotations == []

    def test_slide_importance_recorded(self):
        rec = LectureRecorder("T", "A")
        rec.start()
        rec.advance_slide(5.0, importance=2)
        lec = rec.finish(10.0)
        assert lec.segments[1].importance == 2

    def test_monotone_slide_times_enforced(self):
        rec = LectureRecorder("T", "A")
        rec.start()
        rec.advance_slide(5.0)
        with pytest.raises(LectureError):
            rec.advance_slide(5.0)

    def test_lifecycle_enforced(self):
        rec = LectureRecorder("T", "A")
        with pytest.raises(LectureError):
            rec.advance_slide(1.0)
        rec.start()
        with pytest.raises(LectureError):
            rec.start()
        rec.finish(10.0)
        with pytest.raises(LectureError):
            rec.advance_slide(11.0)

    def test_finish_after_last_advance(self):
        rec = LectureRecorder("T", "A")
        rec.start()
        rec.advance_slide(5.0)
        with pytest.raises(LectureError):
            rec.finish(5.0)

    def test_custom_slide_names(self):
        rec = LectureRecorder("T", "A")
        rec.start()
        rec.advance_slide(5.0, name="architecture")
        lec = rec.finish(10.0)
        assert lec.segments[1].name == "architecture"

    def test_recorded_lecture_is_orchestratable(self):
        rec = LectureRecorder("T", "A", microphone=MicrophoneSource())
        rec.start()
        rec.advance_slide(6.0)
        lec = rec.finish(12.0)
        lec.to_presentation().verify()
