"""Unit tests for the Abstractor and content-tree serialization."""

import pytest

from repro.contenttree import (
    Abstractor,
    ContentTree,
    ContentTreeError,
    build_example_tree,
    linear_truncation,
    tree_from_dict,
    tree_from_json,
    tree_from_segments,
    tree_to_dict,
    tree_to_json,
)


class TestAbstractor:
    def test_requires_nonempty_tree(self):
        with pytest.raises(ContentTreeError):
            Abstractor(ContentTree())

    def test_level_for_budget_picks_deepest_fitting(self):
        a = Abstractor(build_example_tree())  # levels cost 20/60/100
        assert a.level_for_budget(20) == 0
        assert a.level_for_budget(59) == 0
        assert a.level_for_budget(60) == 1
        assert a.level_for_budget(99) == 1
        assert a.level_for_budget(100) == 2
        assert a.level_for_budget(10_000) == 2

    def test_budget_below_minimum_rejected(self):
        a = Abstractor(build_example_tree())
        with pytest.raises(ContentTreeError):
            a.level_for_budget(19)

    def test_budget_nonpositive_rejected(self):
        a = Abstractor(build_example_tree())
        with pytest.raises(ContentTreeError):
            a.level_for_budget(0)

    def test_summarize(self):
        summary = Abstractor(build_example_tree()).summarize(60)
        assert summary.level == 1
        assert summary.duration == 60
        assert summary.segments == ("S0", "S1", "S4")

    def test_at_level(self):
        summary = Abstractor(build_example_tree()).at_level(2)
        assert summary.segments == ("S0", "S1", "S2", "S3", "S4")
        assert len(summary) == 5

    def test_at_level_out_of_range(self):
        a = Abstractor(build_example_tree())
        with pytest.raises(ContentTreeError):
            a.at_level(3)
        with pytest.raises(ContentTreeError):
            a.at_level(-1)

    def test_all_levels_monotone(self):
        summaries = Abstractor(build_example_tree()).all_levels()
        durations = [s.duration for s in summaries]
        assert durations == sorted(durations)
        assert len(summaries) == 3

    def test_summary_is_subsequence_of_full(self):
        a = Abstractor(build_example_tree())
        full = list(a.at_level(2).segments)
        short = list(a.at_level(1).segments)
        it = iter(full)
        assert all(s in it for s in short)  # subsequence check


class TestNestingInvariant:
    """Level-k ⊆ level-(k+1): the property segment-level encode reuse
    across abstraction levels depends on (see repro.lod.publisher)."""

    FLAT = [
        ("intro", 30, 0), ("history", 20, 1), ("aside", 25, 2),
        ("footnote", 15, 3), ("core", 30, 0), ("proof", 20, 1),
        ("lemma", 25, 2), ("remark", 15, 3),
    ]

    def test_round_trip_all_levels(self):
        """tree_from_segments → all_levels reproduces the flat lecture."""
        tree = tree_from_segments(self.FLAT)
        summaries = Abstractor(tree).all_levels()
        # deepest level replays the whole lecture, in lecture order
        deepest = summaries[-1]
        assert [n for n in deepest.segments if n != "overview"] == [
            name for name, _, _ in self.FLAT
        ]
        assert deepest.duration == sum(d for _, d, _ in self.FLAT)
        # each level contains exactly the segments of importance < level
        for summary in summaries[1:]:
            expected = [
                name for name, _, imp in self.FLAT if imp < summary.level
            ]
            assert [n for n in summary.segments if n != "overview"] == expected

    def test_every_level_subset_of_next(self):
        tree = tree_from_segments(self.FLAT)
        a = Abstractor(tree)
        for level in range(tree.highest_level):
            shorter = list(a.at_level(level).segments)
            longer = iter(a.at_level(level + 1).segments)
            assert all(name in longer for name in shorter), (
                f"level {level} not an order-preserving subset of {level + 1}"
            )

    def test_verify_nesting_passes(self):
        Abstractor(tree_from_segments(self.FLAT)).verify_nesting()
        Abstractor(build_example_tree()).verify_nesting()
        Abstractor(tree_from_segments([("only", 10, 0)])).verify_nesting()

    def test_verify_nesting_detects_reordering(self):
        tree = tree_from_segments(self.FLAT)
        original = tree.presentation_at

        def scrambled(level):
            nodes = original(level)
            return list(reversed(nodes)) if level == 2 else nodes

        tree.presentation_at = scrambled
        with pytest.raises(ContentTreeError):
            Abstractor(tree).verify_nesting()


class TestLinearTruncation:
    SEGMENTS = [("a", 20), ("b", 20), ("c", 20), ("d", 20), ("e", 20)]

    def test_prefix_only(self):
        kept, used = linear_truncation(self.SEGMENTS, 60)
        assert kept == ("a", "b", "c") and used == 60

    def test_budget_smaller_than_first(self):
        kept, used = linear_truncation(self.SEGMENTS, 10)
        assert kept == () and used == 0

    def test_covers_whole_when_budget_large(self):
        kept, _ = linear_truncation(self.SEGMENTS, 1000)
        assert len(kept) == 5

    def test_tree_summary_covers_later_material_truncation_does_not(self):
        # importance-built tree: essential segments spread over the lecture
        flat = [("intro", 20, 0), ("detail1", 20, 1), ("core", 20, 0),
                ("detail2", 20, 1), ("conclusion", 20, 0)]
        tree = tree_from_segments(flat)
        summary = Abstractor(tree).summarize(60)
        assert "conclusion" in summary.segments
        kept, _ = linear_truncation([(n, d) for n, d, _ in flat], 60)
        assert "conclusion" not in kept


class TestTreeFromSegments:
    def test_importance_maps_to_level(self):
        tree = tree_from_segments([("a", 10, 0), ("b", 10, 1), ("c", 10, 2)])
        assert tree.node("a").level == 1
        assert tree.node("b").level == 2
        assert tree.node("c").level == 3

    def test_narrative_structure_kept(self):
        tree = tree_from_segments(
            [("a", 10, 0), ("a1", 10, 1), ("b", 10, 0), ("b1", 10, 1)]
        )
        assert tree.node("a1").parent.name == "a"
        assert tree.node("b1").parent.name == "b"

    def test_importance_jump_attaches_to_closest_ancestor(self):
        tree = tree_from_segments([("a", 10, 0), ("deep", 10, 3)])
        assert tree.node("deep").parent.name == "a"

    def test_negative_importance_rejected(self):
        with pytest.raises(ContentTreeError):
            tree_from_segments([("a", 10, -1)])

    def test_root_value_counts_in_level0(self):
        tree = tree_from_segments([("a", 10, 0)], root_value=5)
        assert tree.presentation_time(0) == 5


class TestSerialization:
    def test_round_trip_structure(self):
        tree = build_example_tree()
        clone = tree_from_json(tree_to_json(tree))
        assert clone.level_values() == tree.level_values()
        assert [n.name for n in clone.nodes()] == [n.name for n in tree.nodes()]

    def test_payload_round_trip(self):
        tree = ContentTree()
        tree.initialize("r", 1, payload={"slide": "intro.png"})
        clone = tree_from_json(tree_to_json(tree))
        assert clone.node("r").payload == {"slide": "intro.png"}

    def test_empty_tree_round_trip(self):
        clone = tree_from_json(tree_to_json(ContentTree()))
        assert clone.root is None

    def test_version_checked(self):
        with pytest.raises(ContentTreeError):
            tree_from_dict({"version": 99, "root": None})

    def test_invalid_json_rejected(self):
        with pytest.raises(ContentTreeError):
            tree_from_json("not json{")

    def test_non_object_json_rejected(self):
        with pytest.raises(ContentTreeError):
            tree_from_json("[1,2,3]")

    def test_dict_shape(self):
        data = tree_to_dict(build_example_tree())
        assert data["version"] == 1
        assert data["root"]["name"] == "S0"
        assert [c["name"] for c in data["root"]["children"]] == ["S1", "S4"]
