"""Baseline: what a lossy link does to playback *without* recovery.

Pins the seed's fire-and-forget behaviour so test_recovery.py's claims
("recovery-on delivers what recovery-off provably drops") rest on an
asserted baseline, not an assumption:

* burst loss permanently drops media bytes (datagrams are never re-sent);
* a link-down window over a live slide change loses that command forever
  (live commands ride the media path inline, with no replay);
* stored-file slide commands survive loss (they dispatch from the header
  command table, which arrives over reliable HTTP).

``CHAOS_SEED`` (env) reseeds the lossy links so CI can sweep a few runs;
every assertion here must hold for seeds 0, 1, 2.
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.lod import LiveCaptureSession
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.net import FaultInjector, FaultPlan, GilbertElliott
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def make_world(asf=None, *, burst_loss=None):
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
    downlink = net.link("server", "student")
    downlink.rng.seed(1000 + CHAOS_SEED)
    if burst_loss is not None:
        downlink.set_loss(burst_loss=burst_loss)
    server = MediaServer(net, "server", port=8080)
    server.publish("lecture", asf if asf is not None else make_asf())
    return net, server


def drive(net, player, horizon):
    """Run to ``horizon``, stopping the player if it never finished (a
    lossy tail can leave it buffering forever with no recovery)."""
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


def watch(net, server, *, recovery=None, horizon=60.0):
    player = MediaPlayer(net, "student", recovery=recovery)
    player.connect(server.url_of("lecture"))
    player.play()
    return drive(net, player, horizon)


class TestLossyBaseline:
    def test_burst_loss_permanently_drops_media(self):
        clean_net, clean_srv = make_world()
        clean = watch(clean_net, clean_srv)
        assert clean.media_bytes > 0

        lossy_net, lossy_srv = make_world(
            burst_loss=GilbertElliott.from_average(0.05, mean_burst=5.0)
        )
        lossy = watch(lossy_net, lossy_srv)
        # no recovery: every burst is a permanent hole in the media
        assert lossy.media_bytes < clean.media_bytes
        assert any(rate > 0 for rate in lossy.loss_rates.values())
        # and the player never even tried to repair anything
        assert "naks_sent" not in lossy.recovery
        assert lossy.recovery.get("reconnects", 0) == 0

    def test_stored_file_commands_survive_loss(self):
        net, server = make_world(
            burst_loss=GilbertElliott.from_average(0.05, mean_burst=5.0)
        )
        report = watch(net, server)
        # the command table rides the header over reliable HTTP, so slide
        # changes fire even while the media path is dropping packets
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired == [f"s{i}" for i in range(SLIDES)]

    def test_live_slide_lost_during_outage_without_recovery(self):
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
        server = MediaServer(net, "server", port=8080)
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        server.publish("live", capture.stream)
        # scripted one-directional outage over the second slide change:
        # deterministic, independent of any loss RNG
        FaultInjector(net).apply(
            FaultPlan("outage").link_down(
                "server", "student", at=4.8, until=5.8, both=False
            )
        )

        player = MediaPlayer(net, "student", preroll_override=1.0)
        player.connect(server.url_of("live"))
        player.play()
        capture.advance_slide("intro")
        net.simulator.run_until(5.0)
        capture.advance_slide("mid")  # transmitted into the dead window
        net.simulator.run_until(9.0)
        capture.advance_slide("wrap")
        net.simulator.run_until(14.0)
        capture.finish()
        player.mark_stream_ended()
        net.simulator.run_until(16.0)
        player.stop()

        fired = [c.command.parameter for c in player.report().commands]
        assert "intro" in fired and "wrap" in fired
        # the inline command died with the link; nothing ever re-sends it
        assert "mid" not in fired
        assert net.link("server", "student").stats.dropped_down > 0
