"""Republish invalidation: the active half of cache freshness.

A ``replace=True`` grid publish that changes a variant's content
address pushes an eager ``invalidate`` to every edge the holder
registry lists — stale runs drop *now*, the next viewer refills the
new generation, and an in-flight fill of the old generation is aborted
(the stale gate wins the republish-racing-prefetch race).

The race test is part of the chaos matrix: ``CHAOS_SEED`` moves the
republish instant inside the fill window.
"""

import os

import pytest

from repro.catalog import CatalogIndex
from repro.lod import Lecture, LODPublisher
from repro.media import get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    PublishError,
    SessionError,
    build_edge_tier,
)
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
POINT = "qt-l1-dsl-256k"


def lecture(durations=(12, 8, 10, 6)):
    return Lecture.from_slide_durations(
        "Queueing Theory", "Prof", list(durations),
        importances=[0, 1, 0, 1], slide_width=160, slide_height=120,
    )


def edited_lecture():
    """The 'teacher re-cut a slide' republish: slide 2 — a member of the
    published level-1 variant — grows a second, changing the variant's
    timeline and therefore its content address."""
    return lecture((12, 8, 11, 6))


def packed(asf):
    return len(asf.header.pack()) + sum(len(b) for b in asf.packed_packets())


def build_world(edges=3):
    reset_counters("edge_cache")
    net = VirtualNetwork()
    origin = MediaServer(net, "origin", port=8080, pacing_quantum=0.5)
    directory, relays = build_edge_tier(
        net, origin, [f"edge{i}" for i in range(edges)],
        pacing_quantum=0.5, sibling_fills=True,
    )
    catalog = CatalogIndex()
    publisher = LODPublisher(
        origin, renditions=[PROFILE],
        edge_directory=directory, catalog=catalog,
    )
    return net, origin, directory, relays, publisher, catalog


class TestInvalidationPush:
    def test_republish_reaches_every_holding_edge(self):
        net, origin, directory, relays, publisher, catalog = build_world()
        publisher.publish(lecture(), "qt", levels=[1])
        old_key = origin.points[POINT].content.fingerprint()
        for relay in relays:
            relay.prefetch(POINT)
            assert relay._cache_keys[POINT] == old_key
        assert directory.holders(POINT) == [r.name for r in relays]

        result = publisher.publish(
            edited_lecture(), "qt", levels=[1], replace=True,
        )
        new_key = origin.points[POINT].content.fingerprint()
        assert new_key != old_key
        assert result.invalidations_pushed == len(relays)

        counters = get_counters("edge_cache")
        assert counters["invalidations"] == len(relays)
        for relay in relays:
            assert old_key not in relay.cache
            assert POINT not in relay._cache_keys
            assert POINT not in relay.points
        # nobody advertises the point any more
        assert directory.holders(POINT) == []
        # the catalog tracks the fresh generation
        assert catalog.entry(POINT).cache_key == new_key

    def test_unchanged_republish_pushes_nothing(self):
        net, origin, directory, relays, publisher, catalog = build_world(edges=1)
        publisher.publish(lecture(), "qt", levels=[1])
        relays[0].prefetch(POINT)
        # identical content → same fingerprint → no invalidation traffic
        result = publisher.publish(lecture(), "qt", levels=[1], replace=True)
        assert result.invalidations_pushed == 0
        assert POINT in relays[0].points

    def test_fresh_edge_is_left_alone(self):
        """An edge already holding the *new* generation keeps it."""
        net, origin, directory, relays, publisher, catalog = build_world(edges=1)
        publisher.publish(lecture(), "qt", levels=[1])
        (relay,) = relays
        relay.prefetch(POINT)
        new_asf = origin.points[POINT].content
        # simulate the edge having refilled fresh already
        assert relay.invalidate_point(POINT, new_asf.fingerprint()) is False
        assert POINT in relay.points

    def test_next_viewer_refills_byte_identical_fresh_run(self):
        net, origin, directory, relays, publisher, catalog = build_world(edges=1)
        publisher.publish(lecture(), "qt", levels=[1])
        (relay,) = relays
        relay.prefetch(POINT)
        old_key = relay._cache_keys[POINT]

        publisher.publish(
            edited_lecture(), "qt", levels=[1], replace=True,
        )
        reference = origin.points[POINT].content
        assert old_key not in relay.cache

        net.connect(relay.host, "viewer", bandwidth=2_000_000, delay=0.02)
        player = MediaPlayer(net, "viewer", user="viewer")
        player.connect(f"http://{relay.host}:{relay.port}/lod/{POINT}")
        player.play()
        net.simulator.run_until(300.0)
        if player.state is not PlayerState.FINISHED:
            player.stop()

        fresh = relay.cache.lookup(reference.fingerprint())
        assert fresh is not None
        assert (
            b"".join(p.pack() for p in fresh.packets)
            == b"".join(p.pack() for p in reference.packets)
        )
        # exactly one stale run was dropped, exactly one fresh refill made
        assert relay.cache.bytes_cached == packed(reference)


class TestSupersededRunDrop:
    def test_refill_after_republish_drops_old_generation(self):
        """Without a push (no directory attached to the publisher), the
        stale-source gate on the next fill supersedes the old run — the
        byte budget holds exactly one generation afterwards."""
        net, origin, directory, relays, publisher, catalog = build_world(edges=1)
        publisher.publish(lecture(), "qt", levels=[1])
        publisher.edge_directory = None  # TTL/stale-gate world: no push
        (relay,) = relays
        relay.prefetch(POINT)
        old_key = relay._cache_keys[POINT]

        publisher.publish(
            edited_lecture(), "qt", levels=[1], replace=True,
        )
        new_ref = origin.points[POINT].content
        assert old_key in relay.cache  # nothing pushed: stale run rests

        relay.unpublish(POINT)  # point released; the cache entry remains
        relay.prefetch(POINT)   # next ensure re-describes the origin

        counters = get_counters("edge_cache")
        assert counters["superseded_runs_dropped"] == 1
        assert old_key not in relay.cache
        assert relay._cache_keys[POINT] == new_ref.fingerprint()
        assert relay.cache.bytes_cached == packed(new_ref)


class TestRepublishRacesPrefetch:
    """Chaos-matrix member: a republish landing *mid-fill* must abort
    the stale fill (the gate wins); the edge never serves old bytes."""

    @pytest.mark.parametrize("lag", [0.002, 0.01, 0.05])
    def test_stale_gate_wins_the_race(self, lag):
        net, origin, directory, relays, publisher, catalog = build_world(edges=1)
        publisher.publish(lecture(), "qt", levels=[1])
        (relay,) = relays
        old_key = origin.points[POINT].content.fingerprint()

        # the republish fires while the prefetch's fill is in flight —
        # CHAOS_SEED slides the instant across the transfer window
        delay = lag * (1 + CHAOS_SEED)
        net.simulator.schedule(
            delay,
            lambda: publisher.publish(
                edited_lecture(), "qt", levels=[1], replace=True,
            ),
        )
        try:
            relay.prefetch(POINT)
        except (PublishError, SessionError):
            pass  # an aborted stale fill surfaces as a failed ensure
        # a fast fill can beat the republish; drive past it so every
        # (lag, seed) cell ends in the post-republish world — the slow
        # cells degrade to the plain push-after-fill invalidation
        net.simulator.run_until(delay + 1.0)

        new_key = origin.points[POINT].content.fingerprint()
        assert new_key != old_key
        # the invariant under ANY interleaving: no stale state survives
        assert old_key not in relay.cache
        assert relay._cache_keys.get(POINT) in (None, new_key)
        counters = get_counters("edge_cache")
        if counters["stale_fill_aborted"]:
            # the push caught the fill mid-flight: the abort left no
            # partial run behind either
            assert POINT not in relay.points or (
                relay._cache_keys.get(POINT) == new_key
            )

        # recovery: the very next warm lands the fresh generation
        relay.prefetch(POINT)
        assert relay._cache_keys[POINT] == new_key
        reference = origin.points[POINT].content
        cached = relay.cache.lookup(new_key)
        assert cached is not None
        assert (
            b"".join(p.pack() for p in cached.packets)
            == b"".join(p.pack() for p in reference.packets)
        )
