"""Chaos against the edge tier: lossy backbones, edge crashes, re-routes.

The edge-tier acceptance scenarios of the distributed-serving PR, in the
same scripted-fault style as test_recovery.py:

* a lossy backbone must not poison the packet-run cache — the fill
  repairs itself with upstream NAK rounds and the fingerprint check
  guarantees what got cached is byte-identical to the origin's run;
* :meth:`FaultPlan.edge_crash` plus
  :meth:`FaultInjector.register_directory` give edge relays the same
  scripted crash/restart treatment origin servers already had;
* the headline: a viewer mid-lecture loses its edge to a crash, the
  directory routes the reconnect to a surviving edge (admission control
  skips the corpse), playback resumes from the buffered frontier — and a
  full :class:`TraceChecker` pass over a trace spanning *both* hops and
  *both* edges finds every invariant intact.

``CHAOS_SEED`` (env) reseeds the lossy links; all assertions must hold
for seeds 0, 1, 2.
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.net import FaultInjector, FaultPlan
from repro.obs import TraceChecker, Tracer
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    RecoveryConfig,
    build_edge_tier,
)
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def make_tier(*, edges=2, tracer=None, seed=0, **tier_kwargs):
    """Origin + N edges + one student wired to every edge."""
    reset_counters("edge_cache")
    net = VirtualNetwork()
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    origin.publish("lecture", make_asf())
    directory, relays = build_edge_tier(
        net, origin, [f"edge{i}" for i in range(edges)],
        pacing_quantum=0.5, seed=seed, tracer=tracer, **tier_kwargs,
    )
    for relay in relays:
        net.connect(relay.host, "student", bandwidth=2_000_000, delay=0.02)
        net.link(relay.host, "student").rng.seed(1000 + CHAOS_SEED)
    return net, origin, directory, relays


def drive(net, player, horizon):
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


class TestLossyBackboneFill:
    def test_fill_repairs_itself_and_never_caches_a_hole(self):
        # fill_burst=2 paces the replica fill out as ~20 small trains so
        # i.i.d. loss is certain to eat some of them (one giant burst
        # train would survive most seeds untouched)
        net, origin, directory, (edge0,) = make_tier(edges=1, fill_burst=2.0)
        backbone = net.link("origin", "edge0")
        backbone.rng.seed(1000 + CHAOS_SEED)
        backbone.set_loss(loss_rate=0.35)

        edge0.prefetch("lecture")
        counters = get_counters("edge_cache")
        # the burst lost packets; time-gated upstream NAK rounds repaired
        # the holes before the fill was allowed to complete
        assert edge0.recovery_stats["upstream_naks"] >= 1
        assert counters["fills"] == 1
        assert counters.get("fill_integrity_failures", 0) == 0
        cached = edge0.cache.lookup(
            origin.points["lecture"].content.fingerprint()
        )
        assert cached is not None
        reference = origin.points["lecture"].content
        assert (
            b"".join(p.pack() for p in cached.packets)
            == b"".join(p.pack() for p in reference.packets)
        )

        # and a viewer served off the repaired replica sees clean playback
        player = MediaPlayer(net, "student", recovery=RecoveryConfig())
        player.connect(directory.url_for("student", "lecture"))
        player.play()
        report = drive(net, player, 60.0)
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired == [f"s{i}" for i in range(SLIDES)]


class TestEdgeFaultParity:
    def test_fault_plan_drives_edge_crash_and_restart(self):
        net, origin, directory, relays = make_tier()
        injector = FaultInjector(net)
        injector.register_directory(directory)
        injector.apply(
            FaultPlan("edge-chaos").edge_crash(
                "edge0", at=2.0, restart_at=4.0
            )
        )
        net.simulator.run_until(3.0)
        assert relays[0].crashed and relays[0].crash_count == 1
        # the directory's admission control reflects the crash live
        assert directory.place("anything") == "edge1"
        net.simulator.run_until(5.0)
        assert not relays[0].crashed
        assert [k for _, k, t in injector.log if t == ("edge0",)] == [
            "server_crash", "server_restart",
        ]

    def test_backbone_link_faults_target_edges_like_any_host(self):
        net, origin, directory, (edge0, _) = make_tier()
        edge0.prefetch("lecture")
        FaultInjector(net).apply(
            FaultPlan("cut").link_down("origin", "edge0", at=1.0, until=2.0)
        )
        net.simulator.run_until(3.0)
        # the cut window severed and healed the backbone; the replica
        # (filled before the cut) kept serving throughout
        assert "lecture" in edge0.points


class TestCrashRerouteResume:
    def test_viewer_survives_edge_crash_via_directory_reroute(self):
        tracer = Tracer("edge-chaos")
        net, origin, directory, relays = make_tier(tracer=tracer)
        for relay in relays:
            for pair in ((relay.host, "student"), ("origin", relay.host)):
                net.link(*pair).tracer = tracer
                net.link(*reversed(pair)).tracer = tracer

        home = directory.place("student|lecture")
        injector = FaultInjector(net, tracer=tracer)
        injector.register_directory(directory)
        injector.apply(
            FaultPlan("edge-crash").edge_crash(home, at=6.0, restart_at=12.0)
        )

        player = MediaPlayer(
            net, "student", directory=directory,
            recovery=RecoveryConfig(), tracer=tracer,
        )
        player.connect(directory.url_for("student", "lecture"))
        player.play()
        report = drive(net, player, 90.0)

        # the reconnect was re-placed onto the surviving edge
        assert report.recovery.get("stalls_detected", 0) >= 1
        assert report.recovery.get("reconnects", 0) >= 1
        assert report.recovery.get("reroutes", 0) >= 1
        assert tracer.events("playback.reroute")
        survivor = next(r for r in relays if r.name != home)
        assert survivor.sessions.total_created >= 1

        # playback completed end to end, nothing rendered twice
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired == [f"s{i}" for i in range(SLIDES)]
        keys = [
            (r.unit.stream_number, r.unit.object_number)
            for r in report.rendered
        ]
        assert len(keys) == len(set(keys))

        # sweep the tier down, then audit the full two-hop trace: every
        # session (player->edge AND edge->origin, on both edges) must
        # balance, QoS reservations drain, trains only in open sessions
        for relay in relays:
            relay.shutdown()
        assert len(origin.sessions) == 0
        for server in (origin, *relays):
            server.sessions.assert_consistent()
            server.assert_no_qos_leaks()
        TraceChecker(tracer.records).assert_ok()
        assert [k for _, k, t in injector.log if t == (home,)] == [
            "server_crash", "server_restart",
        ]
        assert tracer.events("fault.server_crash")
