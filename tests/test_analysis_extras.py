"""Unit tests for analysis extensions: firing paths, free choice, graph DOT."""

import pytest

from repro.core.analysis import (
    StateSpaceLimitExceeded,
    is_free_choice,
    reachability_graph,
    reachability_graph_to_dot,
    shortest_firing_sequence,
)
from repro.core.builder import NetBuilder
from repro.core.extended import build_control_net, build_floor_net
from repro.core.petri import Marking, PetriNet


def diamond_net():
    """Two paths to 'end': short (t_direct) and long (t_a then t_b)."""
    return (
        NetBuilder("diamond")
        .place("start", tokens=1)
        .places("mid", "end")
        .transitions("t_direct", "t_a", "t_b")
        .chain("start", "t_direct", "end")
        .chain("start", "t_a", "mid", "t_b", "end")
        .build()
    )


class TestShortestFiringSequence:
    def test_finds_shortest_path(self):
        path = shortest_firing_sequence(diamond_net(), Marking({"end": 1}))
        assert path == ["t_direct"]

    def test_empty_path_for_initial(self):
        net = diamond_net()
        assert shortest_firing_sequence(net, Marking({"start": 1})) == []

    def test_unreachable_returns_none(self):
        net = diamond_net()
        assert shortest_firing_sequence(net, Marking({"start": 2})) is None

    def test_path_replays(self):
        net = build_floor_net(["a", "b"])
        goal = net.marking.with_delta(
            {"floor": -1, "idle_b": -1, "holding_b": 1, "waiting_b": 0}
        )
        path = shortest_firing_sequence(net, goal)
        assert path is not None
        net.fire_sequence(path)
        assert net.marking == goal

    def test_multi_step_path(self):
        net = build_control_net()
        goal = Marking({"paused": 1})
        path = shortest_firing_sequence(net, goal)
        assert path == ["t_play", "t_pause"]

    def test_state_cap(self):
        net = PetriNet()
        net.add_place("run", tokens=1)
        net.add_place("heap")
        net.add_transition("t")
        net.add_arc("run", "t")
        net.add_arc("t", "run")
        net.add_arc("t", "heap")
        with pytest.raises(StateSpaceLimitExceeded):
            shortest_firing_sequence(net, Marking({"impossible": 1}) if False
                                     else Marking({"heap": 10**6}),
                                     max_states=50)


class TestFreeChoice:
    def test_control_net_is_free_choice(self):
        # a pure state machine: every transition has a singleton preset
        assert is_free_choice(build_control_net())

    def test_floor_net_is_not_free_choice(self):
        # grant_u consumes {waiting_u, floor}: the shared 'floor' place
        # feeds transitions with different presets (asymmetric choice), so
        # Commoner's check on it is strong evidence, not a theorem
        assert not is_free_choice(build_floor_net(["a", "b", "c"]))

    def test_shared_place_with_equal_presets_ok(self):
        assert is_free_choice(diamond_net())

    def test_asymmetric_confusion_not_free_choice(self):
        net = (
            NetBuilder()
            .place("p", tokens=1)
            .place("q", tokens=1)
            .places("o1", "o2")
            .transitions("t1", "t2")
            .arc("p", "t1").arc("t1", "o1")
            .arc("p", "t2").arc("q", "t2").arc("t2", "o2")
            .build()
        )
        assert not is_free_choice(net)

    def test_inhibitor_nets_not_free_choice(self):
        net = (
            NetBuilder()
            .place("p", tokens=1)
            .place("i")
            .place("o")
            .transition("t")
            .arc("p", "t").arc("t", "o")
            .arc("i", "t", inhibitor=True)
            .build()
        )
        assert not is_free_choice(net)


class TestReachabilityDot:
    def test_renders_nodes_edges_and_initial(self):
        net = build_control_net()
        graph = reachability_graph(net)
        dot = reachability_graph_to_dot(graph)
        assert dot.startswith("digraph reachability")
        assert "peripheries=2" in dot  # initial marking
        assert 'label="t_play"' in dot
        assert "idle:1" in dot

    def test_dead_markings_shaded(self):
        net = build_control_net()
        dot = reachability_graph_to_dot(reachability_graph(net))
        assert "fillcolor" in dot  # 'stopped' is absorbing

    def test_empty_marking_label(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        dot = reachability_graph_to_dot(reachability_graph(net))
        assert "(empty)" in dot
