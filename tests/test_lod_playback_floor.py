"""Unit tests for LOD playback engine, classroom floor control, interactions."""

import pytest

from repro.core.extended import SiteLink
from repro.lod import (
    Classroom,
    FloorDenied,
    InteractionScript,
    Lecture,
    LectureError,
    LODPlayback,
    MediaStore,
    ScriptedAction,
    WebPublishingManager,
    apply_to_model,
    apply_to_stream,
    random_script,
    replay_all_levels,
)
from repro.streaming import MediaPlayer, MediaServer
from repro.web import VirtualNetwork


def lecture():
    return Lecture.from_slide_durations(
        "L", "A", [10.0, 10.0, 10.0, 10.0], importances=[0, 1, 0, 1],
        slide_width=320, slide_height=240,
    )


@pytest.fixture
def published():
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=2e6, delay=0.02)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    lec = lecture()
    store.register_lecture("/v", "/s", lec)
    manager = WebPublishingManager(server, store)
    record = manager.publish(video_path="/v", slide_dir="/s", point="lec")
    return net, lec, record, manager


class TestLODPlayback:
    def test_watch_with_audit(self, published):
        net, lec, record, _ = published
        playback = LODPlayback(net, "student", lec, record.url)
        report, audit = playback.watch()
        assert audit.ok
        assert audit.max_error <= 2 * MediaPlayer.RENDER_TICK
        assert set(audit.per_slide) == {s.name for s in lec.segments}

    def test_watch_level_plays_only_level_segments(self, published):
        net, lec, record, manager = published
        playback = LODPlayback(net, "student", lec, record.url)
        tree = manager.content_tree_of("lec")
        result = playback.watch_level(tree, level=1)
        assert result.segments_played == ["slide0", "slide2"]
        assert result.coverage == 1.0
        assert result.nominal_duration == 20.0

    def test_watch_level_full_depth_plays_everything(self, published):
        net, lec, record, manager = published
        playback = LODPlayback(net, "student", lec, record.url)
        tree = manager.content_tree_of("lec")
        result = playback.watch_level(tree, level=tree.highest_level)
        assert result.segments_played == [s.name for s in lec.segments]

    def test_watch_level_by_budget(self, published):
        net, lec, record, manager = published
        playback = LODPlayback(net, "student", lec, record.url)
        tree = manager.content_tree_of("lec")
        result = playback.watch_level(tree, budget=25.0)
        assert result.level == 1

    def test_level_and_budget_mutually_exclusive(self, published):
        net, lec, record, manager = published
        playback = LODPlayback(net, "student", lec, record.url)
        tree = manager.content_tree_of("lec")
        with pytest.raises(LectureError):
            playback.watch_level(tree, level=1, budget=10.0)
        with pytest.raises(LectureError):
            playback.watch_level(tree)

    def test_replay_all_levels_monotone_coverage(self, published):
        net, lec, record, manager = published
        playback = LODPlayback(net, "student", lec, record.url)
        tree = manager.content_tree_of("lec")
        results = replay_all_levels(playback, tree)
        counts = [len(r.segments_played) for r in results]
        assert counts == sorted(counts)
        assert counts[-1] == 4


class TestClassroom:
    def make_room(self, **kwargs):
        pres = lecture().to_presentation()
        return Classroom(
            pres,
            {"s1": SiteLink(0.05), "s2": SiteLink(0.1)},
            **kwargs,
        )

    def test_teacher_starts_with_floor(self):
        room = self.make_room()
        assert room.floor_holder == "teacher"

    def test_nonholder_interaction_denied(self):
        room = self.make_room()
        room.interact("teacher", "play")
        with pytest.raises(FloorDenied):
            room.interact("s1", "pause")
        assert room.denial_count() == 1

    def test_floor_passes_fifo(self):
        room = self.make_room()
        room.request_floor("s1")
        room.request_floor("s2")
        assert room.release_floor("teacher") == "s1"
        assert room.release_floor("s1") == "s2"

    def test_holder_commands_replicate(self):
        room = self.make_room()
        room.interact("teacher", "play")
        room.advance(3)
        assert room.coordinator.sites["s1"].state == "playing"
        room.interact("teacher", "pause")
        room.advance(1)
        assert room.coordinator.sites["s1"].state == "paused"

    def test_fairness_accounting(self):
        room = self.make_room()
        room.interact("teacher", "play")
        room.advance(4)
        room.request_floor("s1")
        room.release_floor("teacher")
        room.advance(6)
        times = room.fairness()
        assert times["teacher"] == pytest.approx(4.0)
        assert times["s1"] == pytest.approx(6.0)
        assert 0 < room.jain_index() <= 1

    def test_teacher_cannot_be_student(self):
        pres = lecture().to_presentation()
        with pytest.raises(ValueError):
            Classroom(pres, {"teacher": SiteLink()})

    def test_event_log(self):
        room = self.make_room()
        room.interact("teacher", "play")
        actions = [e.action for e in room.events]
        assert actions[0] == "request_floor"
        assert "play" in actions


class TestInteractionScripts:
    def test_action_validation(self):
        with pytest.raises(ValueError):
            ScriptedAction(-1, "pause")
        with pytest.raises(ValueError):
            ScriptedAction(1, "teleport")

    def test_script_sorts_actions(self):
        script = InteractionScript(
            [ScriptedAction(5, "pause"), ScriptedAction(1, "pause")]
        )
        assert [a.at for a in script.actions] == [1, 5]
        assert script.horizon == 5

    def test_random_script_reproducible(self):
        a = random_script(duration=100, seed=3, pause_rate=0.1)
        b = random_script(duration=100, seed=3, pause_rate=0.1)
        assert a.actions == b.actions

    def test_random_script_pause_resume_paired(self):
        script = random_script(duration=200, seed=5, pause_rate=0.2, skip_rate=0.0)
        kinds = [a.action for a in script.actions]
        assert kinds.count("pause") == kinds.count("resume")

    def test_apply_to_model_completes(self):
        pres = lecture().to_presentation()
        script = InteractionScript(
            [
                ScriptedAction(2.0, "pause"),
                ScriptedAction(4.0, "resume"),
                ScriptedAction(6.0, "skip_forward"),
                ScriptedAction(8.0, "speed", 2.0),
            ]
        )
        result = apply_to_model(pres, script)
        assert result.applied == 4
        assert result.rejected == 0
        assert result.player.finished

    def test_apply_to_model_counts_rejections(self):
        pres = lecture().to_presentation()
        script = InteractionScript(
            [ScriptedAction(1.0, "resume")]  # illegal: not paused
        )
        result = apply_to_model(pres, script)
        assert result.rejected == 1

    def test_apply_to_stream(self, published):
        net, lec, record, _ = published
        script = InteractionScript(
            [
                ScriptedAction(2.0, "pause"),
                ScriptedAction(3.0, "resume"),
                ScriptedAction(5.0, "seek", 30.0),
            ]
        )
        player = MediaPlayer(net, "viewer")
        result = apply_to_stream(net, player, record.url, script)
        assert result.applied == 3
        assert result.report.duration_watched == pytest.approx(40.0, abs=0.3)

    def test_apply_to_stream_rejects_skips(self, published):
        net, lec, record, _ = published
        script = InteractionScript([ScriptedAction(1.0, "skip_forward")])
        with pytest.raises(ValueError):
            apply_to_stream(net, MediaPlayer(net, "v2"), record.url, script)
