"""Property-based tests on the OCPN compiler.

For randomly generated specification trees over all thirteen relations:

* the compiled net executes to exactly the interval-algebra schedule;
* the net is safe (1-bounded) and ends with one token in ``P_done``;
* the makespan equals the spec duration;
* interval classification of the measured playouts matches the relation
  used at every internal node.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.analysis import is_safe, reachability_graph
from repro.core.intervals import TemporalRelation, relation_between
from repro.core.ocpn import (
    Composite,
    MediaLeaf,
    compile_spec,
    spec_duration,
    spec_intervals,
    verify_schedule,
)

_REL_POOL = [
    TemporalRelation.BEFORE,
    TemporalRelation.MEETS,
    TemporalRelation.OVERLAPS,
    TemporalRelation.DURING,
    TemporalRelation.STARTS,
    TemporalRelation.FINISHES,
    TemporalRelation.EQUALS,
    TemporalRelation.AFTER,
    TemporalRelation.MET_BY,
    TemporalRelation.CONTAINS,
]


def random_spec(rng: random.Random, depth: int, counter: list):
    """A random well-formed spec tree (delays chosen to be legal)."""
    if depth == 0 or rng.random() < 0.3:
        counter[0] += 1
        return MediaLeaf(f"m{counter[0]}", round(rng.uniform(1.0, 8.0), 2))
    relation = rng.choice(_REL_POOL)
    left = random_spec(rng, depth - 1, counter)
    right = random_spec(rng, depth - 1, counter)
    da, db = spec_duration(left), spec_duration(right)
    rel, swapped = relation.canonicalize()
    # pick parameters that satisfy the relation's constraints
    if rel is TemporalRelation.EQUALS:
        counter[0] += 1
        right = MediaLeaf(f"m{counter[0]}", da if not swapped else db)
        return Composite(relation, left, right) if not swapped else Composite(
            relation, left, right
        )
    if rel in (TemporalRelation.STARTS, TemporalRelation.FINISHES):
        # need first shorter than second (in canonical order)
        a, b = (left, right) if not swapped else (right, left)
        if spec_duration(a) >= spec_duration(b):
            counter[0] += 1
            pad = MediaLeaf(f"m{counter[0]}", spec_duration(a) + 1.0)
            if swapped:
                left = pad
            else:
                right = pad
        return Composite(relation, left, right)
    if rel is TemporalRelation.BEFORE:
        return Composite(relation, left, right, delay=round(rng.uniform(0.5, 3.0), 2))
    if rel is TemporalRelation.OVERLAPS:
        a, b = (left, right) if not swapped else (right, left)
        da2, db2 = spec_duration(a), spec_duration(b)
        delay = round(rng.uniform(0.1, 0.9) * da2, 3)
        if delay + db2 <= da2:  # b must outlast a
            counter[0] += 1
            longer = MediaLeaf(f"m{counter[0]}", da2 + 1.0)
            if swapped:
                left = longer
            else:
                right = longer
        return Composite(relation, left, right, delay=max(delay, 0.01))
    if rel is TemporalRelation.DURING:
        a, b = (left, right) if not swapped else (right, left)
        da2, db2 = spec_duration(a), spec_duration(b)
        if da2 + 0.2 >= db2:
            counter[0] += 1
            container = MediaLeaf(f"m{counter[0]}", da2 + 2.0)
            if swapped:
                left = container
            else:
                right = container
            db2 = da2 + 2.0
        delay = round(rng.uniform(0.05, (db2 - da2) * 0.9), 3)
        return Composite(relation, left, right, delay=max(delay, 0.01))
    return Composite(relation, left, right)  # MEETS / MET_BY


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=3))
def test_compiled_net_matches_interval_algebra(seed, depth):
    spec = random_spec(random.Random(seed), depth, [0])
    compiled = compile_spec(spec)
    errors = verify_schedule(compiled, tol=1e-6)
    assert max(errors.values(), default=0.0) <= 1e-6


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=2))
def test_compiled_net_is_safe(seed, depth):
    spec = random_spec(random.Random(seed), depth, [0])
    compiled = compile_spec(spec)
    assert is_safe(compiled.timed_net.net, max_states=50_000)


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=3))
def test_makespan_equals_spec_duration(seed, depth):
    spec = random_spec(random.Random(seed), depth, [0])
    compiled = compile_spec(spec)
    execution = compiled.execute()
    assert abs(execution.makespan() - spec_duration(spec)) < 1e-6


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=0, max_value=100_000))
def test_single_token_reaches_done(seed):
    spec = random_spec(random.Random(seed), 2, [0])
    compiled = compile_spec(spec)
    graph = reachability_graph(compiled.timed_net.net, max_states=50_000)
    finals = graph.dead_markings()
    assert len(finals) == 1
    assert finals[0] == {"P_done": 1}


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000))
def test_pairwise_relations_hold_in_measured_intervals(seed):
    rng = random.Random(seed)
    counter = [0]
    spec = random_spec(rng, 1, counter)
    if isinstance(spec, MediaLeaf):
        return
    intervals = spec_intervals(spec)
    compiled = compile_spec(spec)
    measured = compiled.measured_intervals()
    # the measured relation between the two subtrees' hulls matches the spec
    for leaf, ref in intervals.items():
        got = measured[leaf]
        assert abs(got.start - ref.start) < 1e-6
        assert abs(got.end - ref.end) < 1e-6
