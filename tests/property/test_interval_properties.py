"""Property-based tests on the interval algebra."""

from hypothesis import assume, given, strategies as st

from repro.core.intervals import (
    Interval,
    TemporalRelation,
    relation_between,
    schedule_pair,
)

durations = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
fractions = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)


@given(durations, durations, fractions)
def test_meets_schedule_classifies_back(da, db, _):
    a, b = schedule_pair(TemporalRelation.MEETS, da, db)
    assert relation_between(a, b) is TemporalRelation.MEETS


@given(durations, durations, fractions)
def test_before_schedule_classifies_back(da, db, frac):
    a, b = schedule_pair(TemporalRelation.BEFORE, da, db, delay=frac * 10)
    assert relation_between(a, b) is TemporalRelation.BEFORE


@given(durations, fractions)
def test_equals_schedule_classifies_back(da, _):
    a, b = schedule_pair(TemporalRelation.EQUALS, da, da)
    assert relation_between(a, b) is TemporalRelation.EQUALS


@given(durations, durations, fractions)
def test_during_schedule_classifies_back(da, db, frac):
    inner, outer = min(da, db), max(da, db) + 1.0
    delay = frac * (outer - inner)
    a, b = schedule_pair(TemporalRelation.DURING, inner, outer, delay=delay)
    assert relation_between(a, b) is TemporalRelation.DURING


@given(durations, durations, fractions)
def test_overlaps_schedule_classifies_back(da, db, frac):
    delay = frac * da
    assume(delay + db > da + 1e-6)
    assume(delay > 1e-6 and da - delay > 1e-6)
    a, b = schedule_pair(TemporalRelation.OVERLAPS, da, db, delay=delay)
    assert relation_between(a, b) is TemporalRelation.OVERLAPS


@given(durations, durations)
def test_starts_schedule_classifies_back(da, db):
    shorter, longer = min(da, db), max(da, db) + 0.5
    a, b = schedule_pair(TemporalRelation.STARTS, shorter, longer)
    assert relation_between(a, b) is TemporalRelation.STARTS


@given(durations, durations)
def test_finishes_schedule_classifies_back(da, db):
    shorter, longer = min(da, db), max(da, db) + 0.5
    a, b = schedule_pair(TemporalRelation.FINISHES, shorter, longer)
    assert relation_between(a, b) is TemporalRelation.FINISHES


@given(durations, durations, fractions, st.floats(min_value=0, max_value=50))
def test_origin_shift_preserves_relation(da, db, frac, origin):
    a0, b0 = schedule_pair(TemporalRelation.MEETS, da, db)
    a1, b1 = schedule_pair(TemporalRelation.MEETS, da, db, origin=origin)
    assert relation_between(a0, b0) is relation_between(a1, b1)
    assert a1.start == a0.start + origin


@given(durations, durations)
def test_durations_preserved_by_scheduling(da, db):
    a, b = schedule_pair(TemporalRelation.MEETS, da, db)
    assert abs(a.duration - da) < 1e-9
    assert abs(b.duration - db) < 1e-9


@given(st.sampled_from(list(TemporalRelation)))
def test_inverse_involution(rel):
    assert rel.inverse().inverse() is rel


@given(st.sampled_from(list(TemporalRelation)))
def test_canonicalize_lands_in_canonical_set(rel):
    canonical, swapped = rel.canonicalize()
    assert canonical.is_canonical()
    if rel.is_canonical():
        assert not swapped
