"""Property-based tests: end-to-end streaming invariants under random
network conditions.

Whatever the link does (loss, jitter, constrained bandwidth), the player
must uphold:

* rendered units are non-decreasing in timestamp per stream;
* fired commands are non-decreasing in commanded timestamp;
* the playback position never exceeds the content duration (plus a tick);
* rebuffer accounting is consistent (count 0 ⇔ time 0);
* no unit is rendered before the playback clock reached its timestamp.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.streaming import MediaPlayer, MediaServer, PlayerError
from repro.web import VirtualNetwork


def run_playback(seed: int, loss: float, jitter: float, bandwidth: float):
    lecture = Lecture.from_slide_durations(
        "prop", "P", [8.0, 8.0], slide_width=160, slide_height=120,
    )
    net = VirtualNetwork()
    net.connect(
        "server", "student", bandwidth=bandwidth, delay=0.03,
        jitter=jitter, loss_rate=loss, queue_limit=10_000,
    )
    # reseed the lossy direction for variety
    net.link("server", "student").rng.seed(seed)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v", "/s", lecture)
    record = WebPublishingManager(server, store).publish(
        video_path="/v", slide_dir="/s", point="prop"
    )
    player = MediaPlayer(net, "student")
    try:
        report = player.watch(record.url)
    except PlayerError:
        return None, lecture
    return report, lecture


conditions = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.sampled_from([0.0, 0.01, 0.05]),  # loss
    st.sampled_from([0.0, 0.01]),  # jitter
    st.sampled_from([400_000.0, 1_000_000.0]),  # bandwidth
)


@settings(deadline=None, max_examples=12)
@given(conditions)
def test_rendered_timestamps_monotone_per_stream(params):
    report, _ = run_playback(*params)
    if report is None:
        return
    last = {}
    for rendered in report.rendered:
        stream = rendered.unit.stream_number
        assert rendered.unit.timestamp_ms >= last.get(stream, -1)
        last[stream] = rendered.unit.timestamp_ms


@settings(deadline=None, max_examples=12)
@given(conditions)
def test_commands_fire_in_order(params):
    report, _ = run_playback(*params)
    if report is None:
        return
    times = [c.command.timestamp_ms for c in report.commands]
    assert times == sorted(times)


@settings(deadline=None, max_examples=12)
@given(conditions)
def test_position_bounded_by_duration(params):
    report, lecture = run_playback(*params)
    if report is None:
        return
    assert report.duration_watched <= lecture.duration + 2 * MediaPlayer.RENDER_TICK


@settings(deadline=None, max_examples=12)
@given(conditions)
def test_rebuffer_accounting_consistent(params):
    report, _ = run_playback(*params)
    if report is None:
        return
    if report.rebuffer_count == 0:
        assert report.rebuffer_time == 0.0
    else:
        assert report.rebuffer_time > 0.0


@settings(deadline=None, max_examples=12)
@given(conditions)
def test_units_rendered_at_or_after_their_timestamp(params):
    report, _ = run_playback(*params)
    if report is None:
        return
    for rendered in report.rendered:
        assert rendered.position >= rendered.unit.timestamp - 1e-9
