"""Property-based tests: PNML round trip over random nets."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.petri import PetriNet
from repro.core.pnml import net_from_pnml, net_to_pnml


def random_net(seed: int) -> PetriNet:
    rng = random.Random(seed)
    net = PetriNet(f"net{seed}")
    n_places = rng.randint(1, 7)
    n_transitions = rng.randint(1, 6)
    for i in range(n_places):
        capacity = rng.choice([None, None, rng.randint(1, 5)])
        net.add_place(
            f"p{i}", tokens=rng.randint(0, 3), capacity=capacity,
            label=rng.choice(["", f"label {i}", "ünïcode ⟶"]),
        )
    for j in range(n_transitions):
        net.add_transition(
            f"t{j}", priority=rng.randint(0, 5),
            label=rng.choice(["", f"move {j}"]),
        )
        for i in rng.sample(range(n_places), rng.randint(1, min(2, n_places))):
            net.add_arc(f"p{i}", f"t{j}", weight=rng.randint(1, 4))
        for i in rng.sample(range(n_places), rng.randint(1, min(2, n_places))):
            net.add_arc(f"t{j}", f"p{i}", weight=rng.randint(1, 4))
        if rng.random() < 0.3:
            candidates = [
                i for i in range(n_places)
                if f"p{i}" not in net.inputs(f"t{j}")
            ]
            if candidates:
                net.add_arc(
                    f"p{rng.choice(candidates)}", f"t{j}",
                    weight=rng.randint(1, 2), inhibitor=True,
                )
    return net


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_round_trip_structure(seed):
    net = random_net(seed)
    clone, durations = net_from_pnml(net_to_pnml(net))
    assert durations == {}
    assert {p.name for p in clone.places} == {p.name for p in net.places}
    assert {t.name for t in clone.transitions} == {
        t.name for t in net.transitions
    }
    for t in (tr.name for tr in net.transitions):
        assert clone.inputs(t) == net.inputs(t)
        assert clone.outputs(t) == net.outputs(t)
        assert clone.inhibitors(t) == net.inhibitors(t)
    assert clone.initial_marking == net.initial_marking


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000))
def test_round_trip_attributes(seed):
    net = random_net(seed)
    clone, _ = net_from_pnml(net_to_pnml(net))
    for place in net.places:
        twin = clone.place(place.name)
        assert twin.capacity == place.capacity
        # empty labels default back to the id on export
        assert twin.label in (place.label, place.name)
    for transition in net.transitions:
        assert clone.transition(transition.name).priority == transition.priority


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000))
def test_round_trip_behaviour(seed):
    net = random_net(seed)
    clone, _ = net_from_pnml(net_to_pnml(net))
    rng = random.Random(seed + 7)
    for _ in range(20):
        enabled_a = net.enabled()
        enabled_b = clone.enabled()
        assert enabled_a == enabled_b
        if not enabled_a:
            break
        choice = rng.choice(enabled_a)
        net.fire(choice)
        clone.fire(choice)
        assert net.marking == clone.marking


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=0, max_value=100_000))
def test_double_round_trip_is_identity(seed):
    net = random_net(seed)
    once = net_to_pnml(net)
    clone, _ = net_from_pnml(once)
    twice = net_to_pnml(clone)
    assert once == twice
