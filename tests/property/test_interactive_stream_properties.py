"""Property-based robustness: random pause/resume/seek workloads on streams.

Whatever legal interaction sequence a student throws at the player, the
stream must complete, the state machine must never corrupt, and every
post-seek position must land where asked.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lod import (
    InteractionScript,
    Lecture,
    MediaStore,
    ScriptedAction,
    WebPublishingManager,
    apply_to_stream,
)
from repro.streaming import MediaPlayer
from repro.web import VirtualNetwork

DURATION = 30.0


def random_stream_script(seed: int) -> InteractionScript:
    """Pause/resume pairs and seeks at random times (stream-legal only)."""
    rng = random.Random(seed)
    actions = []
    t = 1.0
    paused = False
    for _ in range(rng.randint(1, 6)):
        t += rng.uniform(0.5, 5.0)
        if paused:
            actions.append(ScriptedAction(round(t, 2), "resume"))
            paused = False
        else:
            kind = rng.choice(["pause", "seek"])
            if kind == "pause":
                actions.append(ScriptedAction(round(t, 2), "pause"))
                paused = True
            else:
                target = round(rng.uniform(0.0, DURATION - 2.0), 1)
                actions.append(ScriptedAction(round(t, 2), "seek", target))
    return InteractionScript(actions)


def world():
    lecture = Lecture.from_slide_durations(
        "R", "P", [10.0, 10.0, 10.0], slide_width=160, slide_height=120,
    )
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=2e6, delay=0.02)
    server_store = MediaStore()
    server_store.register_lecture("/v", "/s", lecture)
    from repro.streaming import MediaServer

    server = MediaServer(net, "server", port=8080)
    record = WebPublishingManager(server, server_store).publish(
        video_path="/v", slide_dir="/s", point="r"
    )
    return net, record


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_interactions_complete(seed):
    net, record = world()
    script = random_stream_script(seed)
    player = MediaPlayer(net, "student")
    result = apply_to_stream(net, player, record.url, script)
    assert result.rejected == 0  # every scripted action was state-legal
    assert result.report.duration_watched == pytest.approx(DURATION, abs=0.3)


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=10_000))
def test_slides_always_end_on_last(seed):
    net, record = world()
    script = random_stream_script(seed)
    player = MediaPlayer(net, "student")
    result = apply_to_stream(net, player, record.url, script)
    slides = [c.command.parameter for c in result.report.slide_changes()]
    assert slides, "at least one slide fires"
    assert slides[-1] == "slide2"  # playback always reaches the end


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=10_000))
def test_rendered_positions_within_content(seed):
    net, record = world()
    script = random_stream_script(seed)
    player = MediaPlayer(net, "student")
    result = apply_to_stream(net, player, record.url, script)
    for rendered in result.report.rendered:
        assert -1e-9 <= rendered.unit.timestamp <= DURATION
