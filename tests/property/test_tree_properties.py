"""Property-based tests on the multiple-level content tree.

Random operation sequences (attach / insert / detach / delete) must keep
the structural invariants, the cumulative level-duration law, and the
serialization round trip.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.contenttree import (
    ContentTree,
    ContentTreeError,
    tree_from_json,
    tree_to_json,
)


def random_tree_ops(seed: int, n_ops: int = 25) -> ContentTree:
    """Apply a random (always-legal) operation sequence."""
    rng = random.Random(seed)
    tree = ContentTree()
    tree.initialize("root", rng.randint(1, 30))
    counter = 0
    for _ in range(n_ops):
        names = [n.name for n in tree.nodes()]
        op = rng.choice(["attach", "attach", "attach", "insert", "delete", "detach"])
        counter += 1
        new = f"n{counter}"
        if op == "attach":
            tree.attach(new, rng.randint(1, 30), parent=rng.choice(names))
        elif op == "insert":
            parent = tree.node(rng.choice(names))
            adopt = [
                c.name for c in parent.children if rng.random() < 0.5
            ]
            tree.insert(new, rng.randint(1, 30), parent=parent.name, adopt=adopt)
        elif op == "delete":
            candidates = [n for n in names if n != "root"]
            if candidates:
                tree.delete(rng.choice(candidates))
        elif op == "detach":
            candidates = [n for n in names if n != "root"]
            if candidates and len(names) > 2:
                tree.detach(rng.choice(candidates))
    return tree


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_random_ops_keep_tree_valid(seed):
    tree = random_tree_ops(seed)
    tree.validate()


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_level_values_strictly_cumulative(seed):
    tree = random_tree_ops(seed)
    values = tree.level_values()
    # non-decreasing and the deepest level equals the total of all values
    assert values == sorted(values)
    total = sum(n.value for n in tree.nodes())
    assert values[-1] == total


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_level_value_is_sum_of_shallow_nodes(seed):
    tree = random_tree_ops(seed)
    for q in range(tree.highest_level + 1):
        expected = sum(n.value for n in tree.nodes() if n.level <= q)
        assert tree.presentation_time(q) == expected


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_presentation_order_subsequence_across_levels(seed):
    tree = random_tree_ops(seed)
    deepest = [n.name for n in tree.presentation_at(tree.highest_level)]
    for q in range(tree.highest_level):
        shallow = [n.name for n in tree.presentation_at(q)]
        it = iter(deepest)
        assert all(name in it for name in shallow)  # subsequence


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_serialization_round_trip(seed):
    tree = random_tree_ops(seed)
    clone = tree_from_json(tree_to_json(tree))
    assert [n.name for n in clone.nodes()] == [n.name for n in tree.nodes()]
    assert [n.level for n in clone.nodes()] == [n.level for n in tree.nodes()]
    assert clone.level_values() == tree.level_values()


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_delete_conserves_other_nodes(seed):
    tree = random_tree_ops(seed)
    names = [n.name for n in tree.nodes() if n.name != "root"]
    if not names:
        return
    victim = random.Random(seed).choice(names)
    before = {n.name for n in tree.nodes()}
    tree.delete(victim)
    after = {n.name for n in tree.nodes()}
    assert after == before - {victim}
    tree.validate()
