"""Property-based tests on the Petri-net core.

Invariants checked on randomly generated nets and firing sequences:

* firing preserves every P-invariant's weighted token count;
* ``Marking`` is a value type (hash/eq agree, delta round-trips);
* every marking in the reachability graph is reachable by the recorded
  edges, and enabled transitions from any graph marking stay inside the
  graph (closure).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    conserved_token_count,
    is_p_invariant,
    p_invariants,
    reachability_graph,
)
from repro.core.petri import Marking, PetriNet


# ----------------------------------------------------------------------
# marking as a value type
# ----------------------------------------------------------------------

counts = st.dictionaries(
    st.sampled_from([f"p{i}" for i in range(6)]),
    st.integers(min_value=0, max_value=5),
    max_size=6,
)


@given(counts)
def test_marking_hash_eq_consistent(c):
    a, b = Marking(c), Marking(dict(c))
    assert a == b and hash(a) == hash(b)


@given(counts)
def test_marking_zero_entries_ignored(c):
    padded = dict(c)
    padded["zzz"] = 0
    assert Marking(c) == Marking(padded)


@given(counts, counts)
def test_marking_delta_roundtrip(base, delta):
    m = Marking(base)
    up = m.with_delta(delta)
    down = up.with_delta({k: -v for k, v in delta.items()})
    assert down == m


@given(counts, counts)
def test_covers_iff_componentwise(a, b):
    ma, mb = Marking(a), Marking(b)
    expected = all(ma[p] >= mb[p] for p in set(a) | set(b))
    assert ma.covers(mb) == expected


# ----------------------------------------------------------------------
# random nets
# ----------------------------------------------------------------------


def random_net(seed: int, n_places: int = 5, n_transitions: int = 4) -> PetriNet:
    rng = random.Random(seed)
    net = PetriNet(f"rand{seed}")
    for i in range(n_places):
        net.add_place(f"p{i}", tokens=rng.randint(0, 2))
    for j in range(n_transitions):
        net.add_transition(f"t{j}")
        inputs = rng.sample(range(n_places), rng.randint(1, 2))
        outputs = rng.sample(range(n_places), rng.randint(1, 2))
        for i in inputs:
            net.add_arc(f"p{i}", f"t{j}", weight=rng.randint(1, 2))
        for i in outputs:
            net.add_arc(f"t{j}", f"p{i}", weight=rng.randint(1, 2))
    return net


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=10_000))
def test_firing_preserves_p_invariants(seed):
    net = random_net(seed)
    invariants = p_invariants(net)
    rng = random.Random(seed + 1)
    for _ in range(30):
        enabled = net.enabled()
        if not enabled:
            break
        net.fire(rng.choice(enabled))
    for inv in invariants:
        before = conserved_token_count(net, inv)
        weighted_now = sum(w * net.marking[p] for p, w in inv.items())
        assert weighted_now == before


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=10_000))
def test_p_invariant_basis_passes_checker(seed):
    net = random_net(seed)
    for inv in p_invariants(net):
        assert is_p_invariant(net, inv)


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=0, max_value=10_000))
def test_reachability_graph_closed_under_firing(seed):
    net = random_net(seed, n_places=4, n_transitions=3)
    try:
        graph = reachability_graph(net, max_states=2_000)
    except Exception:
        return  # unbounded net: coverability territory, not this test
    for marking in graph.markings:
        for t in net.enabled(marking):
            nxt = marking.with_delta(net.fire_delta(t))
            assert nxt in graph.markings


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=0, max_value=10_000))
def test_graph_edges_are_valid_firings(seed):
    net = random_net(seed, n_places=4, n_transitions=3)
    try:
        graph = reachability_graph(net, max_states=2_000)
    except Exception:
        return
    for src, t, dst in graph.edges:
        assert net.is_enabled(t, src)
        assert src.with_delta(net.fire_delta(t)) == dst
