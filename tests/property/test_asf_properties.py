"""Property-based tests on the ASF container wire format.

Random streams of media units must survive packetize → (binary round
trip) → depacketize byte-for-byte; DRM scrambling must be involutive and
size-preserving; script-command tables must round-trip in order.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.asf.drm import scramble
from repro.asf.packets import (
    DataPacket,
    Depacketizer,
    MediaUnit,
    Packetizer,
)
from repro.asf.script_commands import (
    ScriptCommand,
    pack_command_table,
    unpack_command_table,
)
from repro.asf.wire import Reader


def random_units(seed: int):
    rng = random.Random(seed)
    streams = rng.sample(range(1, 20), rng.randint(1, 3))
    unit_lists = []
    for stream in streams:
        units = []
        ts = 0
        for number in range(rng.randint(1, 12)):
            ts += rng.randint(10, 500)
            size = rng.randint(1, 4000)
            payload = bytes(rng.getrandbits(8) for _ in range(size))
            units.append(MediaUnit(stream, number, ts, rng.random() < 0.3, payload))
        unit_lists.append(units)
    return unit_lists


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=200, max_value=3_000),
)
def test_packetize_depacketize_lossless(seed, packet_size):
    unit_lists = random_units(seed)
    packets = Packetizer(packet_size=packet_size).packetize(unit_lists)
    depacketizer = Depacketizer()
    for packet in packets:
        depacketizer.push_packet(packet)
    for units in unit_lists:
        stream = units[0].stream_number
        got = sorted(
            depacketizer.units_for(stream), key=lambda u: u.object_number
        )
        assert got == units


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=200, max_value=3_000),
)
def test_packets_binary_round_trip(seed, packet_size):
    unit_lists = random_units(seed)
    packets = Packetizer(packet_size=packet_size).packetize(unit_lists)
    for packet in packets:
        blob = packet.pack()
        assert len(blob) == packet_size
        clone = DataPacket.unpack(blob)
        assert clone.sequence == packet.sequence
        assert clone.send_time_ms == packet.send_time_ms
        assert clone.payloads == packet.payloads


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=0, max_value=100_000))
def test_send_times_monotone(seed):
    unit_lists = random_units(seed)
    packets = Packetizer().packetize(unit_lists)
    times = [p.send_time_ms for p in packets]
    assert times == sorted(times)


@settings(deadline=None, max_examples=50)
@given(st.binary(max_size=5_000), st.text(min_size=1, max_size=20))
def test_scramble_involutive_and_size_preserving(data, key):
    once = scramble(data, key)
    assert len(once) == len(data)
    assert scramble(once, key) == data


@given(st.binary(min_size=16, max_size=1_000), st.text(min_size=1, max_size=10))
def test_scramble_changes_content(data, key):
    # a single byte can coincide with a zero keystream byte (1/256), but a
    # 16-byte zero keystream prefix is 2^-128 — effectively impossible
    assert scramble(data, key) != data


commands = st.lists(
    st.builds(
        ScriptCommand,
        st.integers(min_value=0, max_value=10**7),
        st.sampled_from(["SLIDE", "CAPTION", "URL", "ANNOTATION"]),
        st.text(max_size=30),
    ),
    max_size=20,
)


@given(commands)
def test_command_table_round_trip_sorted(cmds):
    table = pack_command_table(cmds)
    decoded = unpack_command_table(table)
    assert decoded == sorted(cmds)
