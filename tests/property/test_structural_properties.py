"""Property-based tests on siphon/trap analysis over random nets."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.petri import PetriNet
from repro.core.structural import (
    is_siphon,
    is_trap,
    maximal_siphon_within,
    maximal_trap_within,
    minimal_siphons,
)


def random_net(seed: int, n_places: int = 6, n_transitions: int = 5) -> PetriNet:
    rng = random.Random(seed)
    net = PetriNet(f"s{seed}")
    for i in range(n_places):
        net.add_place(f"p{i}", tokens=rng.randint(0, 1))
    for j in range(n_transitions):
        net.add_transition(f"t{j}")
        for i in rng.sample(range(n_places), rng.randint(1, 2)):
            net.add_arc(f"p{i}", f"t{j}")
        for i in rng.sample(range(n_places), rng.randint(1, 2)):
            net.add_arc(f"t{j}", f"p{i}")
    return net


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000))
def test_maximal_siphon_is_siphon(seed):
    net = random_net(seed)
    result = maximal_siphon_within(net, [p.name for p in net.places])
    assert not result or is_siphon(net, result)


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000))
def test_maximal_trap_is_trap(seed):
    net = random_net(seed)
    result = maximal_trap_within(net, [p.name for p in net.places])
    assert not result or is_trap(net, result)


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=0, max_value=100_000))
def test_maximal_siphon_contains_every_siphon_in_subset(seed):
    net = random_net(seed)
    places = [p.name for p in net.places]
    maximal = maximal_siphon_within(net, places)
    for siphon in minimal_siphons(net, limit=50_000):
        assert set(siphon) <= maximal


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=0, max_value=100_000))
def test_minimal_siphons_are_minimal(seed):
    net = random_net(seed)
    for siphon in minimal_siphons(net, limit=50_000):
        assert is_siphon(net, siphon)
        for place in siphon:
            assert not is_siphon(net, set(siphon) - {place})


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=0, max_value=100_000))
def test_empty_siphon_stays_empty(seed):
    """Behavioural consequence: an initially-empty siphon never gains tokens."""
    net = random_net(seed)
    rng = random.Random(seed + 1)
    empty = [
        s for s in minimal_siphons(net, limit=50_000)
        if all(net.initial_marking[p] == 0 for p in s)
    ]
    for _ in range(40):
        enabled = net.enabled()
        if not enabled:
            break
        net.fire(rng.choice(enabled))
    for siphon in empty:
        assert all(net.marking[p] == 0 for p in siphon)


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=0, max_value=100_000))
def test_marked_trap_stays_marked(seed):
    """Behavioural consequence: a marked trap never fully drains."""
    net = random_net(seed)
    rng = random.Random(seed + 2)
    trap = maximal_trap_within(net, [p.name for p in net.places])
    initially_marked = bool(trap) and any(
        net.initial_marking[p] > 0 for p in trap
    )
    for _ in range(40):
        enabled = net.enabled()
        if not enabled:
            break
        net.fire(rng.choice(enabled))
    if initially_marked:
        assert any(net.marking[p] > 0 for p in trap)
