"""Property-based tests on the presentation clock and jitter buffer."""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.asf.packets import MediaUnit
from repro.media.clock import ClockError, PresentationClock
from repro.streaming.buffer import JitterBuffer


# ----------------------------------------------------------------------
# clock: random legal op sequences keep media time monotone while running
# ----------------------------------------------------------------------


def apply_ops(seed: int, n_ops: int = 30):
    """Drive a clock with random legal ops; return (clock, samples)."""
    rng = random.Random(seed)
    clock = PresentationClock()
    wall = 0.0
    clock.start(wall)
    samples = [(wall, clock.media_time(wall), clock.paused)]
    for _ in range(n_ops):
        wall += rng.uniform(0.01, 2.0)
        op = rng.choice(["tick", "pause", "resume", "rate", "seek"])
        try:
            if op == "pause":
                clock.pause(wall)
            elif op == "resume":
                clock.resume(wall)
            elif op == "rate":
                clock.set_rate(wall, rng.choice([0.5, 1.0, 2.0]))
            elif op == "seek":
                clock.seek(wall, rng.uniform(0, 100))
        except ClockError:
            pass  # illegal in current state: rejected, state unchanged
        samples.append((wall, clock.media_time(wall), clock.paused))
    return clock, samples


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_random_op_sequences_never_corrupt_clock(seed):
    """Any mix of legal/illegal ops leaves the clock queryable and sane."""
    clock, samples = apply_ops(seed)
    for wall, media, _paused in samples:
        assert media >= 0
    # the final state still answers queries consistently
    last_wall = samples[-1][0]
    if clock.paused:
        assert clock.media_time(last_wall + 50) == clock.media_time(last_wall)
    else:
        assert clock.media_time(last_wall + 1) > clock.media_time(last_wall)


@settings(deadline=None, max_examples=20)
@given(st.floats(min_value=0.1, max_value=50.0))
def test_media_time_frozen_while_paused(pause_at):
    clock = PresentationClock()
    clock.start(0.0)
    clock.pause(pause_at)
    assert clock.media_time(pause_at + 1) == clock.media_time(pause_at + 100)


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_media_time_monotone_between_seeks(seed):
    rng = random.Random(seed)
    clock = PresentationClock()
    clock.start(0.0)
    wall = 0.0
    last = clock.media_time(wall)
    for _ in range(30):
        wall += rng.uniform(0.01, 1.0)
        op = rng.choice(["tick", "pause", "resume", "rate"])
        try:
            if op == "pause":
                clock.pause(wall)
            elif op == "resume":
                clock.resume(wall)
            elif op == "rate":
                clock.set_rate(wall, rng.choice([0.5, 1.0, 3.0]))
        except ClockError:
            pass
        now = clock.media_time(wall)
        assert now >= last - 1e-9  # no seeks => never goes backwards
        last = now


@settings(deadline=None, max_examples=50)
@given(
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.1, max_value=5.0),
    st.floats(min_value=0.25, max_value=4.0),
)
def test_rate_scales_elapsed_media_time(run_for, idle, rate):
    clock = PresentationClock(rate=rate)
    clock.start(0.0)
    assert clock.media_time(run_for) == (
        __import__("pytest").approx(run_for * rate)
    )


# ----------------------------------------------------------------------
# jitter buffer: order, conservation, depth
# ----------------------------------------------------------------------


def random_units(seed: int, n: int = 40):
    rng = random.Random(seed)
    units = []
    for i in range(n):
        stream = rng.randint(1, 3)
        ts = rng.randint(0, 20_000)
        units.append(MediaUnit(stream, i, ts, True, b"x"))
    return units


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_pop_due_returns_sorted_and_conserves(seed):
    buffer = JitterBuffer()
    units = random_units(seed)
    for unit in units:
        buffer.push(unit)
    popped = []
    rng = random.Random(seed + 1)
    position = 0.0
    while len(buffer):
        position += rng.uniform(0.1, 5.0)
        popped.extend(buffer.pop_due(position))
    timestamps = [u.timestamp_ms for u in popped]
    assert timestamps == sorted(timestamps)
    assert sorted(u.object_number for u in popped) == sorted(
        u.object_number for u in units
    )


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_pop_due_never_returns_future_units(seed):
    buffer = JitterBuffer()
    for unit in random_units(seed):
        buffer.push(unit)
    position = 7.5
    for unit in buffer.pop_due(position):
        assert unit.timestamp <= position + 1e-9
    for _, _, unit in buffer._heap:
        assert unit.timestamp > position - 1e-3


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000))
def test_depth_is_min_over_requested_streams(seed):
    buffer = JitterBuffer()
    units = random_units(seed)
    for unit in units:
        buffer.push(unit)
    streams = sorted({u.stream_number for u in units})
    horizons = {
        s: max(u.timestamp_ms for u in units if u.stream_number == s) / 1000.0
        for s in streams
    }
    position = 1.0
    expected = max(0.0, min(h - position for h in horizons.values()))
    assert buffer.depth(position, streams) == __import__("pytest").approx(expected)
