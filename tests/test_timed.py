"""Unit tests for timed-net execution (repro.core.timed)."""

import pytest

from repro.core.builder import NetBuilder
from repro.core.petri import PetriNet, PetriNetError
from repro.core.timed import TimedEvent, TimedExecution, TimedPetriNet


def chain_net():
    """start -t1-> a(2s) -t2-> b(3s) -t3-> done."""
    net = (
        NetBuilder("chain")
        .place("start", tokens=1)
        .places("a", "b", "done")
        .transitions("t1", "t2", "t3")
        .chain("start", "t1", "a", "t2", "b", "t3", "done")
        .build()
    )
    return TimedPetriNet(net, {"a": 2.0, "b": 3.0})


def fork_net():
    """One transition starts a(2s) and b(5s); join waits for both."""
    net = (
        NetBuilder("fork")
        .place("start", tokens=1)
        .places("a", "b", "done")
        .transitions("t_split", "t_join")
        .chain("start", "t_split")
        .arc("t_split", "a")
        .arc("t_split", "b")
        .arc("a", "t_join")
        .arc("b", "t_join")
        .arc("t_join", "done")
        .build()
    )
    return TimedPetriNet(net, {"a": 2.0, "b": 5.0})


class TestTimedEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TimedEvent(0.0, "boom", "x")


class TestTimedPetriNet:
    def test_default_duration_zero(self):
        tn = chain_net()
        assert tn.duration("start") == 0.0

    def test_rejects_negative_duration(self):
        tn = chain_net()
        with pytest.raises(ValueError):
            tn.set_duration("a", -1)

    def test_rejects_unknown_place(self):
        tn = chain_net()
        with pytest.raises(Exception):
            tn.set_duration("nope", 1)

    def test_durations_copy(self):
        tn = chain_net()
        d = tn.durations
        d["a"] = 99
        assert tn.duration("a") == 2.0


class TestExecution:
    def test_sequential_makespan(self):
        ex = chain_net().execute()
        assert ex.makespan() == pytest.approx(5.0)

    def test_sequential_intervals(self):
        ex = chain_net().execute()
        assert ex.playout_intervals("a") == [(0.0, 2.0)]
        assert ex.playout_intervals("b") == [(2.0, 5.0)]

    def test_parallel_join_waits_for_slowest(self):
        ex = fork_net().execute()
        assert ex.firing_times("t_join") == [pytest.approx(5.0)]

    def test_parallel_intervals_start_together(self):
        ex = fork_net().execute()
        assert ex.first_start("a") == ex.first_start("b") == 0.0

    def test_rate_scales_time(self):
        ex = chain_net().execute(rate=2.0)
        assert ex.makespan() == pytest.approx(2.5)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            chain_net().execute(rate=0)

    def test_event_order_complete(self):
        ex = chain_net().execute()
        kinds = [(e.kind, e.name) for e in ex.events]
        assert ("fire", "t1") in kinds and ("exit", "b") in kinds
        # every enter has a matching exit
        enters = sum(1 for e in ex.events if e.kind == "enter")
        exits = sum(1 for e in ex.events if e.kind == "exit")
        assert enters == exits

    def test_stop_time_truncates(self):
        ex = chain_net().execute(stop_time=1.0)
        assert ex.playout_intervals("b") == []

    def test_max_firings_cap(self):
        # a live loop would run forever without the cap
        net = (
            NetBuilder("loop")
            .place("p", tokens=1)
            .place("q")
            .transitions("t1", "t2")
            .chain("p", "t1", "q", "t2", "p")
            .build()
        )
        ex = TimedPetriNet(net, {"p": 1.0, "q": 1.0}).execute(max_firings=10)
        assert ex.firings == 10

    def test_step_returns_none_when_quiescent(self):
        tn = chain_net()
        ex = TimedExecution(tn)
        while ex.step() is not None:
            pass
        assert ex.step() is None

    def test_advance_to_cannot_go_backwards(self):
        ex = TimedExecution(chain_net())
        ex.advance_to(3.0)
        with pytest.raises(ValueError):
            ex.advance_to(1.0)

    def test_available_marking_excludes_locked(self):
        tn = chain_net()
        ex = TimedExecution(tn)
        ex.step()  # fires t1 at time 0, token locked in 'a'
        assert ex.available_marking["a"] == 0
        assert ex.pending_unlocks == 1

    def test_fire_external_disabled_raises(self):
        ex = TimedExecution(chain_net())
        with pytest.raises(PetriNetError):
            ex.fire_external("t2")

    def test_fire_external_at_current_time(self):
        tn = chain_net()
        ex = TimedExecution(tn)
        ex.advance_to(0.0)
        event = ex.fire_external("t1")
        assert event.kind == "fire" and event.time == 0.0

    def test_weighted_output_admits_multiple_tokens(self):
        net = PetriNet()
        net.add_place("s", tokens=1)
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("s", "t")
        net.add_arc("t", "p", weight=3)
        ex = TimedPetriNet(net, {"p": 1.0}).execute()
        assert len(ex.playout_intervals("p")) == 3

    def test_zero_duration_place_passes_through(self):
        ex = chain_net().execute()
        # 'start' has no duration: enter and exit at the same instant
        assert ex.playout_intervals("start") == [(0.0, 0.0)]

    def test_inhibitor_becomes_enabled_when_blocker_drains(self):
        # 'blocker' is available immediately and inhibits t_go; t_block can
        # only consume it once the 1s 'gate' playout completes — exercises
        # the event-driven re-check of inhibited transitions on drain
        net = PetriNet()
        net.add_place("blocker", tokens=1)
        net.add_place("gate", tokens=1)
        net.add_place("go", tokens=1)
        net.add_place("sink")
        net.add_place("out")
        net.add_transition("t_block")
        net.add_arc("blocker", "t_block")
        net.add_arc("gate", "t_block")
        net.add_arc("t_block", "sink")
        net.add_transition("t_go")
        net.add_arc("go", "t_go")
        net.add_arc("t_go", "out")
        net.add_arc("blocker", "t_go", inhibitor=True)
        ex = TimedPetriNet(net, {"gate": 1.0}).execute()
        assert ex.firing_times("t_block") == [pytest.approx(1.0)]
        # t_go was inhibited until the blocker token was consumed at t=1
        assert ex.firing_times("t_go") == [pytest.approx(1.0)]

    def test_initial_multi_token_place(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        ex = TimedPetriNet(net, {"p": 1.5}).execute()
        assert ex.firing_times("t") == [pytest.approx(1.5), pytest.approx(1.5)]
