"""Cohort-of-N delivery is indistinguishable from N independent clients.

The load harness's central claim: a :class:`MediaPlayer` opened with
``multiplicity=N`` (one cohort delegate) delivers, renders and measures
*exactly* what N independent clients would have — and when one member
individuates mid-run (a seek), :meth:`MediaPlayer.split_member` peels out
a twin whose delivery is byte-identical to the client that had been
independent all along.

Two worlds, same content, same link parameters, same edge tier:

* **baseline** — N real players, all joining within one ``join_quantum``
  over identical isolated links. The edge defers every ``play`` to the
  quantum boundary, so the whole wave starts as one pacing group; the
  shared render ticker puts every player on the same absolute 50 ms
  grid. Together these make the N clients *exactly* interchangeable.
* **cohort** — one delegate with ``multiplicity=N`` joining in the same
  quantum; in the split scenario one member is peeled out with a seek at
  the same instant the baseline member seeks.

Comparisons are exact — no tolerances: delivered media units (stream,
object, timestamp, payload bytes), render wall times, fired script
commands, per-field QoE, weighted :class:`QoEAggregator` summaries, and
:class:`TraceChecker` verdicts on both traces.
"""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.net.engine import SharedTicker
from repro.obs import QoEAggregator, SessionQoE, TraceChecker, Tracer
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    build_edge_tier,
)
from repro.web import VirtualNetwork

N = 32
DURATION = 12.0
JOIN_AT = 1.0       # after prefetch; well inside the first quantum
QUANTUM = 8.0       # covers the serialized control-plane time of N joins
SEEK_MEMBER = 5
SEEK_AT = 14.0      # mid-playback (start boundary 8.0 + preroll)
SEEK_TO = 8.0       # content position sought to
BANDWIDTH = 2_000_000
DELAY = 0.02
MAX_EVENTS = 5_000_000


def make_asf():
    slides = 3
    per_slide = DURATION / slides
    return ASFEncoder(
        EncoderConfig(profile=get_profile("dsl-256k"))
    ).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(slides)]
        ),
    )


def make_world(asf, hosts, tracer):
    """Origin + one pre-filled edge + identical per-viewer links."""
    net = VirtualNetwork()
    tracer.bind_clock(net.simulator)
    origin = MediaServer(
        net, "origin", port=8080,
        shared_pacing=True, pacing_quantum=0.5, tracer=tracer,
    )
    origin.publish("lecture", asf)
    _, relays = build_edge_tier(
        net, origin, ["edge0"],
        pacing_quantum=0.5, join_quantum=QUANTUM, tracer=tracer,
    )
    relay = relays[0]
    relay.prefetch("lecture")
    for host in hosts:
        net.connect(relay.host, host, bandwidth=BANDWIDTH, delay=DELAY)
    ticker = SharedTicker(net.simulator, MediaPlayer.RENDER_TICK)
    return net, relay, ticker


def run_baseline(asf, *, seek=False):
    """N independent players, all joining within one quantum."""
    tracer = Tracer("baseline")
    hosts = [f"c{i}" for i in range(N)]
    net, relay, ticker = make_world(asf, hosts, tracer)
    players = [
        MediaPlayer(net, host, user=host, tracer=tracer,
                    render_ticker=ticker)
        for host in hosts
    ]

    def join(player):
        player.connect(relay.url_of("lecture"))
        player.play()

    for player in players:
        net.simulator.schedule_at(JOIN_AT, lambda p=player: join(p))
    if seek:
        net.simulator.schedule_at(
            SEEK_AT, lambda: players[SEEK_MEMBER].seek(SEEK_TO)
        )
    net.simulator.run(max_events=MAX_EVENTS)
    assert all(p.state is PlayerState.FINISHED for p in players)
    return tracer, relay, players


def run_cohort(asf, *, seek=False):
    """One delegate standing for N viewers; optionally split one out."""
    tracer = Tracer("cohort")
    hosts = ["cohort"] + (["member"] if seek else [])
    net, relay, ticker = make_world(asf, hosts, tracer)
    delegate = MediaPlayer(
        net, "cohort", user="cohort", tracer=tracer,
        multiplicity=N, render_ticker=ticker,
    )
    twins = []

    def join():
        delegate.connect(relay.url_of("lecture"))
        delegate.play()

    net.simulator.schedule_at(JOIN_AT, join)
    if seek:
        net.simulator.schedule_at(
            SEEK_AT,
            lambda: twins.append(
                delegate.split_member("member", user="member",
                                      seek_to=SEEK_TO)
            ),
        )
    net.simulator.run(max_events=MAX_EVENTS)
    assert delegate.state is PlayerState.FINISHED
    assert all(t.state is PlayerState.FINISHED for t in twins)
    return tracer, relay, delegate, twins


def delivered_units(report):
    """Rendered media content, timing-free: the exact (stream, object,
    timestamp, payload) sequence handed to the renderer."""
    return [r.unit for r in report.rendered]


def fired_content(report):
    return [(c.command.type, c.command.parameter) for c in report.commands]


def assert_reports_identical(a, b, *, timing=True):
    """Every QoE-relevant field of two playback reports, exactly equal.

    ``timing=False`` drops render wall-times from the comparison — a
    split twin replays its seek from a freshly opened session, whose
    deferred start shifts *when* the replayed units render but not *what*
    is delivered or any QoE field.
    """
    assert a.media_bytes == b.media_bytes
    assert a.startup_latency == b.startup_latency
    assert a.rebuffer_count == b.rebuffer_count
    assert a.rebuffer_time == b.rebuffer_time
    assert a.duration_watched == b.duration_watched
    assert a.downshifts == b.downshifts
    assert delivered_units(a) == delivered_units(b)
    assert fired_content(a) == fired_content(b)
    if timing:
        assert (
            [(r.wall_time, r.position) for r in a.rendered]
            == [(r.wall_time, r.position) for r in b.rendered]
        )


def weighted_summary(aggregator):
    """Aggregator summary minus the session count — a cohort run folds
    the same viewer population through fewer sessions by design."""
    out = aggregator.summary()
    out.pop("sessions")
    return out


class TestPureCohortEquivalence:
    """No individuation: 1 delegate x32 == 32 independent clients."""

    @pytest.fixture(scope="class")
    def runs(self):
        asf = make_asf()
        baseline = run_baseline(asf)
        cohort = run_cohort(asf)
        return baseline, cohort

    def test_byte_identical_delivery(self, runs):
        (_, _, players), (_, _, delegate, _) = runs
        reference = delegate.report()
        assert reference.media_bytes > 0
        for player in players:
            assert_reports_identical(player.report(), reference)

    def test_qoe_aggregates_identical(self, runs):
        (_, _, players), (_, _, delegate, _) = runs
        baseline_agg = QoEAggregator()
        for player in players:
            baseline_agg.add(
                SessionQoE.from_report(player.report(), client=player.user)
            )
        cohort_agg = QoEAggregator()
        cohort_agg.add(
            SessionQoE.from_report(
                delegate.report(), client="cohort", multiplicity=N
            )
        )
        assert baseline_agg.viewers == cohort_agg.viewers == N
        assert weighted_summary(baseline_agg) == weighted_summary(cohort_agg)

    def test_traces_pass_and_audience_is_recorded(self, runs):
        (baseline_tracer, _, _), (cohort_tracer, _, _, _) = runs
        TraceChecker(baseline_tracer.records).assert_ok()
        TraceChecker(cohort_tracer.records).assert_ok()
        # the whole audience rode one session, and the trace says so
        opens = [
            e for e in cohort_tracer.events("session.open")
            if e["attrs"].get("multiplicity")
        ]
        assert len(opens) == 1
        assert opens[0]["attrs"]["multiplicity"] == N

    def test_edge_egress_shrinks_by_exactly_n(self, runs):
        (_, baseline_relay, _), (_, cohort_relay, _, _) = runs
        assert baseline_relay.bytes_served == N * cohort_relay.bytes_served


class TestSplitSeekEquivalence:
    """Mid-run individuation: member 5 seeks at t=14. Baseline seeks a
    real client in place; the cohort splits a twin out with the same
    seek. Delivery and QoE must match exactly on both sides."""

    @pytest.fixture(scope="class")
    def runs(self):
        asf = make_asf()
        baseline = run_baseline(asf, seek=True)
        cohort = run_cohort(asf, seek=True)
        return baseline, cohort

    def test_seeker_and_twin_byte_identical(self, runs):
        (_, _, players), (_, _, _, twins) = runs
        assert len(twins) == 1
        assert_reports_identical(
            players[SEEK_MEMBER].report(), twins[0].report(), timing=False
        )

    def test_nonseekers_match_the_delegate(self, runs):
        # timing=False: the seeker's replay stream re-merges into the
        # shared pacing group at a different phase in the two worlds
        # (immediate in-session seek vs quantum-deferred twin restart),
        # which re-times late trains without changing what is delivered
        (_, _, players), (_, _, delegate, _) = runs
        assert delegate.multiplicity == N - 1
        reference = delegate.report()
        for i, player in enumerate(players):
            if i != SEEK_MEMBER:
                assert_reports_identical(player.report(), reference,
                                         timing=False)

    def test_seek_changed_the_byte_count(self, runs):
        # guard against a vacuous pass: the forward seek must actually
        # have altered delivery relative to a straight-through watch
        (_, _, players), _ = runs
        straight = players[0].report().media_bytes
        sought = players[SEEK_MEMBER].report().media_bytes
        assert sought != straight

    def test_qoe_aggregates_identical(self, runs):
        (_, _, players), (_, _, delegate, twins) = runs
        baseline_agg = QoEAggregator()
        for player in players:
            baseline_agg.add(
                SessionQoE.from_report(player.report(), client=player.user)
            )
        cohort_agg = QoEAggregator()
        cohort_agg.add(
            SessionQoE.from_report(
                delegate.report(), client="cohort", multiplicity=N - 1
            )
        )
        cohort_agg.add(
            SessionQoE.from_report(twins[0].report(), client="member")
        )
        assert baseline_agg.viewers == cohort_agg.viewers == N
        assert weighted_summary(baseline_agg) == weighted_summary(cohort_agg)

    def test_traces_pass_checker(self, runs):
        (baseline_tracer, _, _), (cohort_tracer, _, _, _) = runs
        TraceChecker(baseline_tracer.records).assert_ok()
        TraceChecker(cohort_tracer.records).assert_ok()
        splits = cohort_tracer.events("playback.split")
        assert len(splits) == 1
        assert splits[0]["attrs"]["remaining"] == N - 1
