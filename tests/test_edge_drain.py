"""Graceful drains with warm session hand-off.

A *planned* edge removal must not look like a crash. ``EdgeRelay.drain``
stops admitting, then transfers each live session's delivery cursor to
its ring successor over the successor's ``/control/adopt`` route; the
client is re-pointed through its ``relocate`` callback with the jitter
buffer, clock, and playhead untouched:

* the happy path costs ~0 rebuffer and no seek/replay — versus the crash
  path's stall-watchdog timeout plus reconnect;
* a successor that refuses (or is dead) drops the session to the crash
  path instead of stranding it — the viewer still recovers, just paying
  the ordinary reconnect price;
* the whole protocol is visible to the tracer and audited by
  :class:`TraceChecker`'s drain invariants: every drained session gets
  exactly one outcome, hand-off targets are open sessions, QoS is never
  double-reserved across the pair.
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.net import FaultInjector, FaultPlan
from repro.obs import TraceChecker, Tracer
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    RecoveryConfig,
    build_edge_tier,
)

from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def make_tier(*, edges=2, tracer=None, seed=0, **tier_kwargs):
    reset_counters("edge_cache")
    net = VirtualNetwork()
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    origin.publish("lecture", make_asf())
    directory, relays = build_edge_tier(
        net, origin, [f"edge{i}" for i in range(edges)],
        pacing_quantum=0.5, seed=seed, tracer=tracer, **tier_kwargs,
    )
    for relay in relays:
        net.connect(relay.host, "student", bandwidth=2_000_000, delay=0.02)
        net.link(relay.host, "student").rng.seed(1000 + CHAOS_SEED)
    return net, origin, directory, relays


def start_player(net, directory, tracer=None):
    player = MediaPlayer(
        net, "student", directory=directory,
        recovery=RecoveryConfig(), tracer=tracer,
    )
    player.connect(directory.url_for("student", "lecture"))
    player.play()
    return player


def finish(net, player, horizon=90.0):
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


def teardown_audit(origin, relays, tracer):
    for relay in relays:
        if not relay.crashed and not relay.draining:
            relay.shutdown()
    assert len(origin.sessions) == 0
    for server in (origin, *relays):
        server.sessions.assert_consistent()
        server.assert_no_qos_leaks()
    return TraceChecker(tracer.records).assert_ok()


class TestWarmHandoff:
    def test_drain_hands_off_with_zero_rebuffer(self):
        tracer = Tracer("drain")
        net, origin, directory, relays = make_tier(tracer=tracer)
        home = directory.place("student|lecture")
        home_relay = next(r for r in relays if r.name == home)
        survivor = next(r for r in relays if r.name != home)

        player = start_player(net, directory, tracer)
        stats = {}
        net.simulator.schedule_at(
            8.0, lambda: stats.update(home_relay.drain(directory))
        )
        report = finish(net, player)

        # exactly one warm transfer, zero crash-path activity
        assert stats == {"handoffs": 1, "fallbacks": 0}
        assert report.recovery.get("handoffs", 0) == 1
        assert report.recovery.get("stalls_detected", 0) == 0
        assert report.recovery.get("reconnect_attempts", 0) == 0
        # the hand-off cost the viewer essentially nothing
        assert report.rebuffer_count == 0
        assert report.rebuffer_time == pytest.approx(0.0, abs=0.05)
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        # no gap, no overlap: every rendered unit exactly once, slides in
        # order across the transfer boundary
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired == [f"s{i}" for i in range(SLIDES)]
        keys = [
            (r.unit.stream_number, r.unit.object_number)
            for r in report.rendered
        ]
        assert len(keys) == len(set(keys))
        # the successor actually served the tail
        assert survivor.sessions.total_created >= 1

        checker = teardown_audit(origin, relays, tracer)
        assert checker.handoffs_seen == 1
        assert checker.fallbacks_seen == 0
        assert tracer.events("drain.begin") and tracer.events("drain.end")
        assert tracer.events("playback.handoff")
        # admission stayed off for the drained edge
        assert not directory.is_available(home)

    def test_drain_under_qos_never_double_reserves(self):
        tracer = Tracer("drain-qos")
        net, origin, directory, relays = make_tier(
            tracer=tracer, qos_enabled=True
        )
        home = directory.place("student|lecture")
        home_relay = next(r for r in relays if r.name == home)

        player = start_player(net, directory, tracer)
        net.simulator.schedule_at(8.0, lambda: home_relay.drain(directory))
        report = finish(net, player)

        assert report.recovery.get("handoffs", 0) == 1
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        # the old and new sessions held *distinct* reservations, each
        # released exactly once — TraceChecker's QoS hygiene plus the
        # drain invariants prove no double-reservation window existed
        checker = teardown_audit(origin, relays, tracer)
        assert checker.reservations_made == checker.reservations_released
        assert checker.reservations_made >= 2

    def test_drain_is_idempotent_and_refuses_crashed(self):
        from repro.streaming import SessionError

        net, origin, directory, relays = make_tier()
        stats = relays[0].drain(directory)
        assert stats == {"handoffs": 0, "fallbacks": 0}
        # second drain is a no-op, not a double teardown
        assert relays[0].drain(directory) == {"handoffs": 0, "fallbacks": 0}
        relays[1].crash()
        with pytest.raises(SessionError):
            relays[1].drain(directory)


class TestDrainFallback:
    def test_no_successor_falls_back_to_crash_path(self):
        tracer = Tracer("drain-fallback")
        net, origin, directory, relays = make_tier(
            tracer=tracer, origin_fallback=True
        )
        home = directory.place("student|lecture")
        home_relay = next(r for r in relays if r.name == home)
        other = next(r for r in relays if r.name != home)
        # the only possible successor dies before the drain
        FaultInjector(net).register_server(other.name, other)
        injector = FaultInjector(net, {other.name: other})
        injector.apply(FaultPlan("kill-successor").edge_crash(other.name, at=4.0))

        player = start_player(net, directory, tracer)
        stats = {}
        net.simulator.schedule_at(
            8.0, lambda: stats.update(home_relay.drain(directory))
        )
        report = finish(net, player)

        # no viable successor: the session fell back to the crash path
        assert stats == {"handoffs": 0, "fallbacks": 1}
        assert report.recovery.get("handoffs", 0) == 0
        assert report.recovery.get("stalls_detected", 0) >= 1
        assert report.recovery.get("reconnects", 0) >= 1
        # the reconnect paid the crash price but playback still completed
        # end to end (placed onto the origin, the last resort)
        assert report.rebuffer_count >= 1
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        keys = [
            (r.unit.stream_number, r.unit.object_number)
            for r in report.rendered
        ]
        assert len(keys) == len(set(keys))

        checker = teardown_audit(origin, relays, tracer)
        assert checker.fallbacks_seen == 1
        assert checker.handoffs_seen == 0
        assert tracer.events("session.handoff_fallback")

    def test_successor_dying_mid_transfer_falls_back(self):
        tracer = Tracer("drain-midfail")
        net, origin, directory, relays = make_tier(
            edges=1, tracer=tracer, origin_fallback=True
        )
        (edge0,) = relays
        player = start_player(net, directory, tracer)
        # a phantom successor: registered in the ring, but nothing
        # answers at its address — the adopt POST itself fails, which is
        # exactly what a successor crashing mid-transfer looks like to
        # the draining edge
        directory.add_edge("ghost", url="http://ghost:8080")
        stats = {}

        def drain_and_remove():
            stats.update(edge0.drain(directory))
            # the phantom leaves the ring so the client's reconnect
            # resolves to the origin fallback, not the dead address
            directory.remove_edge("ghost")

        net.simulator.schedule_at(8.0, drain_and_remove)
        report = finish(net, player)

        assert stats == {"handoffs": 0, "fallbacks": 1}
        assert report.recovery.get("handoffs", 0) == 0
        assert report.recovery.get("stalls_detected", 0) >= 1
        assert report.recovery.get("reconnects", 0) >= 1
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)

        checker = teardown_audit(origin, relays, tracer)
        assert checker.fallbacks_seen == 1
        assert checker.handoffs_seen == 0


class TestDrainUpstreamHandoff:
    def test_successor_fills_from_draining_edge_not_the_origin(self):
        """A drain hands off its *upstream* role too: the draining edge
        keeps admitting replica opens while it refuses viewers, so the
        successor's adopt-triggered fill finds it as a warm sibling and
        the origin never pays a second data egress for the hand-off."""
        tracer = Tracer("drain-upstream")
        net, origin, directory, relays = make_tier(
            tracer=tracer, sibling_fills=True
        )
        home = directory.place("student|lecture")
        home_relay = next(r for r in relays if r.name == home)
        survivor = next(r for r in relays if r.name != home)

        player = start_player(net, directory, tracer)
        stats = {}
        net.simulator.schedule_at(
            8.0, lambda: stats.update(home_relay.drain(directory))
        )
        report = finish(net, player)

        assert stats == {"handoffs": 1, "fallbacks": 0}
        assert report.rebuffer_count == 0
        # the successor's fill was served by the draining edge itself —
        # a warm replica hop, not a cold re-pull from the origin
        assert get_counters("edge_cache")["sibling_fills"] == 1
        assert origin.sessions.total_created == 1
        # the successor served the tail (its point released on finish)
        assert survivor.sessions.total_created >= 1

        checker = teardown_audit(origin, relays, tracer)
        assert checker.handoffs_seen == 1
        # the draining edge's own origin replica settled once the
        # successor's fill session released it
        assert len(origin.sessions) == 0
