"""Unit tests for the discrete-event engine and links (repro.net)."""

import pytest

from repro.net.engine import PeriodicTask, SimulationError, Simulator
from repro.net.link import DuplexLink, Link


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_priority_then_insertion(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("late"), priority=1)
        sim.schedule(1.0, lambda: log.append("first"), priority=-1)
        sim.schedule(1.0, lambda: log.append("second"), priority=-1)
        sim.run()
        assert log == ["first", "second", "late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run_until(3.0)
        assert log == [1]
        assert sim.now == 3.0
        assert sim.pending() == 1

    def test_cancel(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        sim.cancel(handle)
        sim.run()
        assert log == []
        assert sim.events_processed == 0

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(1.0, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "nested"]
        assert sim.now == 2.0

    def test_livelock_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(h)
        assert sim.peek_time() == 2.0

    def test_pending_counts_live_events_only(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending() == 5
        sim.cancel(handles[0])
        assert sim.pending() == 4
        sim.run_until(2.5)  # runs events at t=2 (t=1 was cancelled)
        assert sim.pending() == 3

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(handle)  # must not mark the dead seq cancelled forever
        assert sim.pending() == 0
        assert not sim._cancelled

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.cancel(handle)
        sim.cancel(handle)
        assert sim.pending() == 0
        assert len(sim._cancelled) == 1


class TestScheduleBatch:
    def test_batch_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.5, lambda: log.append("solo"))
        sim.schedule_batch(
            (float(d), lambda d=d: log.append(d)) for d in (3, 1, 2)
        )
        sim.run()
        assert log == [1, 2, "solo", 3]

    def test_large_batch_heapify_path(self):
        # > 8 entries against an empty queue takes the heapify branch
        sim = Simulator()
        log = []
        sim.schedule_batch(
            (float(100 - i), lambda i=i: log.append(i)) for i in range(50)
        )
        sim.run()
        assert log == list(reversed(range(50)))

    def test_batch_handles_cancel(self):
        sim = Simulator()
        log = []
        handles = sim.schedule_batch(
            (float(i + 1), lambda i=i: log.append(i)) for i in range(20)
        )
        for handle in handles[::2]:
            sim.cancel(handle)
        sim.run()
        assert log == list(range(1, 20, 2))

    def test_empty_batch(self):
        sim = Simulator()
        assert sim.schedule_batch([]) == []
        assert sim.pending() == 0

    def test_batch_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_batch([(1.0, lambda: None), (-0.5, lambda: None)])

    def test_batch_ties_follow_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule_batch((1.0, lambda i=i: log.append(i)) for i in range(12))
        sim.run()
        assert log == list(range(12))


class TestHeapCompaction:
    def test_mass_cancellation_purges_heap(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        for handle in handles[:150]:
            sim.cancel(handle)
        # crossing the threshold rebuilt the heap at least once: the dead
        # entries do not all linger until popped
        assert len(sim._queue) < 200
        assert sim.pending() == 50
        sim.run()
        assert sim.events_processed == 50

    def test_small_cancellation_skips_compaction(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
        for handle in handles[:15]:
            sim.cancel(handle)
        # beneath the floor: dead entries stay until popped
        assert len(sim._queue) == 20
        sim.run()
        assert sim.events_processed == 5

    def test_compaction_preserves_order(self):
        sim = Simulator()
        log = []
        keep = []
        for i in range(300):
            handle = sim.schedule(float(i), lambda i=i: log.append(i))
            if i % 3 != 0:
                keep.append(i)
            else:
                sim.cancel(handle)
        sim.run()
        assert log == keep


class TestPeriodicTask:
    def test_ticks_at_interval(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: None)
        sim.run_until(5.5)
        assert task.ticks == 6  # t=0,1,2,3,4,5

    def test_stop(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: None)
        sim.run_until(2.5)
        task.stop()
        sim.run_until(10.0)
        assert task.ticks == 3

    def test_start_delay(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: None, start_delay=5.0)
        sim.run_until(4.9)
        assert task.ticks == 0
        sim.run_until(5.1)
        assert task.ticks == 1

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0, lambda: None)


class TestLink:
    def test_serialization_plus_propagation(self):
        sim = Simulator()
        link = Link(sim, bandwidth=8_000, delay=0.5)  # 1000 bytes/s
        arrivals = []
        link.transmit(1000, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(1.5)]  # 1s serialize + 0.5s prop

    def test_fifo_queueing(self):
        sim = Simulator()
        link = Link(sim, bandwidth=8_000, delay=0.0)
        arrivals = []
        link.transmit(1000, lambda: arrivals.append(("a", sim.now)))
        link.transmit(1000, lambda: arrivals.append(("b", sim.now)))
        sim.run()
        assert arrivals == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_queue_limit_tail_drop(self):
        sim = Simulator()
        link = Link(sim, bandwidth=8_000, delay=0.0, queue_limit=2)
        drops = []
        ok1 = link.transmit(1000, lambda: None)
        ok2 = link.transmit(1000, lambda: None)
        ok3 = link.transmit(1000, lambda: None, on_drop=drops.append)
        assert (ok1, ok2, ok3) == (True, True, False)
        assert drops == ["queue"]
        assert link.stats.dropped_queue == 1

    def test_queue_drains(self):
        sim = Simulator()
        link = Link(sim, bandwidth=8_000, delay=0.0, queue_limit=2)
        link.transmit(1000, lambda: None)
        link.transmit(1000, lambda: None)
        sim.run_until(1.5)
        assert link.queue_depth == 1
        assert link.transmit(1000, lambda: None) is True

    def test_random_loss_reproducible(self):
        def run(seed):
            sim = Simulator()
            link = Link(sim, bandwidth=1e9, loss_rate=0.3, seed=seed)
            delivered = []
            for i in range(100):
                link.transmit(100, lambda i=i: delivered.append(i))
            sim.run()
            return delivered

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_loss_rate_statistics(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1e9, loss_rate=0.25, seed=1, queue_limit=4000)
        for _ in range(2000):
            link.transmit(100, lambda: None)
        sim.run()
        assert link.stats.loss_rate == pytest.approx(0.25, abs=0.03)

    def test_loss_callback_reason(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1e9, loss_rate=0.99, seed=3)
        reasons = []
        link.transmit(100, lambda: None, on_drop=reasons.append)
        sim.run()
        assert reasons == ["loss"]

    def test_jitter_varies_propagation(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1e9, delay=0.1, jitter=0.05, seed=2)
        arrivals = []
        for _ in range(20):
            link.transmit(10, lambda: arrivals.append(sim.now))
        sim.run()
        gaps = {round(a, 6) for a in arrivals}
        assert len(gaps) > 5  # spread, not constant

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Link(sim, bandwidth=0)
        with pytest.raises(SimulationError):
            Link(sim, loss_rate=1.0)
        with pytest.raises(SimulationError):
            Link(sim, queue_limit=0)
        link = Link(sim)
        with pytest.raises(SimulationError):
            link.transmit(0, lambda: None)

    def test_duplex_create(self):
        sim = Simulator()
        duplex = DuplexLink.create(sim, bandwidth=1e6, delay=0.01)
        assert duplex.forward.name.endswith("fwd")
        assert duplex.backward.name.endswith("bwd")
