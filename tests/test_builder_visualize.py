"""Unit tests for NetBuilder and DOT/ASCII visualization."""

import pytest

from repro.core.builder import NetBuilder
from repro.core.intervals import Interval
from repro.core.ocpn import MediaLeaf, compile_spec, sequence
from repro.core.petri import PetriNetError
from repro.core.scheduler import PresentationTimeline, TimelineEntry
from repro.core.visualize import net_to_dot, timed_net_to_dot, timeline_to_ascii


class TestNetBuilder:
    def test_chain(self):
        net = (
            NetBuilder()
            .place("p", tokens=1)
            .places("q", "r")
            .transitions("t1", "t2")
            .chain("p", "t1", "q", "t2", "r")
            .build()
        )
        assert net.run() == ["t1", "t2"]

    def test_marking_override(self):
        net = (
            NetBuilder()
            .places("a", "b")
            .transition("t")
            .chain("a", "t", "b")
            .marking(a=3)
            .build()
        )
        assert net.marking["a"] == 3

    def test_build_validates(self):
        builder = NetBuilder().place("p").transition("lonely")
        with pytest.raises(PetriNetError):
            builder.build()

    def test_weighted_and_inhibitor_arcs(self):
        net = (
            NetBuilder()
            .place("p", tokens=2)
            .place("stop", tokens=1)
            .place("q")
            .transition("t")
            .arc("p", "t", weight=2)
            .arc("t", "q")
            .arc("stop", "t", inhibitor=True)
            .build()
        )
        assert not net.is_enabled("t")


class TestDotExport:
    def test_contains_all_nodes_and_arcs(self):
        net = (
            NetBuilder("demo")
            .place("p", tokens=1)
            .place("q")
            .transition("t")
            .chain("p", "t", "q")
            .build()
        )
        dot = net_to_dot(net)
        assert dot.startswith('digraph "demo"')
        assert '"p" [shape=circle' in dot
        assert '"t" [shape=box' in dot
        assert '"p" -> "t";' in dot
        assert '"t" -> "q";' in dot

    def test_marking_rendered(self):
        net = NetBuilder().place("p", tokens=2).transition("t").arc("p", "t").build()
        assert "● x2" in net_to_dot(net)

    def test_weights_labelled(self):
        net = (
            NetBuilder()
            .place("p", tokens=2)
            .place("q")
            .transition("t")
            .arc("p", "t", weight=2)
            .arc("t", "q")
            .build()
        )
        assert 'label="2"' in net_to_dot(net)

    def test_inhibitor_arrowhead(self):
        net = (
            NetBuilder()
            .place("p", tokens=1)
            .place("i")
            .place("q")
            .transition("t")
            .arc("p", "t")
            .arc("t", "q")
            .arc("i", "t", inhibitor=True)
            .build()
        )
        assert "arrowhead=odot" in net_to_dot(net)

    def test_durations_annotated(self):
        compiled = compile_spec(sequence(MediaLeaf("a", 2.5), MediaLeaf("b", 3)))
        dot = timed_net_to_dot(compiled.timed_net)
        assert "τ=2.5" in dot

    def test_quote_escaping(self):
        net = NetBuilder('x"y').place("p", tokens=1).transition("t").arc("p", "t").build()
        assert '\\"' in net_to_dot(net)


class TestAsciiTimeline:
    def test_rows_and_scale(self):
        t = PresentationTimeline(
            [
                TimelineEntry("video", Interval(0, 10)),
                TimelineEntry("slide", Interval(5, 10)),
            ]
        )
        art = timeline_to_ascii(t, width=20)
        lines = art.splitlines()
        assert lines[0].startswith("slide")
        assert lines[1].startswith("video")
        assert "10.0s" in lines[-1]
        # video bar longer than slide bar
        assert lines[1].count("█") > lines[0].count("█")

    def test_empty_timeline(self):
        art = timeline_to_ascii(PresentationTimeline())
        assert "1.0s" in art
