"""Region parent failover: re-parent, migrate live feeds, plug leaks.

PR 8's relay tree routes everything regional through one parent relay —
a single point of failure per region. The failover contract under test:

* a parent crash is **detected** (heartbeat suspicion), never declared:
  within the detection bound the directory promotes the healthiest
  surviving leaf to acting parent and every other leaf re-attaches its
  live feed to the new upstream — the locally published stream, and
  with it every viewer's clock and buffer, is untouched, and sequence
  holes from the detection gap heal through gap-NAK repair up the tree;
* an in-flight **fill** through the dead parent aborts at suspicion
  time (not after its 30 s timeout) and re-plans through the
  sibling → origin cascade — the viewer still gets byte-identical
  content;
* when **no leaf qualifies** as successor the region falls *flat*:
  the parent slot is cleared and leaves work straight against the
  origin (each origin attach is exempted from the one-feed-per-region
  invariant from that point on);
* every :class:`BackboneBudget` reservation on the dead parent's links
  is settled at suspicion time — ``assert_no_leaks`` holds immediately
  after detection, not just at teardown (forced release + tolerated
  late release by the aborted holder);
* the crashed parent's *own* sessions at the origin are settled
  (upstream direction, PR 7) **and** what surviving leaves held at the
  parent is settled too (downstream direction, this PR);
* the whole sequence is audited end to end by :class:`TraceChecker`'s
  new failover invariants (``region.failover`` discipline, no feed
  survives its parent's crash unmigrated, no reservation outlives its
  holder) for seeds 0–2, plus a 100k-viewer harness run with a
  scripted parent kill (``CHAOS_SCALE_VIEWERS`` shrinks it for CI).
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.control import HeartbeatMonitor
from repro.load import LoadConfig, WorkloadSpec, lecture_catalog, run_workload
from repro.lod import LiveCaptureSession
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.net import FaultInjector, FaultPlan
from repro.obs import TraceChecker, Tracer
from repro.streaming import (
    BackboneBudget,
    BudgetError,
    MediaServer,
    build_relay_tree,
)
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
VIEWERS = int(os.environ.get("CHAOS_SCALE_VIEWERS", "100000"))
PROFILE = get_profile("dsl-256k")
DURATION = 8.0

INTERVAL = 0.5
MISS = 3
#: suspicion lands at most one threshold + one sweep after the last
#: pre-crash beat (the bound test_control_plane proves for detection);
#: failover runs synchronously inside the suspicion sweep
DETECTION_BOUND = MISS * INTERVAL + 2 * INTERVAL + 0.01


def make_asf(file_id="lec", duration=DURATION):
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id=file_id,
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
        images=[(ImageObject("s0", duration, width=320, height=240), 0.0)],
        commands=slide_commands([("s0", 0.0)]),
    )


def make_tree(
    *, seed=CHAOS_SEED, tracer=None, budget=None, fill_burst=64.0,
    live=False, monitor=True,
):
    """One region, two leaves, a parent, optionally a live capture and
    an armed heartbeat monitor — the smallest failover-capable tree."""
    reset_counters("edge_cache")
    net = VirtualNetwork()
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    capture = None
    if live:
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        origin.publish("live", capture.stream)
    else:
        origin.publish("lecture", make_asf())
    directory, parents, leaves = build_relay_tree(
        net, origin, {"r0": ["e0", "e1"]},
        pacing_quantum=0.5, seed=seed, fill_burst=fill_burst,
        backbone_budget=budget, tracer=tracer,
    )
    for leaf in leaves:
        net.connect(leaf.host, "viewer", bandwidth=2_000_000, delay=0.02)
    mon = None
    if monitor:
        mon = HeartbeatMonitor(
            net, directory,
            interval=INTERVAL, miss_threshold=MISS,
            seed=seed, tracer=tracer,
        )
        mon.watch_directory()
        mon.start()
    return net, origin, directory, parents, leaves, mon, capture


def blob_of(packets):
    return b"".join(p.pack() for p in packets)


class TestLiveFeedMigration:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_parent_crash_migrates_live_feeds_within_detection_bound(
        self, seed
    ):
        tracer = Tracer("failover-live")
        budget = BackboneBudget(tracer=tracer)
        net, origin, directory, parents, leaves, monitor, capture = \
            make_tree(seed=seed, tracer=tracer, budget=budget, live=True)
        parent = parents["r0"]

        sinks, sessions = {}, {}
        for leaf in leaves:
            sink = []
            sessions[leaf.name] = leaf.open_session(
                "live", "viewer", sink.append
            )
            leaf.play(sessions[leaf.name].session_id)
            sinks[leaf.name] = sink
        net.simulator.run_until(3.0)

        crash_at = net.simulator.now
        parent.crash()
        net.simulator.run_until(crash_at + DETECTION_BOUND + 0.5)

        # one failover, promoting a leaf; the slot answers the successor
        assert len(monitor.failovers) == 1
        failover = monitor.failovers[0]
        assert failover["mode"] == "promote"
        successor = failover["successor"]
        assert directory.parent_name("r0") == successor
        promoted = next(l for l in leaves if l.name == successor)
        assert promoted.is_parent
        # within the bound: detection + promotion + every feed migrated
        assert failover["time"] - crash_at <= DETECTION_BOUND
        # the promoted leaf re-enters from the origin, its sibling from
        # the promoted leaf — both feeds moved, none dropped
        assert failover["feeds_migrated"] == 2
        assert failover["feeds_dropped"] == 0
        counters = get_counters("edge_cache")
        assert counters["live_feeds_migrated"] == 2
        # the dead parent's links are settled *at detection time*, not
        # teardown; what remains reserved belongs to the migrated feeds
        for leaf in leaves:
            assert budget.reserved((leaf.host, parent.host)) == 0.0
        assert budget.reserved((parent.host, origin.host)) == 0.0

        net.simulator.run_until(net.simulator.now + 1.5)
        capture.finish()
        monitor.stop()
        net.simulator.run(max_events=5_000_000)

        # every viewer saw the whole broadcast exactly once: the local
        # stream's clock never moved, catch-up covered the gap, and
        # gap-NAK repair healed what history did not
        sent = {p.sequence for p in capture.stream.packets}
        for name, got_packets in sinks.items():
            got = [p.sequence for p in got_packets]
            assert len(got) == len(set(got)), f"{name} saw duplicates"
            assert set(got) == sent, f"{name} missed live packets"

        for leaf in leaves:
            leaf.close_session(sessions[leaf.name].session_id)
        net.simulator.run(max_events=1_000_000)
        for leaf in leaves:
            if not leaf.is_parent:
                leaf.shutdown()
        promoted.shutdown()
        net.simulator.run(max_events=1_000_000)
        budget.assert_no_leaks()
        checker = TraceChecker(tracer.records).assert_ok()
        assert checker.failovers_seen == 1
        assert checker.feeds_migrated == 2
        assert len(origin.sessions) == 0


class TestFillReplanOnParentLoss:
    def test_fill_through_silent_parent_aborts_and_replans_via_origin(self):
        budget = BackboneBudget()
        # A *crashed* source fails fast (its sessions 503) and the fill
        # cascade recovers on its own.  The monitor earns its keep when
        # the parent goes **silent** — a partition black-holes both the
        # data path and the beacons, the fill stalls mid-transfer, and
        # only the suspicion sweep can abort it before the 30 s fill
        # timeout.  fill_burst=2 stretches the burst so the partition
        # reliably lands mid-transfer.
        net, origin, directory, parents, leaves, monitor, _ = make_tree(
            budget=budget, fill_burst=2.0,
        )
        parent = parents["r0"]
        e0, e1 = leaves
        net.simulator.run_until(1.0)  # monitor learns the healthy cadence
        # warm the parent through the cascade, then evict the sibling
        # copy so the parent is e1's only non-origin source
        e0.prefetch("lecture")
        e0.unpublish("lecture")
        directory.forget_fill("e0", "lecture")

        injector = FaultInjector(net)
        plan = FaultPlan("silent-parent")
        # mid-burst: the open/play round-trips are done, packets flowing
        plan.link_down(e1.host, parent.host, at=net.simulator.now + 0.15)
        plan.link_down(parent.host, monitor.host, at=net.simulator.now + 0.15)
        injector.apply(plan)
        start = net.simulator.now
        e1.prefetch("lecture")
        elapsed = net.simulator.now - start

        # the fill landed byte-identical despite the stalled first try
        assert "lecture" in e1.points
        assert blob_of(e1.points["lecture"].content.packets) == \
            blob_of(origin.points["lecture"].content.packets)
        counters = get_counters("edge_cache")
        # the parent attempt was aborted by the monitor at suspicion
        # time, not by the 30 s fill timeout, and re-planned via origin
        assert counters["fill_upstream_crashed"] >= 1
        assert counters["origin_fills"] == 2  # parent warm-up + re-plan
        assert counters["dead_upstream_closes_skipped"] >= 1
        assert elapsed < DETECTION_BOUND + 2.0
        assert monitor.failovers[0]["fills_aborted"] == 1
        assert monitor.counters.get("failovers", 0) == 1
        budget.assert_no_leaks()

        monitor.stop()
        for leaf in leaves:
            if not leaf.crashed:
                leaf.shutdown()
        # the old parent is alive (merely partitioned) and demoted; its
        # own shutdown settles whatever it still holds at the origin
        parent.shutdown()
        net.simulator.run(max_events=1_000_000)
        assert len(origin.sessions) == 0


class TestFallFlat:
    def test_no_eligible_successor_falls_region_flat_to_origin(self):
        tracer = Tracer("failover-flat")
        budget = BackboneBudget(tracer=tracer)
        net, origin, directory, parents, leaves, monitor, capture = \
            make_tree(tracer=tracer, budget=budget, live=True)
        parent = parents["r0"]

        sinks, sessions = {}, {}
        for leaf in leaves:
            sink = []
            sessions[leaf.name] = leaf.open_session(
                "live", "viewer", sink.append
            )
            leaf.play(sessions[leaf.name].session_id)
            sinks[leaf.name] = sink

        # partition every leaf's beacon path: both leaves stay alive and
        # streaming, but the monitor (correctly) counts neither as an
        # eligible successor when the parent dies
        injector = FaultInjector(net)
        plan = FaultPlan("isolate-beacons")
        for leaf in leaves:
            plan.link_down(leaf.host, monitor.host, at=0.5)
        injector.apply(plan)
        net.simulator.run_until(4.0)
        assert all(monitor.is_suspected(l.name) for l in leaves)

        crash_at = net.simulator.now
        parent.crash()
        net.simulator.run_until(crash_at + DETECTION_BOUND + 0.5)

        assert len(monitor.failovers) == 1
        failover = monitor.failovers[0]
        assert failover["mode"] == "flat"
        assert failover["successor"] is None
        assert directory.parent_name("r0") is None
        assert not any(l.is_parent for l in leaves)
        # both (alive, merely unreachable-to-the-monitor) leaves took
        # their feeds straight to the origin
        assert failover["feeds_migrated"] == 2
        for leaf in leaves:
            assert budget.reserved((leaf.host, parent.host)) == 0.0
        assert budget.reserved((parent.host, origin.host)) == 0.0

        net.simulator.run_until(net.simulator.now + 1.5)
        capture.finish()
        monitor.stop()
        net.simulator.run(max_events=5_000_000)
        sent = {p.sequence for p in capture.stream.packets}
        for name, got_packets in sinks.items():
            got = [p.sequence for p in got_packets]
            assert len(got) == len(set(got)), f"{name} saw duplicates"
            assert set(got) == sent, f"{name} missed live packets"

        for leaf in leaves:
            leaf.close_session(sessions[leaf.name].session_id)
        for leaf in leaves:
            leaf.shutdown()
        net.simulator.run(max_events=1_000_000)
        budget.assert_no_leaks()
        # two origin-entering feeds in one region would violate the tree
        # invariant — the flat-region exemption makes the audit pass
        checker = TraceChecker(tracer.records).assert_ok()
        assert checker.failovers_seen == 1
        assert len(origin.sessions) == 0


class TestBudgetForcedRelease:
    def test_force_release_host_settles_only_that_hosts_links(self):
        budget = BackboneBudget()
        doomed_a = budget.reserve(("e0", "r0-parent"), 100.0, owner="e0:live")
        doomed_b = budget.reserve(("r0-parent", "origin"), 200.0, owner="p")
        kept = budget.reserve(("e1", "origin"), 300.0, owner="e1:vod")

        released = budget.force_release_host("r0-parent")
        assert sorted(released) == sorted([doomed_a, doomed_b])
        assert budget.counters["forced_releases"] == 2
        assert budget.reserved(("e0", "r0-parent")) == 0.0
        assert budget.reserved(("e1", "origin")) == 300.0

        # the holder's own (late) release of a force-settled rid is a
        # tolerated, counted no-op — crash teardown stays idempotent
        budget.release(doomed_a)
        assert budget.counters["late_releases"] == 1
        # but only once: a second release is the usual misuse error
        with pytest.raises(BudgetError):
            budget.release(doomed_a)
        budget.release(kept)
        budget.assert_no_leaks()

    def test_no_leak_after_scripted_parent_crash_mid_live_feed(self):
        budget = BackboneBudget()
        net, origin, directory, parents, leaves, monitor, capture = \
            make_tree(budget=budget, live=True)
        sessions = [
            leaf.open_session("live", "viewer", lambda p: None)
            for leaf in leaves
        ]
        for leaf, session in zip(leaves, sessions):
            leaf.play(session.session_id)
        net.simulator.run_until(2.0)
        # live reservations are held for the feed lifetime: leaf→parent
        # and parent→origin links are charged right now
        assert len(budget.active()) == 3

        parent = parents["r0"]
        parent.crash()
        net.simulator.run_until(2.0 + DETECTION_BOUND + 0.5)
        # the regression: before forced release the dead parent's link
        # reservations leaked until a restart that may never come; now
        # suspicion settles every one of them
        for leaf in leaves:
            assert budget.reserved((leaf.host, parent.host)) == 0.0
        assert budget.reserved((parent.host, origin.host)) == 0.0

        monitor.stop()
        capture.finish()
        net.simulator.run(max_events=5_000_000)
        for leaf in leaves:
            leaf.shutdown()
        net.simulator.run(max_events=1_000_000)
        budget.assert_no_leaks()


class TestDownstreamSettlement:
    def test_leaf_refs_at_dead_parent_are_settled_at_suspicion(self):
        net, origin, directory, parents, leaves, monitor, _ = make_tree()
        parent = parents["r0"]
        e0, e1 = leaves
        e0.prefetch("lecture")  # warms the parent, fills e0 through it
        assert "lecture" in e0._upstream  # replica ref held at a source
        held_at_parent = [
            point for point, ref in e0._upstream.items()
            if ref.host == parent.host
        ]
        net.simulator.run_until(1.0)

        parent.crash()
        net.simulator.run_until(1.0 + DETECTION_BOUND + 0.5)

        # the downstream direction: whatever e0 held *at* the parent is
        # settled the moment suspicion fires — no lingering dead refs
        for point in held_at_parent:
            assert point not in e0._upstream
        if held_at_parent:
            assert monitor.counters.get("downstream_settled", 0) >= 1
        # the cached copy keeps serving locally
        assert "lecture" in e0.points

        monitor.stop()
        for leaf in leaves:
            leaf.shutdown()
        net.simulator.run(max_events=1_000_000)
        assert len(origin.sessions) == 0


class TestDownParentAdmission:
    def test_down_parent_is_no_fill_source_and_no_upstream(self):
        net, origin, directory, parents, leaves, _, _ = make_tree(
            monitor=False
        )
        parent_name = directory.parent_name("r0")
        e0, e1 = leaves
        e0.prefetch("lecture")  # parent now holds the run too
        directory.mark_down(parent_name)

        # a down parent answers no holder query and is nobody's upstream
        assert parent_name not in directory.fill_sources("e1", "lecture")
        assert e1._current_parent_url() is None
        plan = e1._data_sources(
            "lecture", __import__(
                "repro.streaming.edge", fromlist=["FillToken"]
            ).FillToken(("e1",), 3),
        )
        assert all(kind != "parent" for kind, _ in plan)
        # ...and the fill still lands (sibling first, origin as backstop)
        e1.prefetch("lecture")
        assert "lecture" in e1.points

        directory.mark_up(parent_name)
        for leaf in leaves:
            leaf.shutdown()
        parents["r0"].shutdown()
        net.simulator.run(max_events=1_000_000)

    def test_relays_consumers_survive_parent_removal(self):
        net, origin, directory, parents, leaves, monitor, _ = make_tree()
        parent_name = directory.parent_name("r0")
        directory.remove_edge(parent_name)
        assert directory.parent_name("r0") is None

        # the fault injector re-registers from relays() without KeyError
        injector = FaultInjector(net)
        injector.register_directory(directory)
        # the monitor still watches the removed relay; a suspicion (or a
        # late rejoin beat) must not explode on the missing entry
        parents["r0"].crash()
        net.simulator.run_until(DETECTION_BOUND + 1.0)
        assert monitor.is_suspected(parent_name)

        monitor.stop()
        for leaf in leaves:
            leaf.shutdown()
        net.simulator.run(max_events=1_000_000)


class TestHarnessParentKill:
    def test_100k_live_flash_crowd_survives_parent_kill(self):
        tracer = Tracer("failover-scale")
        budget = BackboneBudget(tracer=tracer)
        result = run_workload(
            WorkloadSpec(
                viewers=VIEWERS,
                lectures=lecture_catalog(1, 12.0, live_fraction=1.0),
                seed=CHAOS_SEED,
                flash_fraction=1.0,
                flash_width=2.0,
            ),
            mode="cohort",
            config=LoadConfig(
                edges=8,
                regions=2,
                live_capture=True,
                backbone_budget=budget,
                heartbeat_monitor=True,
                parent_kill_at=4.0,
                parent_kill_region="r0",
                tracer=tracer,
                teardown=True,
            ),
        )
        assert result.viewers == VIEWERS
        # exactly one failover, promoting a leaf of the killed region
        failovers = result.control["failovers"]
        assert len(failovers) == 1
        assert failovers[0]["region"] == "r0"
        assert failovers[0]["mode"] == "promote"
        assert failovers[0]["feeds_dropped"] == 0
        kill = result.control["parent_kill"]
        assert failovers[0]["time"] - kill["time"] <= DETECTION_BOUND
        # every live leaf of r0 migrated (3 leaves + the promoted one)
        assert failovers[0]["feeds_migrated"] == 4
        # zero leaks the moment the run ends, full audit passes
        budget.assert_no_leaks()
        checker = TraceChecker(tracer.records).assert_ok()
        assert checker.failovers_seen == 1
        assert checker.feeds_migrated == 4
        assert checker.sessions_opened == checker.sessions_closed
        # origin live egress: one feed per region, plus the promoted
        # leaf's re-entry after the kill
        assert result.control["origin"]["sessions_created"] == 3
