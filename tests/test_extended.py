"""Unit tests for the extended timed Petri net model (repro.core.extended)."""

import pytest

from repro.core.analysis import p_invariants, reachability_graph
from repro.core.builder import PresentationBuilder
from repro.core.extended import (
    DistributedCoordinator,
    ExtendedPresentation,
    FloorControl,
    InteractivePlayer,
    Segment,
    SiteLink,
    build_control_net,
    build_floor_net,
)
from repro.core.ocpn import MediaLeaf, SpecError, parallel
from repro.core.petri import NotEnabledError


def lecture(*durations):
    return (
        ExtendedPresentation(
            [
                Segment(f"seg{i}", parallel(MediaLeaf(f"v{i}", d), MediaLeaf(f"img{i}", d)))
                for i, d in enumerate(durations)
            ]
        )
    )


class TestControlNet:
    def test_single_state_token_invariant(self):
        net = build_control_net()
        invs = p_invariants(net)
        assert {"idle": 1, "playing": 1, "paused": 1, "stopped": 1} in invs

    def test_exactly_one_state_in_every_reachable_marking(self):
        net = build_control_net()
        graph = reachability_graph(net)
        for marking in graph.markings:
            states = sum(marking[p] for p in ("idle", "playing", "paused", "stopped"))
            assert states == 1

    def test_pause_only_while_playing(self):
        net = build_control_net()
        assert not net.is_enabled("t_pause")
        net.fire("t_play")
        assert net.is_enabled("t_pause")

    def test_stop_absorbing(self):
        net = build_control_net()
        net.fire_sequence(["t_play", "t_stop"])
        assert net.enabled() == []


class TestExtendedPresentation:
    def test_requires_segments(self):
        with pytest.raises(SpecError):
            ExtendedPresentation([])

    def test_unique_segment_names(self):
        seg = Segment("s", MediaLeaf("a", 1))
        seg2 = Segment("s", MediaLeaf("b", 1))
        with pytest.raises(SpecError):
            ExtendedPresentation([seg, seg2])

    def test_boundaries(self):
        p = lecture(10, 8, 12)
        assert p.boundaries == [0.0, 10.0, 18.0, 30.0]
        assert p.duration == 30.0

    def test_segment_index_at(self):
        p = lecture(10, 8, 12)
        assert p.segment_index_at(0) == 0
        assert p.segment_index_at(9.999) == 0
        assert p.segment_index_at(10) == 1
        assert p.segment_index_at(29.9) == 2
        assert p.segment_index_at(99) == 2  # clamped

    def test_segment_index_negative_rejected(self):
        with pytest.raises(ValueError):
            lecture(10).segment_index_at(-1)

    def test_active_leaves(self):
        p = lecture(10, 8)
        assert p.active_leaves(5) == ["img0", "v0"]
        assert p.active_leaves(12) == ["img1", "v1"]

    def test_verify_compiled_schedule(self):
        lecture(10, 8, 12).verify()


class TestInteractivePlayer:
    def test_initial_state_idle(self):
        player = InteractivePlayer(lecture(10, 8))
        assert player.state == "idle"
        assert player.active_media() == []

    def test_play_advances_position(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.advance(4)
        assert player.position == pytest.approx(4)
        assert player.state == "playing"

    def test_pause_freezes_position(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.advance(4)
        player.pause()
        player.advance(100)
        assert player.position == pytest.approx(4)
        assert player.state == "paused"

    def test_resume_continues(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.advance(4)
        player.pause()
        player.advance(5)
        player.resume()
        player.advance(2)
        assert player.position == pytest.approx(6)

    def test_double_pause_illegal(self):
        player = InteractivePlayer(lecture(10))
        player.play()
        player.pause()
        with pytest.raises(NotEnabledError):
            player.pause()

    def test_resume_without_pause_illegal(self):
        player = InteractivePlayer(lecture(10))
        player.play()
        with pytest.raises(NotEnabledError):
            player.resume()

    def test_interaction_before_play_illegal(self):
        player = InteractivePlayer(lecture(10))
        with pytest.raises(NotEnabledError):
            player.skip_forward()

    def test_speed_doubles_progress(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.set_speed(2.0)
        player.advance(4)
        assert player.position == pytest.approx(8)

    def test_invalid_speed(self):
        player = InteractivePlayer(lecture(10))
        player.play()
        with pytest.raises(ValueError):
            player.set_speed(0)

    def test_skip_forward_to_next_boundary(self):
        player = InteractivePlayer(lecture(10, 8, 12))
        player.play()
        player.advance(3)
        index = player.skip_forward()
        assert index == 1 and player.position == pytest.approx(10)

    def test_skip_forward_clamps_at_last_segment(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.advance(15)
        assert player.skip_forward() == 1
        assert player.position == pytest.approx(10)

    def test_skip_backward_mid_segment_restarts_it(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.advance(13)
        assert player.skip_backward() == 1
        assert player.position == pytest.approx(10)

    def test_skip_backward_at_boundary_goes_to_previous(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.advance(13)
        player.skip_backward()  # to 10.0
        player.skip_backward()  # to 0.0
        assert player.position == pytest.approx(0)

    def test_finishes_at_duration(self):
        player = InteractivePlayer(lecture(10, 8))
        player.play()
        player.advance(100)
        assert player.finished
        assert player.position == pytest.approx(18)

    def test_segment_events_emitted_in_order(self):
        player = InteractivePlayer(lecture(5, 5, 5))
        player.play()
        player.advance(14)
        names = [e.detail for e in player.segment_events()]
        assert names == ["seg0", "seg1", "seg2"]

    def test_segment_events_from_skip(self):
        player = InteractivePlayer(lecture(5, 5, 5))
        player.play()
        player.skip_forward()
        names = [e.detail for e in player.segment_events()]
        assert names == ["seg0", "seg1"]

    def test_negative_advance_rejected(self):
        player = InteractivePlayer(lecture(5))
        with pytest.raises(ValueError):
            player.advance(-1)

    def test_active_media_empty_when_paused(self):
        player = InteractivePlayer(lecture(5))
        player.play()
        player.advance(1)
        player.pause()
        assert player.active_media() == []

    def test_seek(self):
        player = InteractivePlayer(lecture(5, 5))
        player.play()
        player.seek(7)
        assert player.current_segment() == 1

    def test_seek_negative_rejected(self):
        player = InteractivePlayer(lecture(5))
        with pytest.raises(ValueError):
            player.seek(-2)


class TestFloorNet:
    def test_requires_users(self):
        with pytest.raises(ValueError):
            build_floor_net([])

    def test_duplicate_users_rejected(self):
        with pytest.raises(ValueError):
            build_floor_net(["a", "a"])

    def test_mutual_exclusion_invariant(self):
        from repro.core.analysis import is_p_invariant

        net = build_floor_net(["a", "b"])
        assert is_p_invariant(net, {"floor": 1, "holding_a": 1, "holding_b": 1})
        # ...and it is not trivially true of any weight vector
        assert not is_p_invariant(net, {"floor": 1, "holding_a": 2, "holding_b": 1})

    def test_no_two_holders_reachable(self):
        net = build_floor_net(["a", "b", "c"])
        graph = reachability_graph(net)
        for marking in graph.markings:
            holders = sum(marking[f"holding_{u}"] for u in "abc")
            assert holders <= 1


class TestFloorControl:
    def test_grant_immediate_when_free(self):
        fc = FloorControl(["a", "b"])
        assert fc.request("a") is True
        assert fc.holder == "a"

    def test_queue_fifo(self):
        fc = FloorControl(["a", "b", "c"])
        fc.request("a")
        fc.request("b")
        fc.request("c")
        fc.release("a")
        assert fc.holder == "b"
        fc.release("b")
        assert fc.holder == "c"

    def test_release_by_nonholder_illegal(self):
        fc = FloorControl(["a", "b"])
        fc.request("a")
        with pytest.raises(NotEnabledError):
            fc.release("b")

    def test_double_request_illegal(self):
        fc = FloorControl(["a"])
        fc.request("a")
        with pytest.raises(NotEnabledError):
            fc.request("a")

    def test_unknown_user(self):
        fc = FloorControl(["a"])
        with pytest.raises(KeyError):
            fc.request("zzz")

    def test_holding_times(self):
        fc = FloorControl(["a", "b"])
        fc.request("a")
        fc.advance(5)
        fc.request("b")
        fc.advance(3)
        fc.release("a")  # b granted at t=8
        fc.advance(2)
        times = fc.holding_times()
        assert times["a"] == pytest.approx(8)
        assert times["b"] == pytest.approx(2)

    def test_request_after_cycle_allowed(self):
        fc = FloorControl(["a"])
        fc.request("a")
        fc.release("a")
        assert fc.request("a") is True

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            FloorControl(["a"]).advance(-1)

    def test_drop_holder_frees_floor_and_grants_next_waiter(self):
        fc = FloorControl(["a", "b", "c"])
        fc.request("a")
        fc.request("b")
        assert fc.drop("a") == "b"
        assert fc.holder == "b"
        # the net invariant held throughout: exactly one token of authority
        marking = fc.net.marking
        assert marking["floor"] + sum(
            marking[f"holding_{u}"] for u in fc.users
        ) == 1

    def test_drop_holder_with_empty_queue_leaves_floor_free(self):
        fc = FloorControl(["a", "b"])
        fc.request("a")
        assert fc.drop("a") is None
        assert fc.holder is None
        assert fc.request("b") is True  # floor is genuinely reusable

    def test_drop_waiter_removes_from_queue(self):
        fc = FloorControl(["a", "b", "c"])
        fc.request("a")
        fc.request("b")
        fc.request("c")
        assert fc.drop("b") is None
        assert fc.holder == "a"
        fc.release("a")
        # b was dropped while waiting: the grant skips straight to c
        assert fc.holder == "c"

    def test_drop_bystander_is_a_noop(self):
        fc = FloorControl(["a", "b"])
        fc.request("a")
        assert fc.drop("b") is None
        assert fc.holder == "a"

    def test_drop_unknown_user_rejected(self):
        with pytest.raises(KeyError):
            FloorControl(["a"]).drop("zzz")


class TestDistributedCoordinator:
    def test_commands_replicate(self):
        # beacons disabled so the raw command latency is observable
        p = lecture(30)
        coord = DistributedCoordinator(p, {"s": SiteLink(latency=0.1)}, beacon_interval=None)
        coord.command("play")
        coord.advance(2)
        assert coord.sites["s"].state == "playing"
        # replica lags by roughly the link latency
        assert coord.sites["s"].position == pytest.approx(
            coord.master.position - 0.1, abs=0.05
        )

    def test_beacon_erases_command_lag(self):
        p = lecture(30)
        coord = DistributedCoordinator(p, {"s": SiteLink(latency=0.1)}, beacon_interval=0.5)
        coord.command("play")
        coord.advance(2)
        assert coord.sites["s"].position == pytest.approx(
            coord.master.position, abs=0.02
        )

    def test_beacons_bound_drift_under_skew(self):
        p = lecture(60, 60)
        link = SiteLink(latency=0.05, clock_skew=0.02)
        with_beacons = DistributedCoordinator(p, {"s": link}, beacon_interval=1.0)
        with_beacons.command("play")
        with_beacons.advance(60)
        without = DistributedCoordinator(p, {"s": link}, beacon_interval=None)
        without.command("play")
        without.advance(60)
        assert with_beacons.max_drift("s") < 0.2
        assert without.max_drift("s") > 0.5
        assert with_beacons.mean_drift("s") < without.mean_drift("s")

    def test_pause_resume_replicates(self):
        p = lecture(30)
        coord = DistributedCoordinator(p, {"s": SiteLink(latency=0.02)})
        coord.command("play")
        coord.advance(5)
        coord.command("pause")
        coord.advance(1)
        assert coord.sites["s"].state == "paused"
        coord.command("resume")
        coord.advance(1)
        assert coord.sites["s"].state == "playing"

    def test_skip_replicates(self):
        p = lecture(10, 10, 10)
        coord = DistributedCoordinator(p, {"s": SiteLink(latency=0.02)})
        coord.command("play")
        coord.advance(2)
        coord.command("skip_forward")
        coord.advance(0.5)
        assert coord.sites["s"].current_segment() == 1

    def test_unknown_command_rejected(self):
        p = lecture(10)
        coord = DistributedCoordinator(p, {"s": SiteLink()})
        with pytest.raises(ValueError):
            coord.command("teleport")

    def test_multiple_sites_independent_drift(self):
        p = lecture(60)
        coord = DistributedCoordinator(
            p,
            {"near": SiteLink(0.01), "far": SiteLink(0.5)},
            beacon_interval=None,
        )
        coord.command("play")
        coord.advance(10)
        assert coord.max_drift("far") > coord.max_drift("near")


class TestPresentationBuilder:
    def test_builds_segments_with_audio_and_annotations(self):
        p = (
            PresentationBuilder("demo")
            .slide(10, with_audio=True, annotations=[("tip", 2, 3)])
            .slide(5)
            .build()
        )
        assert p.duration == 15
        leaves = set(p.schedule)
        assert "audio_slide0" in leaves and "note_slide0_tip" in leaves
        note = p.schedule["note_slide0_tip"]
        assert note.start == pytest.approx(2) and note.end == pytest.approx(5)

    def test_annotation_must_fit(self):
        with pytest.raises(SpecError):
            PresentationBuilder().slide(5, annotations=[("x", 3, 4)])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SpecError):
            PresentationBuilder().slide(0)

    def test_custom_segment(self):
        p = (
            PresentationBuilder()
            .segment("intro", MediaLeaf("jingle", 3))
            .slide(5)
            .build()
        )
        assert p.segments[0].name == "intro"
        assert p.duration == 8
