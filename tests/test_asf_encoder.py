"""Unit tests for ASF encoder, file round-trip, live streams, DRM, dispatcher."""

import pytest

from repro.asf import (
    ASFEncoder,
    ASFError,
    ASFFile,
    ASFLiveStream,
    DRMError,
    EncoderConfig,
    LicenseServer,
    MediaUnit,
    ScriptCommand,
    ScriptCommandDispatcher,
    add_script_commands,
    scramble,
    slide_commands,
)
from repro.asf.header import FileProperties, HeaderObject, StreamProperties
from repro.media import AudioObject, ImageObject, VideoObject, get_profile

PROFILE = get_profile("dsl-256k")


def encode_lecture(**kwargs):
    config = EncoderConfig(profile=PROFILE, metadata={"title": "T"})
    encoder = ASFEncoder(config)
    defaults = dict(
        file_id="lec",
        video=VideoObject("talk", 10.0, width=320, height=240, fps=10),
        audio=AudioObject("voice", 10.0),
        images=[(ImageObject(f"s{i}", 5.0, width=320, height=240), i * 5.0)
                for i in range(2)],
        commands=slide_commands([("s0", 0.0), ("s1", 5.0)]),
    )
    defaults.update(kwargs)
    return encoder.encode_file(**defaults)


class TestEncodeFile:
    def test_stream_table(self):
        asf = encode_lecture()
        types = [s.stream_type for s in asf.header.streams]
        assert types == ["video", "audio", "image", "command"]

    def test_duration_from_sources(self):
        asf = encode_lecture()
        assert asf.duration == pytest.approx(10.0)

    def test_indexed_and_seekable(self):
        asf = encode_lecture()
        assert asf.index is not None
        assert asf.header.file_properties.is_seekable

    def test_commands_in_header(self):
        asf = encode_lecture()
        assert [c.parameter for c in asf.header.script_commands] == ["s0", "s1"]

    def test_nothing_to_encode_rejected(self):
        encoder = ASFEncoder(EncoderConfig(profile=PROFILE))
        with pytest.raises(ASFError):
            encoder.encode_file(file_id="x")

    def test_binary_round_trip(self):
        asf = encode_lecture()
        clone = ASFFile.unpack(asf.pack())
        assert clone.packet_count == asf.packet_count
        assert clone.header.metadata == {"title": "T"}
        assert clone.header.file_properties.duration_ms == 10_000
        assert len(clone.units()) == len(asf.units())

    def test_save_load(self, tmp_path):
        asf = encode_lecture()
        path = str(tmp_path / "lecture.asf")
        written = asf.save(path)
        assert written > 0
        clone = ASFFile.load(path)
        assert clone.packet_count == asf.packet_count

    def test_packets_from_midpoint_skips_early_data(self):
        asf = encode_lecture()
        tail = asf.packets_from(5.0)
        assert 0 < len(tail) < asf.packet_count

    def test_video_only(self):
        asf = encode_lecture(audio=None, images=(), commands=())
        assert [s.stream_type for s in asf.header.streams] == ["video"]

    def test_bitrates_match_profile(self):
        asf = encode_lecture()
        video = asf.header.streams_of_type("video")[0]
        assert video.bitrate == pytest.approx(PROFILE.video_bitrate, rel=0.05)

    def test_unpack_garbage_rejected(self):
        with pytest.raises(ASFError):
            ASFFile.unpack(b"MP4\x00garbage data here")


class TestPostIndexing:
    def test_add_script_commands_merges(self):
        asf = encode_lecture(commands=slide_commands([("s0", 0.0)]))
        updated = add_script_commands(
            asf, [ScriptCommand(7_000, "CAPTION", "hello")]
        )
        types = [c.type for c in updated.header.script_commands]
        assert types == ["SLIDE", "CAPTION"]
        # original untouched
        assert len(asf.header.script_commands) == 1

    def test_cannot_post_index_broadcast(self):
        header = HeaderObject(
            FileProperties("live", flags=1),
            streams=[StreamProperties(1, "video")],
        )
        live_file = ASFFile(header=header)
        with pytest.raises(ASFError):
            add_script_commands(live_file, [])


class TestLiveStream:
    def make_session(self):
        encoder = ASFEncoder(EncoderConfig(profile=PROFILE))
        return encoder.start_live(
            file_id="live1",
            streams=[StreamProperties(1, "video", codec="mpeg4", bitrate=200_000)],
            bitrate=200_000,
        )

    def test_requires_broadcast_flag(self):
        header = HeaderObject(FileProperties("x"), streams=[])
        with pytest.raises(ASFError):
            ASFLiveStream(header)

    def test_capture_produces_packets(self):
        session = self.make_session()
        units = [MediaUnit(1, i, i * 100, True, b"f" * 500) for i in range(10)]
        produced = session.capture(units)
        assert produced > 0
        assert session.stream.available == produced

    def test_packets_due_paced(self):
        session = self.make_session()
        units = [MediaUnit(1, i, i * 100, True, b"f" * 1000) for i in range(10)]
        session.capture(units)
        early = session.stream.packets_due(0.0)
        later = session.stream.packets_due(10.0)
        assert len(early) >= 1
        assert len(early) + len(later) == session.stream.available

    def test_sequence_numbers_continuous_across_captures(self):
        session = self.make_session()
        session.capture([MediaUnit(1, 0, 0, True, b"f" * 500)])
        session.capture([MediaUnit(1, 1, 100, True, b"f" * 500)])
        due = session.stream.packets_due(1e9)
        assert [p.sequence for p in due] == list(range(len(due)))

    def test_live_command_injection(self):
        session = self.make_session()
        session.send_command(ScriptCommand(0, "SLIDE", "s0"))
        assert session.stream.available == 1

    def test_closed_stream_rejects_append(self):
        session = self.make_session()
        session.finish()
        with pytest.raises(ASFError):
            session.capture([MediaUnit(1, 0, 0, True, b"x")])

    def test_empty_capture_noop(self):
        session = self.make_session()
        assert session.capture([]) == 0

    def test_rewind_for_new_client(self):
        session = self.make_session()
        session.capture([MediaUnit(1, 0, 0, True, b"f" * 500)])
        first = session.stream.packets_due(1e9)
        assert session.stream.packets_due(1e9) == []
        session.stream.rewind()
        assert session.stream.packets_due(1e9) == first


class TestDRM:
    def test_protected_flag_and_header(self):
        server = LicenseServer()
        asf = encode_lecture(license_server=server)
        assert asf.header.file_properties.is_protected
        assert asf.header.drm.content_id == "lec"

    def test_license_flow(self):
        server = LicenseServer()
        server.register("c1")
        server.entitle("c1", "alice")
        lic = server.acquire("c1", "alice")
        assert lic.key

    def test_unentitled_user_denied(self):
        server = LicenseServer()
        server.register("c1")
        with pytest.raises(DRMError):
            server.acquire("c1", "bob")

    def test_revocation(self):
        server = LicenseServer()
        server.register("c1")
        server.entitle("c1", "alice")
        server.revoke("c1", "alice")
        with pytest.raises(DRMError):
            server.acquire("c1", "alice")

    def test_unknown_content(self):
        server = LicenseServer()
        with pytest.raises(DRMError):
            server.acquire("nope", "alice")
        with pytest.raises(DRMError):
            server.entitle("nope", "alice")

    def test_scramble_involutive(self):
        data = b"the quick brown fox" * 10
        key = "k123"
        assert scramble(scramble(data, key), key) == data
        assert scramble(data, key) != data

    def test_protected_content_differs_from_clear(self):
        server = LicenseServer()
        config = EncoderConfig(profile=PROFILE, with_data=True)
        video = VideoObject("v", 2.0, width=64, height=64, fps=5)
        clear = ASFEncoder(config).encode_file(file_id="c", video=video)
        protected = ASFEncoder(config).encode_file(
            file_id="c", video=video, license_server=server
        )
        assert clear.units()[0].data != protected.units()[0].data
        key = server.register("c")
        assert scramble(protected.units()[0].data, key) == clear.units()[0].data


class TestDispatcher:
    def make(self, commands):
        fired = []
        dispatcher = ScriptCommandDispatcher(commands, fired.append)
        return dispatcher, fired

    COMMANDS = [
        ScriptCommand(0, "SLIDE", "s0"),
        ScriptCommand(5_000, "SLIDE", "s1"),
        ScriptCommand(7_000, "CAPTION", "hi"),
        ScriptCommand(10_000, "SLIDE", "s2"),
    ]

    def test_advance_fires_due_commands_once(self):
        dispatcher, fired = self.make(self.COMMANDS)
        dispatcher.advance_to(6.0)
        assert [c.parameter for c in fired] == ["s0", "s1"]
        dispatcher.advance_to(6.5)
        assert len(fired) == 2  # nothing new

    def test_advance_to_end(self):
        dispatcher, fired = self.make(self.COMMANDS)
        dispatcher.advance_to(60.0)
        assert len(fired) == 4 and dispatcher.pending == 0

    def test_seek_replays_latest_stateful_per_type(self):
        dispatcher, fired = self.make(self.COMMANDS)
        replayed = dispatcher.seek(8.0)
        # latest SLIDE (s1) and CAPTION (hi); not s0
        assert {(c.type, c.parameter) for c in replayed} == {
            ("SLIDE", "s1"), ("CAPTION", "hi")
        }

    def test_seek_then_advance_continues_forward(self):
        dispatcher, fired = self.make(self.COMMANDS)
        dispatcher.seek(8.0)
        dispatcher.advance_to(11.0)
        assert fired[-1].parameter == "s2"

    def test_seek_backward(self):
        dispatcher, fired = self.make(self.COMMANDS)
        dispatcher.advance_to(60.0)
        replayed = dispatcher.seek(1.0)
        assert [c.parameter for c in replayed] == ["s0"]
        dispatcher.advance_to(6.0)
        assert fired[-1].parameter == "s1"
