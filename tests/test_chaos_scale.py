"""Chaos at scale: a flash crowd of 100 000 viewers loses an edge.

The headline resilience scenario from the roadmap, driven end to end
through the load harness's supervision wiring:

* a 100k-viewer flash crowd (cohort mode) floods a 4-edge tier;
* one edge is crashed *mid-wave* by a scripted :class:`FaultPlan` —
  nothing tells the directory; the heartbeat monitor must notice;
* detection is organic (missed beacons at the controller) and bounded;
  the only suspicion in the whole run is the crashed edge — zero false
  positives under full load;
* arrivals that land on the dead edge during the detection window are
  deferred and re-resolved through the directory once suspicion lands;
* the entire run's trace passes the full :class:`TraceChecker` audit —
  session balance, QoS hygiene, no traffic after close, render
  monotonicity — crash, reconnects and all.

``CHAOS_SCALE_VIEWERS`` shrinks the audience for smoke runs (CI uses
2 000); the default is the full 100 000.
"""

import os

from repro.load import LoadConfig, WorkloadSpec, lecture_catalog, run_workload
from repro.net import FaultPlan
from repro.obs import TraceChecker, Tracer
from repro.streaming import RecoveryConfig

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
VIEWERS = int(os.environ.get("CHAOS_SCALE_VIEWERS", "100000"))

EDGES = 4
CRASH_AT = 1.0          # mid-wave: the flash window spans [0, 2]
MONITOR_INTERVAL = 0.5
MISS = 3


def flash_spec():
    return WorkloadSpec(
        viewers=VIEWERS,
        lectures=lecture_catalog(2, 20.0, stagger=5.0),
        seed=CHAOS_SEED,
        zipf_s=1.1,
        flash_fraction=0.9,
        flash_width=2.0,
        churn_rate=0.0,
        seek_rate=0.0,
        join_quantum=0.5,
    )


class TestFlashCrowdSurvivesEdgeCrash:
    def test_100k_flash_crowd_with_midwave_crash_passes_full_audit(self):
        plan = FaultPlan("midwave-kill").edge_crash("edge0", at=CRASH_AT)
        tracer = Tracer("chaos-scale")
        result = run_workload(
            flash_spec(),
            mode="cohort",
            config=LoadConfig(
                edges=EDGES,
                recovery=RecoveryConfig(),
                heartbeat_monitor=True,
                monitor_interval=MONITOR_INTERVAL,
                monitor_miss_threshold=MISS,
                fault_plan=plan,
                tracer=tracer,
                teardown=True,
            ),
        )

        context = f"\n{plan.describe()}\n{result.control}"

        # the whole audience was modeled and measured
        assert result.viewers == VIEWERS
        assert result.qoe["viewers"] == VIEWERS
        assert result.cohorts < result.viewers / 10  # aggregation held

        # detection: exactly the crashed edge, nothing else, and fast.
        # Zero false suspicions under a 100k-viewer load is the point —
        # load must not read as silence. Plan times are rebased past the
        # prefetch window, so the crash instant is offset + CRASH_AT.
        crashed_at = result.control["fault_offset"] + CRASH_AT
        suspicions = result.control["suspicions"]
        assert [s["edge"] for s in suspicions] == ["edge0"], context
        detection = suspicions[0]["time"] - crashed_at
        assert 0.0 < detection <= (MISS + 2) * MONITOR_INTERVAL + 0.01, context
        assert result.control["monitor"]["suspicions"] == 1, context

        # the fault script actually ran, and only the scripted kill
        assert [
            (f["kind"], f["target"]) for f in result.control["faults_applied"]
        ] == [("server_crash", "edge0")], context
        applied_at = result.control["faults_applied"][0]["time"]
        assert abs(applied_at - crashed_at) < 1e-9, context

        # viewers stranded by the crash actually felt it (stall-and-
        # reconnect rebuffers, or joins deferred past the dead edge) —
        # proof the kill landed on a loaded edge, not an idle one
        stranded = result.qoe.get("total_rebuffers", 0)
        deferred = result.control.get("joins_deferred", 0)
        assert stranded + deferred >= 1, context

        # the full cross-layer audit holds over the entire chaotic run
        checker = TraceChecker(tracer.records).assert_ok()
        assert checker.sessions_opened == checker.sessions_closed
        assert checker.renders_seen > 0

    def test_fault_free_run_at_scale_has_no_suspicions(self):
        result = run_workload(
            flash_spec(),
            mode="cohort",
            config=LoadConfig(
                edges=EDGES,
                heartbeat_monitor=True,
                monitor_interval=MONITOR_INTERVAL,
                monitor_miss_threshold=MISS,
                teardown=True,
            ),
        )
        assert result.viewers == VIEWERS
        assert result.control["suspicions"] == []
        assert result.control["monitor"].get("suspicions", 0) == 0
        assert result.control["monitor"]["beats"] > 0
