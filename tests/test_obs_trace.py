"""Unit tests for repro.obs: Tracer, TraceChecker, Histogram, QoE.

Also covers the integer-millisecond boundary fix in the jitter buffer
(``media_ms``), since the trace checker's render-monotonicity invariant
leans on the same timestamp discipline.
"""

import json

import pytest

from repro.asf.packets import MediaUnit
from repro.metrics import Histogram
from repro.obs import (
    QoEAggregator,
    SessionQoE,
    TraceChecker,
    TraceError,
    TraceViolation,
    Tracer,
    load_jsonl,
)
from repro.streaming.buffer import JitterBuffer, media_ms


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


class TestTracer:
    def test_records_are_seq_ordered_and_timestamped(self):
        clock = FakeClock()
        tracer = Tracer("t", clock=clock)
        tracer.event("a")
        clock.now = 1.5
        tracer.event("b", detail=7)
        seqs = [r["seq"] for r in tracer.records]
        assert seqs == sorted(seqs) == [1, 2]
        assert tracer.records[0]["t"] == 0.0
        assert tracer.records[1]["t"] == 1.5
        assert tracer.records[1]["attrs"] == {"detail": 7}

    def test_clock_variants(self):
        assert Tracer(clock=None).records == []
        t1 = Tracer(clock=FakeClock(2.0))
        t1.event("x")
        assert t1.records[0]["t"] == 2.0
        t2 = Tracer(clock=lambda: 3.0)
        t2.event("x")
        assert t2.records[0]["t"] == 3.0
        with pytest.raises(TraceError):
            Tracer(clock=object())

    def test_bind_clock_rebases_later_records_only(self):
        tracer = Tracer()
        tracer.event("before")
        tracer.bind_clock(FakeClock(9.0))
        tracer.event("after")
        assert tracer.records[0]["t"] == 0.0
        assert tracer.records[1]["t"] == 9.0

    def test_spans_nest_and_close(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner", parent=outer)
        assert tracer.open_spans() == {outer: "outer", inner: "inner"}
        tracer.end(inner, result=1)
        tracer.end(outer)
        assert tracer.open_spans() == {}
        begin = tracer.events("inner")[0]
        assert begin["kind"] == "begin" and begin["parent"] == outer
        assert tracer.events("inner")[1]["attrs"] == {"result": 1}

    def test_end_of_unknown_span_raises(self):
        tracer = Tracer()
        span = tracer.begin("s")
        tracer.end(span)
        with pytest.raises(TraceError):
            tracer.end(span)

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            tracer.event("step", span=span)
        kinds = [r["kind"] for r in tracer.records]
        assert kinds == ["begin", "event", "end"]
        assert tracer.open_spans() == {}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", n=2):
            tracer.event("hit", value=1.5)
        reloaded = load_jsonl(tracer.to_jsonl())
        assert reloaded == tracer.records
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 3
        assert load_jsonl(path.read_text()) == tracer.records

    def test_non_json_attrs_degrade_to_repr(self):
        tracer = Tracer()
        tracer.event("odd", payload=frozenset([1]))
        line = tracer.to_jsonl()
        assert json.loads(line)["attrs"]["payload"] == repr(frozenset([1]))

    def test_clear(self):
        tracer = Tracer()
        tracer.begin("s")
        tracer.clear()
        assert len(tracer) == 0 and tracer.open_spans() == {}


def trace_of(*events):
    """Build checker input: a list of (name, attrs) in order."""
    return [
        {"seq": i + 1, "t": float(i), "kind": "event", "name": name,
         "span": None, "attrs": attrs}
        for i, (name, attrs) in enumerate(events)
    ]


class TestTraceCheckerSessions:
    def test_clean_lifecycle_passes(self):
        checker = TraceChecker(trace_of(
            ("session.open", {"session": 1}),
            ("packet.train", {"session": 1, "count": 4}),
            ("session.close", {"session": 1}),
        ))
        assert checker.check() == []
        summary = checker.summary()
        assert summary["sessions_opened"] == summary["sessions_closed"] == 1
        assert summary["trains_seen"] == 1

    def test_unclosed_session_flagged(self):
        checker = TraceChecker(trace_of(("session.open", {"session": 1})))
        assert any("never closed" in v for v in checker.check())

    def test_double_open_and_unknown_close_flagged(self):
        violations = TraceChecker(trace_of(
            ("session.open", {"session": 1}),
            ("session.open", {"session": 1}),
            ("session.close", {"session": 1}),
            ("session.close", {"session": 2}),
        )).check()
        assert any("opened twice" in v for v in violations)
        assert any("unknown/already-closed" in v for v in violations)

    def test_traffic_after_close_flagged(self):
        violations = TraceChecker(trace_of(
            ("session.open", {"session": 1}),
            ("session.close", {"session": 1}),
            ("packet.train", {"session": 1}),
            ("repair.sent", {"session": 2}),
        )).check()
        assert any("after its" in v for v in violations)
        assert any("never-opened" in v for v in violations)

    def test_group_train_audits_every_member_session(self):
        # shared pacing records one train for the whole group; each named
        # session must still individually satisfy the lifecycle invariant
        violations = TraceChecker(trace_of(
            ("session.open", {"session": 1}),
            ("session.open", {"session": 2}),
            ("session.close", {"session": 2}),
            ("packet.train", {"sessions": [1, 2], "count": 4}),
            ("session.close", {"session": 1}),
        )).check()
        assert len(violations) == 1
        assert any("after its" in v for v in violations)
        TraceChecker(trace_of(
            ("session.open", {"session": 1}),
            ("session.open", {"session": 2}),
            ("packet.train", {"sessions": [1, 2], "count": 4}),
            ("session.close", {"session": 1}),
            ("session.close", {"session": 2}),
        )).assert_ok()

    def test_records_audited_in_seq_order_not_list_order(self):
        records = trace_of(
            ("session.open", {"session": 1}),
            ("session.close", {"session": 1}),
        )
        TraceChecker(list(reversed(records))).assert_ok()


class TestTraceCheckerQoS:
    def test_balanced_reservations_pass(self):
        TraceChecker(trace_of(
            ("qos.reserve", {"rid": "a#1", "owner": "s1"}),
            ("qos.release", {"rid": "a#1", "owner": "s1"}),
        )).assert_ok()

    def test_leak_double_reserve_and_unknown_release_flagged(self):
        violations = TraceChecker(trace_of(
            ("qos.reserve", {"rid": "a#1"}),
            ("qos.reserve", {"rid": "a#1"}),
            ("qos.release", {"rid": "a#2"}),
        )).check()
        assert any("reserved twice" in v for v in violations)
        assert any("unknown/already-released" in v for v in violations)
        assert any("never released" in v for v in violations)

    def test_same_id_different_manager_labels_are_distinct(self):
        TraceChecker(trace_of(
            ("qos.reserve", {"rid": "hostA#1"}),
            ("qos.reserve", {"rid": "hostB#1"}),
            ("qos.release", {"rid": "hostA#1"}),
            ("qos.release", {"rid": "hostB#1"}),
        )).assert_ok()


class TestTraceCheckerFloor:
    def test_mutual_exclusion_enforced(self):
        violations = TraceChecker(trace_of(
            ("floor.grant", {"user": "alice"}),
            ("floor.grant", {"user": "bob"}),
        )).check()
        assert any("still holds" in v for v in violations)

    def test_release_by_non_holder_flagged(self):
        violations = TraceChecker(trace_of(
            ("floor.grant", {"user": "alice"}),
            ("floor.release", {"user": "bob"}),
        )).check()
        assert any("holder is" in v for v in violations)

    def test_drop_frees_the_floor(self):
        TraceChecker(trace_of(
            ("floor.grant", {"user": "alice"}),
            ("floor.drop", {"user": "alice"}),
            ("floor.grant", {"user": "bob"}),
            ("floor.release", {"user": "bob"}),
        )).assert_ok()


class TestTraceCheckerRender:
    def test_monotonic_renders_pass(self):
        TraceChecker(trace_of(
            ("render.unit", {"client": "c", "stream": 1, "ts": 0}),
            ("render.unit", {"client": "c", "stream": 1, "ts": 100}),
            ("render.unit", {"client": "c", "stream": 2, "ts": 50}),
        )).assert_ok()

    def test_regression_flagged_per_stream(self):
        violations = TraceChecker(trace_of(
            ("render.unit", {"client": "c", "stream": 1, "ts": 100}),
            ("render.unit", {"client": "c", "stream": 1, "ts": 40}),
        )).check()
        assert any("regressed" in v for v in violations)

    def test_seek_rebases_only_that_client(self):
        TraceChecker(trace_of(
            ("render.unit", {"client": "c", "stream": 1, "ts": 100}),
            ("playback.seek", {"client": "c", "position": 0.0}),
            ("render.unit", {"client": "c", "stream": 1, "ts": 0}),
        )).assert_ok()
        violations = TraceChecker(trace_of(
            ("render.unit", {"client": "c", "stream": 1, "ts": 100}),
            ("playback.seek", {"client": "other", "position": 0.0}),
            ("render.unit", {"client": "c", "stream": 1, "ts": 0}),
        )).check()
        assert any("regressed" in v for v in violations)


class TestTraceCheckerReporting:
    def test_assert_ok_raises_with_every_violation(self):
        checker = TraceChecker(trace_of(
            ("session.open", {"session": 1}),
            ("qos.reserve", {"rid": "a#1"}),
        ))
        with pytest.raises(TraceViolation) as excinfo:
            checker.assert_ok()
        assert len(excinfo.value.violations) == 2

    def test_check_is_idempotent(self):
        checker = TraceChecker(trace_of(("session.open", {"session": 1})))
        first = checker.check()
        assert checker.check() == first and len(first) == 1


class TestHistogram:
    def test_empty_summary_is_zeroed(self):
        histogram = Histogram("empty")
        assert histogram.summary() == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_record_and_percentiles(self):
        histogram = Histogram("lat", values=range(1, 101))
        assert histogram.count == 100
        assert histogram.mean() == pytest.approx(50.5)
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentiles((90.0,)) == {
            "p90": pytest.approx(90.1)
        }

    def test_merge_is_population_union(self):
        a = Histogram("a", values=[1.0, 2.0])
        b = Histogram("b", values=[3.0])
        a.merge(b)
        assert a.count == 3 and a.max == 3.0
        assert b.count == 1  # untouched

    def test_as_dict_carries_name(self):
        assert Histogram("x", values=[1.0]).as_dict()["name"] == "x"


class _Report:
    """Duck-typed PlaybackReport stand-in."""

    def __init__(self):
        self.point = "lecture"
        self.startup_latency = 0.8
        self.rebuffer_count = 2
        self.rebuffer_time = 1.5
        self.duration_watched = 20.0
        self.media_bytes = 900
        self.recovery = {"naks_sent": 3, "repairs_received": 2}
        self.downshifts = [(5.0, 4)]


class TestSessionQoE:
    def test_from_report(self):
        qoe = SessionQoE.from_report(
            _Report(), clean_media_bytes=1000, client="student"
        )
        assert qoe.client == "student" and qoe.point == "lecture"
        assert qoe.delivery_ratio == pytest.approx(0.9)
        assert qoe.naks_sent == 3 and qoe.repairs_received == 2
        assert qoe.downshifts == [(5.0, 4)]

    def test_delivery_ratio_unknown_clean_is_one(self):
        assert SessionQoE(media_bytes=500).delivery_ratio == 1.0

    def test_as_dict_is_json_serializable(self):
        qoe = SessionQoE.from_report(_Report(), clean_media_bytes=1000)
        assert json.loads(json.dumps(qoe.as_dict()))["delivery_ratio"] == 0.9

    def test_aggregator_summary(self):
        aggregator = QoEAggregator()
        for _ in range(3):
            aggregator.add(
                SessionQoE.from_report(_Report(), clean_media_bytes=1000)
            )
        assert len(aggregator) == 3
        summary = aggregator.summary()
        assert summary["sessions"] == 3
        assert summary["startup_delay"]["mean"] == pytest.approx(0.8)
        assert summary["delivery_ratio"]["p50"] == pytest.approx(0.9)
        assert summary["total_rebuffers"] == 6
        assert summary["total_naks_sent"] == 9
        assert summary["total_downshifts"] == 3


class TestMediaMsBoundary:
    def test_half_up_for_every_parity(self):
        # round() would map (k + 0.5) ms to the even neighbor: a due unit
        # stamped k+1 gets skipped whenever k is even
        for k in range(0, 200):
            assert media_ms((k + 0.5) / 1000.0) == k + 1, k
        assert any(
            round((k + 0.5) / 1000.0 * 1000.0) == k for k in range(200)
        )

    def test_integer_positions_survive_float_noise(self):
        for k in (1, 3, 7, 13, 999, 12_345):
            assert media_ms(k / 1000.0) == k
        # a position a few ulps below the boundary still lands on it
        assert media_ms(0.013 * 3 / 3) == 13

    def test_pop_due_on_half_millisecond_boundary(self):
        for k in (12, 13):  # one even, one odd boundary
            buffer = JitterBuffer()
            unit = MediaUnit(1, 0, k + 1, True, b"x")
            buffer.push(unit)
            assert buffer.pop_due((k + 0.5) / 1000.0) == [unit], k

    def test_pop_due_and_depth_agree_at_boundary(self):
        buffer = JitterBuffer()
        buffer.push(MediaUnit(1, 0, 13, True, b"x"))
        position = 12.5 / 1000.0
        # the unit is counted as due, so it must not also count as runway
        assert buffer.depth(position, [1]) == 0.0
        assert len(buffer.pop_due(position)) == 1
