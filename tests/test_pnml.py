"""Unit tests for PNML interchange (repro.core.pnml)."""

import pytest

from repro.core.builder import NetBuilder
from repro.core.extended import build_control_net, build_floor_net
from repro.core.ocpn import MediaLeaf, compile_spec, parallel, sequence
from repro.core.pnml import (
    PNMLError,
    net_from_pnml,
    net_to_pnml,
    timed_net_from_pnml,
    timed_net_to_pnml,
)


def rich_net():
    return (
        NetBuilder("rich")
        .place("p1", tokens=2, label="start tokens")
        .place("p2", capacity=3)
        .place("inhib", tokens=1)
        .transition("t1", priority=4, label="the move")
        .arc("p1", "t1", weight=2)
        .arc("t1", "p2", weight=3)
        .arc("inhib", "t1", inhibitor=True, weight=2)
        .build()
    )


class TestRoundTrip:
    def test_structure_survives(self):
        net = rich_net()
        clone, durations = net_from_pnml(net_to_pnml(net))
        assert durations == {}
        assert {p.name for p in clone.places} == {"p1", "p2", "inhib"}
        assert clone.inputs("t1") == {"p1": 2}
        assert clone.outputs("t1") == {"p2": 3}
        assert clone.inhibitors("t1") == {"inhib": 2}

    def test_marking_survives(self):
        clone, _ = net_from_pnml(net_to_pnml(rich_net()))
        assert clone.initial_marking == {"p1": 2, "inhib": 1}

    def test_labels_priority_capacity_survive(self):
        clone, _ = net_from_pnml(net_to_pnml(rich_net()))
        assert clone.place("p1").label == "start tokens"
        assert clone.place("p2").capacity == 3
        assert clone.transition("t1").priority == 4
        assert clone.transition("t1").label == "the move"

    def test_behaviour_identical(self):
        net = rich_net()
        clone, _ = net_from_pnml(net_to_pnml(net))
        # inhibitor threshold is 2; one token does not block
        assert net.enabled() == clone.enabled() == ["t1"]
        for n in (net, clone):
            n.marking = n.marking.with_delta({"inhib": 1})
        assert net.enabled() == clone.enabled() == []

    def test_timed_net_round_trip(self):
        compiled = compile_spec(
            sequence(parallel(MediaLeaf("v", 10), MediaLeaf("s", 10)),
                     MediaLeaf("tail", 5))
        )
        timed = compiled.timed_net
        clone = timed_net_from_pnml(timed_net_to_pnml(timed))
        assert clone.durations == timed.durations
        original = timed.net
        original.reset()
        assert clone.execute().makespan() == pytest.approx(
            timed.execute().makespan()
        )

    def test_control_and_floor_nets_round_trip(self):
        for net in (build_control_net(), build_floor_net(["a", "b"])):
            clone, _ = net_from_pnml(net_to_pnml(net))
            assert len(clone.places) == len(net.places)
            assert len(clone.transitions) == len(net.transitions)
            assert clone.initial_marking == net.initial_marking


class TestFormat:
    def test_declares_ptnet_grammar(self):
        xml = net_to_pnml(rich_net())
        assert "http://www.pnml.org/version-2009/grammar/ptnet" in xml
        assert xml.lstrip().startswith("<?xml")

    def test_default_weight_omitted(self):
        net = (
            NetBuilder().place("p", tokens=1).transition("t").arc("p", "t").build()
        )
        assert "inscription" not in net_to_pnml(net)

    def test_plain_pnml_without_toolspecific_loads(self):
        plain = """<?xml version='1.0'?>
        <pnml><net id="plain" type="x"><page id="p0">
          <place id="a"><initialMarking><text>1</text></initialMarking></place>
          <place id="b"/>
          <transition id="t"/>
          <arc id="x1" source="a" target="t"/>
          <arc id="x2" source="t" target="b"/>
        </page></net></pnml>"""
        net, durations = net_from_pnml(plain)
        assert net.run() == ["t"]
        assert durations == {}

    def test_pages_optional(self):
        pageless = """<pnml><net id="n" type="x">
          <place id="a"/><transition id="t"/>
          <arc id="x" source="a" target="t"/>
        </net></pnml>"""
        net, _ = net_from_pnml(pageless)
        assert net.has_place("a") and net.has_transition("t")

    def test_errors(self):
        with pytest.raises(PNMLError):
            net_from_pnml("not xml <<<")
        with pytest.raises(PNMLError):
            net_from_pnml("<pnml></pnml>")
        with pytest.raises(PNMLError):
            net_from_pnml(
                "<pnml><net id='n'><page id='p'>"
                "<place/></page></net></pnml>"
            )
        with pytest.raises(PNMLError):
            net_from_pnml(
                "<pnml><net id='n'><page id='p'>"
                "<arc id='a' source='x'/></page></net></pnml>"
            )
