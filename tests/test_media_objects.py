"""Unit tests for synthetic media objects (repro.media.objects)."""

import pytest

from repro.media.objects import (
    AnnotationObject,
    AudioObject,
    ImageObject,
    MediaError,
    MediaType,
    TextObject,
    VideoObject,
    _pseudo_bytes,
)


class TestPseudoBytes:
    def test_deterministic(self):
        assert _pseudo_bytes("s", 0, 100) == _pseudo_bytes("s", 0, 100)

    def test_seed_and_index_vary(self):
        assert _pseudo_bytes("s", 0, 32) != _pseudo_bytes("s", 1, 32)
        assert _pseudo_bytes("a", 0, 32) != _pseudo_bytes("b", 0, 32)

    def test_exact_size(self):
        assert len(_pseudo_bytes("s", 0, 77)) == 77


class TestVideoObject:
    def test_validation(self):
        with pytest.raises(MediaError):
            VideoObject("", 10)
        with pytest.raises(MediaError):
            VideoObject("v", 0)
        with pytest.raises(MediaError):
            VideoObject("v", 10, width=0)
        with pytest.raises(MediaError):
            VideoObject("v", 10, fps=0)

    def test_frame_count(self):
        v = VideoObject("v", 2.0, fps=25)
        assert v.frame_count == 50

    def test_short_video_has_one_frame(self):
        assert VideoObject("v", 0.01, fps=10).frame_count == 1

    def test_raw_size(self):
        v = VideoObject("v", 1.0, width=10, height=10, fps=5)
        assert v.raw_size() == 5 * 10 * 10 * 3

    def test_frame_timestamps(self):
        v = VideoObject("v", 0.2, fps=10)
        times = [f.timestamp for f in v.frames()]
        assert times == [0.0, 0.1]

    def test_frames_with_data(self):
        v = VideoObject("v", 0.1, width=4, height=4, fps=10)
        frame = next(v.frames(with_data=True))
        assert len(frame.data) == frame.size == 48

    def test_media_type(self):
        assert VideoObject("v", 1).media_type is MediaType.VIDEO


class TestAudioObject:
    def test_byte_rate(self):
        a = AudioObject("a", 1.0, sample_rate=8000, channels=2, sample_width=2)
        assert a.byte_rate == 32_000

    def test_raw_size(self):
        a = AudioObject("a", 2.0, sample_rate=1000, channels=1, sample_width=1)
        assert a.raw_size() == 2000

    def test_blocks_cover_everything(self):
        a = AudioObject("a", 1.05, sample_rate=1000, channels=1, sample_width=1)
        blocks = list(a.blocks(block_duration=0.1))
        assert sum(b.size for b in blocks) == a.raw_size()
        assert blocks[-1].size == 50  # trailing short block

    def test_block_timestamps_monotone(self):
        a = AudioObject("a", 0.5)
        times = [b.timestamp for b in a.blocks()]
        assert times == sorted(times)

    def test_invalid_block_duration(self):
        with pytest.raises(MediaError):
            list(AudioObject("a", 1).blocks(block_duration=0))

    def test_validation(self):
        with pytest.raises(MediaError):
            AudioObject("a", 1, sample_rate=0)


class TestImageTextAnnotation:
    def test_image_raw_size(self):
        img = ImageObject("s", 5, width=10, height=10)
        assert img.raw_size() == 300
        assert len(img.data()) == 300

    def test_image_validation(self):
        with pytest.raises(MediaError):
            ImageObject("s", 5, width=-1)

    def test_text_size(self):
        assert TextObject("t", 3, text="héllo").raw_size() == 6

    def test_annotation_region_validation(self):
        with pytest.raises(MediaError):
            AnnotationObject("n", 2, region=(0.5, 0.0, 0.4, 1.0))
        with pytest.raises(MediaError):
            AnnotationObject("n", 2, region=(0.0, 0.0, 1.5, 1.0))

    def test_annotation_valid(self):
        ann = AnnotationObject("n", 2, text="look", slide="s1",
                               region=(0.1, 0.1, 0.5, 0.3))
        assert ann.media_type is MediaType.ANNOTATION
        assert ann.raw_size() == 4 + 32
