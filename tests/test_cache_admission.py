"""TinyLFU admission, TTL expiry, and the re-store double-count fix.

Covers the admission stack bottom-up — sketch, doorkeeper, policy —
then the :class:`PacketRunCache` integration: the admission gate on a
full cache, TTL expiry against a bound clock, and the regression for
the byte-budget double-count a stale-serve refresh used to cause.
Seeded pieces run on seeds 0–2 (the chaos-matrix convention).
"""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.catalog import CountMinSketch, Doorkeeper, TinyLFUAdmission
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import Counters
from repro.streaming.edge import PacketRunCache

PROFILE = get_profile("modem-56k")
SEEDS = [0, 1, 2]


def make_asf(file_id="lec", duration=4.0):
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id=file_id,
        video=VideoObject("talk", duration, width=160, height=120, fps=5),
        audio=AudioObject("voice", duration),
        images=[(ImageObject("s0", duration, width=160, height=120), 0.0)],
        commands=slide_commands([("s0", 0.0)]),
    )


def packed_size(asf):
    return len(asf.header.pack()) + sum(len(b) for b in asf.packed_packets())


@pytest.mark.parametrize("seed", SEEDS)
class TestCountMinSketch:
    def test_estimate_tracks_increments(self, seed):
        sketch = CountMinSketch(width=256, depth=4, seed=seed)
        for _ in range(5):
            sketch.increment("hot")
        assert sketch.estimate("hot") >= 5
        # count-min never under-counts; an unseen key can only collide up
        assert sketch.estimate("cold") <= sketch.estimate("hot")

    def test_counters_saturate_at_four_bits(self, seed):
        sketch = CountMinSketch(width=256, depth=4, seed=seed)
        for _ in range(100):
            sketch.increment("hot")
        assert sketch.estimate("hot") == CountMinSketch.MAX_COUNT

    def test_halve_ages_every_counter(self, seed):
        sketch = CountMinSketch(width=256, depth=4, seed=seed)
        for _ in range(8):
            sketch.increment("hot")
        before = sketch.estimate("hot")
        sketch.halve()
        assert sketch.estimate("hot") == before // 2
        assert sketch.increments == 0

    def test_deterministic_across_instances(self, seed):
        a = CountMinSketch(width=256, depth=4, seed=seed)
        b = CountMinSketch(width=256, depth=4, seed=seed)
        for key in ("x", "y", "x", "z", "x"):
            a.increment(key)
            b.increment(key)
        for key in ("x", "y", "z", "w"):
            assert a.estimate(key) == b.estimate(key)


@pytest.mark.parametrize("seed", SEEDS)
class TestDoorkeeper:
    def test_first_add_is_fresh_second_is_not(self, seed):
        door = Doorkeeper(bits=1024, seed=seed)
        assert door.add("k") is True
        assert "k" in door
        assert door.add("k") is False

    def test_clear_forgets(self, seed):
        door = Doorkeeper(bits=1024, seed=seed)
        door.add("k")
        door.clear()
        assert "k" not in door
        assert door.add("k") is True


@pytest.mark.parametrize("seed", SEEDS)
class TestTinyLFUAdmission:
    def policy(self, seed, **kw):
        kw.setdefault("counters", Counters())
        return TinyLFUAdmission(seed=seed, width=256, **kw)

    def test_doorkeeper_absorbs_one_hit_wonders(self, seed):
        policy = self.policy(seed)
        policy.record_access("once")
        # first sighting lives in the doorkeeper, not the sketch
        assert policy.sketch.estimate("once") == 0
        assert policy.estimate("once") == 1  # doorkeeper boost only

    def test_repeat_accesses_earn_sketch_counters(self, seed):
        policy = self.policy(seed)
        for _ in range(4):
            policy.record_access("hot")
        assert policy.sketch.estimate("hot") >= 3

    def test_admit_prefers_higher_frequency(self, seed):
        policy = self.policy(seed)
        for _ in range(6):
            policy.record_access("hot")
        policy.record_access("cold")
        assert policy.admit("hot", "cold") is True
        # ties (and colder candidates) keep the resident
        assert policy.admit("cold", "hot") is False
        assert policy.admit("never-seen", "never-seen-2") is False

    def test_sample_period_triggers_aging_reset(self, seed):
        counters = Counters()
        policy = self.policy(seed, sample_period=10, counters=counters)
        for _ in range(9):
            policy.record_access("hot")
        peak = policy.sketch.estimate("hot")
        assert counters["sketch_resets"] == 0
        policy.record_access("hot")  # 10th access: window rolls
        assert counters["sketch_resets"] == 1
        assert policy.sketch.estimate("hot") <= max(peak // 2, peak - peak // 2)
        # doorkeeper cleared too: the next access is "fresh" again
        assert "hot" not in policy.doorkeeper


class TestCacheAdmissionGate:
    def build(self, *, seed=0, entries=2):
        counters = Counters()
        runs = {f"run{i}": make_asf(f"run{i}") for i in range(entries + 1)}
        size = packed_size(runs["run0"])
        policy = TinyLFUAdmission(seed=seed, width=256, counters=counters)
        cache = PacketRunCache(
            max_bytes=int(size * entries + size // 2),
            counters=counters,
            admission=policy,
        )
        return cache, counters, policy, runs

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cold_candidate_rejected_when_full(self, seed):
        cache, counters, policy, runs = self.build(seed=seed)
        for name in ("run0", "run1"):
            assert cache.store(runs[name].fingerprint(), runs[name])
            for _ in range(4):
                cache.lookup(runs[name].fingerprint())  # earn frequency
        cold = runs["run2"]
        assert cache.store(cold.fingerprint(), cold) is False
        assert cold.fingerprint() not in cache
        assert counters["admission_rejected"] == 1
        # residents untouched
        assert runs["run0"].fingerprint() in cache
        assert runs["run1"].fingerprint() in cache

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hot_candidate_beats_lru_victim(self, seed):
        cache, counters, policy, runs = self.build(seed=seed)
        for name in ("run0", "run1"):
            cache.store(runs[name].fingerprint(), runs[name])
        hot = runs["run2"]
        for _ in range(6):
            cache.lookup(hot.fingerprint())  # misses, but frequency accrues
        assert cache.store(hot.fingerprint(), hot) is True
        assert hot.fingerprint() in cache
        assert counters["admission_rejected"] == 0

    def test_store_into_empty_cache_never_consults_admission(self):
        cache, counters, policy, runs = self.build()
        big = runs["run0"]
        assert cache.store(big.fingerprint(), big) is True


class TestTTLExpiry:
    def test_entry_expires_on_lookup_after_ttl(self):
        counters = Counters()
        now = [0.0]
        cache = PacketRunCache(
            max_bytes=10**9, counters=counters, ttl_seconds=30.0
        )
        cache.clock = lambda: now[0]
        asf = make_asf()
        key = asf.fingerprint()
        cache.store(key, asf)
        now[0] = 29.0
        assert cache.lookup(key) is asf
        now[0] = 60.0
        assert cache.lookup(key) is None
        assert key not in cache
        assert counters["ttl_evictions"] == 1
        assert cache.bytes_cached == 0

    def test_lookup_refreshes_lru_not_ttl(self):
        counters = Counters()
        now = [0.0]
        cache = PacketRunCache(
            max_bytes=10**9, counters=counters, ttl_seconds=10.0
        )
        cache.clock = lambda: now[0]
        asf = make_asf()
        cache.store(asf.fingerprint(), asf)
        for t in (4.0, 8.0):
            now[0] = t
            assert cache.lookup(asf.fingerprint()) is asf
        now[0] = 11.0  # TTL counts from the store, not the last hit
        assert cache.lookup(asf.fingerprint()) is None

    def test_restore_resets_ttl(self):
        counters = Counters()
        now = [0.0]
        cache = PacketRunCache(
            max_bytes=10**9, counters=counters, ttl_seconds=10.0
        )
        cache.clock = lambda: now[0]
        asf = make_asf()
        cache.store(asf.fingerprint(), asf)
        now[0] = 9.0
        cache.store(asf.fingerprint(), asf)  # refill lands the same run
        now[0] = 15.0  # 6s after the refresh, 15s after first store
        assert cache.lookup(asf.fingerprint()) is asf


class TestRestoreDoubleCountRegression:
    """A refill landing a key already resident (the stale-serve refresh)
    must freshen the entry, never charge the budget twice."""

    def test_restore_same_key_charges_once(self):
        counters = Counters()
        asf = make_asf()
        size = packed_size(asf)
        cache = PacketRunCache(max_bytes=size * 3, counters=counters)
        key = asf.fingerprint()
        assert cache.store(key, asf)
        assert cache.bytes_cached == size
        for _ in range(3):
            assert cache.store(key, asf)
        assert cache.bytes_cached == size
        assert len(cache) == 1
        assert counters["insertions"] == 1
        assert counters["bytes_inserted"] == size

    def test_restore_refreshes_lru_position(self):
        counters = Counters()
        a, b = make_asf("a"), make_asf("b")
        cache = PacketRunCache(max_bytes=10**9, counters=counters)
        cache.store(a.fingerprint(), a)
        cache.store(b.fingerprint(), b)
        cache.store(a.fingerprint(), a)  # refresh: a becomes MRU
        assert cache.keys() == [b.fingerprint(), a.fingerprint()]

    def test_remove_after_restore_frees_exactly_once(self):
        counters = Counters()
        asf = make_asf()
        size = packed_size(asf)
        cache = PacketRunCache(max_bytes=size * 3, counters=counters)
        key = asf.fingerprint()
        cache.store(key, asf)
        cache.store(key, asf)
        assert cache.remove(key) is True
        assert cache.bytes_cached == 0
        assert cache.remove(key) is False  # second remove is a no-op
        assert cache.bytes_cached == 0
        assert counters["bytes_invalidated"] == size
