"""Unit tests for simulated codecs, profiles and clocks (repro.media)."""

import pytest

from repro.media.clock import ClockError, PresentationClock, TimestampGenerator
from repro.media.codecs import (
    CODEC_REGISTRY,
    Codec,
    CodecError,
    ImageCodec,
    get_codec,
)
from repro.media.objects import AudioObject, ImageObject, MediaType, VideoObject
from repro.media.profiles import (
    STANDARD_PROFILES,
    BandwidthProfile,
    get_profile,
    select_profile,
)
from repro.media import MediaError


VIDEO = VideoObject("v", 10.0, width=320, height=240, fps=25)
AUDIO = AudioObject("a", 10.0)


class TestCodecModel:
    def test_registry_has_paper_codecs(self):
        for name in ("wma", "acelp", "mp3", "mpeg4", "truemotion", "clearvideo"):
            assert name in CODEC_REGISTRY

    def test_unknown_codec(self):
        with pytest.raises(CodecError):
            get_codec("h264")

    def test_video_bitrate_close_to_target(self):
        encoded = get_codec("mpeg4").encode(VIDEO, target_bitrate=250_000)
        assert encoded.bitrate == pytest.approx(250_000, rel=0.02)

    def test_audio_bitrate_close_to_target(self):
        encoded = get_codec("wma").encode(AUDIO, target_bitrate=32_000)
        assert encoded.bitrate == pytest.approx(32_000, rel=0.02)

    def test_unit_count_matches_frames(self):
        encoded = get_codec("mpeg4").encode(VIDEO, target_bitrate=250_000)
        assert len(encoded.units) == VIDEO.frame_count

    def test_keyframe_cadence(self):
        codec = get_codec("mpeg4")  # 2s keyframe interval
        encoded = codec.encode(VIDEO, target_bitrate=250_000)
        keys = encoded.keyframe_timestamps()
        assert keys[0] == 0.0
        assert keys[1] == pytest.approx(2.0)
        assert len(keys) == 5

    def test_iframes_larger_than_pframes(self):
        encoded = get_codec("mpeg4").encode(VIDEO, target_bitrate=250_000)
        i_sizes = [u.size for u in encoded.units if u.keyframe]
        p_sizes = [u.size for u in encoded.units if not u.keyframe]
        assert min(i_sizes) > max(p_sizes)

    def test_quality_monotone_in_bitrate(self):
        codec = get_codec("mpeg4")
        q = [
            codec.encode(VIDEO, target_bitrate=r).quality
            for r in (50_000, 250_000, 1_000_000)
        ]
        assert q[0] < q[1] < q[2]
        assert all(0 < x < 1 for x in q)

    def test_better_codec_higher_quality_same_rate(self):
        good = get_codec("mpeg4").encode(VIDEO, target_bitrate=100_000)
        bad = get_codec("clearvideo").encode(VIDEO, target_bitrate=100_000)
        assert good.quality > bad.quality

    def test_kind_mismatch_rejected(self):
        with pytest.raises(CodecError):
            get_codec("wma").encode(VIDEO, target_bitrate=100_000)

    def test_nonpositive_bitrate_rejected(self):
        with pytest.raises(CodecError):
            get_codec("mpeg4").encode(VIDEO, target_bitrate=0)

    def test_compression_ratio(self):
        encoded = get_codec("mpeg4").encode(VIDEO, target_bitrate=250_000)
        assert encoded.compression_ratio > 10

    def test_with_data_materializes_payloads(self):
        encoded = get_codec("mpeg4").encode(
            VideoObject("v", 0.2, width=32, height=32, fps=10),
            target_bitrate=50_000,
            with_data=True,
        )
        assert all(len(u.data) == u.size for u in encoded.units)

    def test_codec_parameter_validation(self):
        with pytest.raises(CodecError):
            Codec("x", MediaType.VIDEO, efficiency=0)
        with pytest.raises(CodecError):
            Codec("x", MediaType.VIDEO, keyframe_interval=0)

    def test_image_codec(self):
        image = ImageObject("s", 5, width=100, height=100)
        encoded = ImageCodec(compression_ratio=30).encode(image)
        assert encoded.total_size == pytest.approx(image.raw_size() / 30, rel=0.01)
        assert len(encoded.units) == 1


class TestProfiles:
    def test_ladder_is_sorted(self):
        rates = [p.total_bitrate for p in STANDARD_PROFILES]
        assert rates == sorted(rates)

    def test_get_profile(self):
        assert get_profile("dsl-256k").total_bitrate == 256_000
        with pytest.raises(MediaError):
            get_profile("zzz")

    def test_media_rates_fit_total(self):
        for p in STANDARD_PROFILES:
            assert p.video_bitrate + p.audio_bitrate <= p.total_bitrate

    def test_select_profile_picks_highest_fitting(self):
        assert select_profile(300_000).name == "dsl-256k"
        assert select_profile(2_000_000).name == "lan-1m"

    def test_select_profile_headroom(self):
        # 256k link with 0.9 headroom cannot carry the 256k profile
        assert select_profile(256_000).name == "isdn-dual"

    def test_select_profile_floor(self):
        assert select_profile(10_000).name == "modem-28k"

    def test_select_profile_invalid_link(self):
        with pytest.raises(MediaError):
            select_profile(0)

    def test_configure_video_downscales_only(self):
        profile = get_profile("modem-28k")
        scaled = profile.configure_video(VIDEO)
        assert scaled.width == 160 and scaled.fps == 7.5
        small = VideoObject("v", 10, width=80, height=60, fps=5)
        assert profile.configure_video(small).width == 80

    def test_higher_profile_higher_quality(self):
        low = get_profile("modem-28k").encode_video(VIDEO)
        high = get_profile("lan-1m").encode_video(VIDEO)
        assert high.quality > low.quality

    def test_invalid_profile_rejected(self):
        with pytest.raises(MediaError):
            BandwidthProfile("bad", 100_000, 90_000, 20_000, 320, 240, 25)


class TestPresentationClock:
    def test_runs_at_rate(self):
        clock = PresentationClock(rate=2.0)
        clock.start(100.0)
        assert clock.media_time(105.0) == pytest.approx(10.0)

    def test_not_started_reads_zero(self):
        assert PresentationClock().media_time(50.0) == 0.0

    def test_pause_resume(self):
        clock = PresentationClock()
        clock.start(0.0)
        clock.pause(4.0)
        assert clock.media_time(100.0) == pytest.approx(4.0)
        clock.resume(100.0)
        assert clock.media_time(101.0) == pytest.approx(5.0)

    def test_double_pause_rejected(self):
        clock = PresentationClock()
        clock.start(0.0)
        clock.pause(1.0)
        with pytest.raises(ClockError):
            clock.pause(2.0)

    def test_resume_unpaused_rejected(self):
        clock = PresentationClock()
        clock.start(0.0)
        with pytest.raises(ClockError):
            clock.resume(1.0)

    def test_double_start_rejected(self):
        clock = PresentationClock()
        clock.start(0.0)
        with pytest.raises(ClockError):
            clock.start(1.0)

    def test_rate_change_preserves_position(self):
        clock = PresentationClock()
        clock.start(0.0)
        clock.set_rate(10.0, 2.0)
        assert clock.media_time(10.0) == pytest.approx(10.0)
        assert clock.media_time(11.0) == pytest.approx(12.0)

    def test_seek(self):
        clock = PresentationClock()
        clock.start(0.0)
        clock.seek(5.0, 60.0)
        assert clock.media_time(7.0) == pytest.approx(62.0)

    def test_wall_time_of(self):
        clock = PresentationClock(rate=2.0)
        clock.start(0.0)
        assert clock.wall_time_of(3.0, 10.0) == pytest.approx(5.0)

    def test_wall_time_of_paused_rejected(self):
        clock = PresentationClock()
        clock.start(0.0)
        clock.pause(1.0)
        with pytest.raises(ClockError):
            clock.wall_time_of(2.0, 5.0)


class TestTimestampGenerator:
    def test_preroll_offset(self):
        gen = TimestampGenerator(preroll_ms=3000)
        assert gen.to_wire(0.0) == 3000
        assert gen.from_wire(3000) == 0.0

    def test_monotonicity_enforced(self):
        gen = TimestampGenerator()
        gen.to_wire(5.0)
        with pytest.raises(ClockError):
            gen.to_wire(4.0)

    def test_reset(self):
        gen = TimestampGenerator()
        gen.to_wire(5.0)
        gen.reset()
        assert gen.to_wire(1.0) == 4000

    def test_negative_rejected(self):
        with pytest.raises(ClockError):
            TimestampGenerator().to_wire(-1.0)

    def test_from_wire_clamps(self):
        assert TimestampGenerator(preroll_ms=3000).from_wire(1000) == 0.0
