"""The supervision plane: heartbeat detection and the autoscaler.

The contract under test is *organic* failure handling: nothing here ever
calls ``EdgeDirectory.mark_down``/``mark_up`` — edges are marked down
because their heartbeats stopped arriving at the controller host over
the simulated network, and marked up because they beat again.

* fault-free runs must produce **zero** suspicions (seeds 0–2);
* a crashed edge is suspected within a bounded latency and the directory
  stops placing clients on it;
* a *partitioned* (alive) edge is suspected, then rejoins cleanly when
  the partition heals — no state was torn down meanwhile;
* a lossy beacon path teaches the monitor a wider expected interval
  instead of a false suspicion (the adaptive half of the detector);
* an edge crashing mid-backbone-fill leaves an orphaned replica session
  on the origin; the monitor settles it at suspicion time — no restart
  or shutdown required (the suspicion/fill interaction fix);
* the autoscaler substantiates latent edges under sustained load and
  drains them again when the audience leaves, with hysteresis.
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.control import Autoscaler, CapacityPolicy, HeartbeatMonitor, LatentEdge
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import reset_counters
from repro.net import FaultInjector, FaultPlan
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    RecoveryConfig,
    build_edge_tier,
)
from repro.streaming.edge import EdgeRelay, PacketRunCache
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4

INTERVAL = 0.5
MISS = 3


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def make_tier(*, edges=2, tracer=None, seed=0, **tier_kwargs):
    reset_counters("edge_cache")
    net = VirtualNetwork()
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    origin.publish("lecture", make_asf())
    directory, relays = build_edge_tier(
        net, origin, [f"edge{i}" for i in range(edges)],
        pacing_quantum=0.5, seed=seed, tracer=tracer, **tier_kwargs,
    )
    for relay in relays:
        net.connect(relay.host, "student", bandwidth=2_000_000, delay=0.02)
        net.link(relay.host, "student").rng.seed(1000 + CHAOS_SEED)
    return net, origin, directory, relays


def make_monitor(net, directory, **kwargs):
    kwargs.setdefault("interval", INTERVAL)
    kwargs.setdefault("miss_threshold", MISS)
    monitor = HeartbeatMonitor(net, directory, **kwargs)
    monitor.watch_directory()
    monitor.start()
    return monitor


class TestHeartbeatDetection:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fault_free_run_has_zero_false_suspicions(self, seed):
        net, origin, directory, relays = make_tier(seed=seed)
        monitor = make_monitor(net, directory, seed=seed)

        player = MediaPlayer(net, "student", directory=directory,
                             recovery=RecoveryConfig())
        player.connect(directory.url_for("student", "lecture"))
        player.play()
        net.simulator.run_until(DURATION + 10.0)
        if player.state is not PlayerState.FINISHED:
            player.stop()

        assert monitor.counters.get("suspicions", 0) == 0
        assert monitor.counters["beats"] > len(relays) * DURATION / INTERVAL / 2
        assert all(not monitor.is_suspected(r.name) for r in relays)
        monitor.stop()
        for relay in relays:
            relay.shutdown()
        net.simulator.run()
        assert len(origin.sessions) == 0

    def test_crash_is_suspected_within_bounded_latency(self):
        net, origin, directory, relays = make_tier()
        monitor = make_monitor(net, directory)
        crash_at = 2.0
        injector = FaultInjector(net)
        injector.register_directory(directory)
        injector.apply(FaultPlan("kill").edge_crash("edge0", at=crash_at))

        net.simulator.run_until(crash_at + 5.0)

        assert monitor.is_suspected("edge0")
        assert not monitor.is_suspected("edge1")
        assert [s["edge"] for s in monitor.suspicions] == ["edge0"]
        # last beat ≤ one interval before the crash; suspicion lands on
        # the first sweep past the silence threshold
        detection = monitor.suspicions[0]["time"] - crash_at
        assert detection <= MISS * INTERVAL + 2 * INTERVAL + 0.01
        # the directory reflects the suspicion organically
        assert not directory.is_available("edge0")
        assert directory.place("anything") == "edge1"
        monitor.stop()

    def test_partitioned_edge_rejoins_on_heal(self):
        net, origin, directory, relays = make_tier()
        monitor = make_monitor(net, directory)
        # sever only the beacon path: the edge itself stays healthy
        FaultInjector(net).apply(
            FaultPlan("partition").link_down(
                "edge0", monitor.host, at=2.0, until=6.0
            )
        )
        net.simulator.run_until(5.5)
        assert monitor.is_suspected("edge0")
        assert not relays[0].crashed
        assert not directory.is_available("edge0")

        net.simulator.run_until(8.0)
        assert not monitor.is_suspected("edge0")
        assert monitor.counters["rejoins"] == 1
        assert directory.is_available("edge0")
        # the outage gap never fed the learner: detection is not deafened
        assert monitor.expected_interval("edge0") <= 2 * INTERVAL
        monitor.stop()

    def test_lossy_beacon_path_widens_tolerance_not_suspicion(self):
        net, origin, directory, relays = make_tier()
        monitor = make_monitor(net, directory)
        # a one-interval outage window eats exactly one beat: the
        # resulting ~2x gap is benign evidence (well under the miss
        # threshold) and must widen the expected interval
        FaultInjector(net).apply(
            FaultPlan("thin").link_down(
                "edge0", monitor.host, at=2.0, until=2.0 + INTERVAL
            )
        )
        net.simulator.run_until(10.0)
        assert monitor.counters.get("suspicions", 0) == 0
        assert monitor.expected_interval("edge0") > 1.5 * INTERVAL
        assert monitor.expected_interval("edge1") == pytest.approx(
            INTERVAL, abs=1e-6
        )
        monitor.stop()


class TestSuspicionSettlesOrphanedFills:
    def test_crash_mid_fill_settles_origin_replica_via_monitor(self):
        # fill_burst=2 stretches the backbone fill over many small trains
        # so a scheduled crash reliably lands mid-fill
        net, origin, directory, (edge0, edge1) = make_tier(fill_burst=2.0)
        monitor = make_monitor(net, directory)
        net.simulator.schedule_at(0.2, edge0.crash)
        from repro.streaming import PublishError

        with pytest.raises(PublishError):
            edge0.prefetch("lecture")
        # the fill aborted; the origin-side replica session is orphaned
        assert len(origin.sessions) == 1

        # no restart, no shutdown: detection alone must settle the leak
        net.simulator.run_until(net.simulator.now + 5.0)
        assert monitor.is_suspected("edge0")
        assert monitor.counters["orphans_settled"] >= 1
        assert len(origin.sessions) == 0
        origin.assert_no_qos_leaks()
        monitor.stop()


class TestAutoscaler:
    def _latent(self, net, origin, name, client_host="student"):
        def factory(edge_name):
            net.connect("origin", edge_name,
                        bandwidth=50_000_000, delay=0.005)
            net.connect(edge_name, client_host,
                        bandwidth=2_000_000, delay=0.02)
            return EdgeRelay(
                net, edge_name,
                origin_url="http://origin:8080",
                cache=PacketRunCache(),
                pacing_quantum=0.5,
            )

        return LatentEdge(name, factory)

    def test_scale_up_then_down_with_hysteresis(self):
        net, origin, directory, relays = make_tier(edges=1)
        monitor = make_monitor(net, directory)
        policy = CapacityPolicy(
            high_load=4.0, low_load=1.0, sustain=2, cooldown=2.0, min_edges=1
        )
        scaler = Autoscaler(
            net.simulator, directory,
            latent=[self._latent(net, origin, "edge-x")],
            policy=policy, interval=0.5, monitor=monitor,
        )
        scaler.start()

        # a 10-viewer cohort lands on the lone edge: sustained high load
        player = MediaPlayer(net, "student", multiplicity=10)
        player.connect(directory.url_for("student", "lecture"))
        player.play()
        net.simulator.run_until(4.0)

        assert scaler.counters["scale_ups"] == 1
        assert scaler.active_latent == ["edge-x"]
        assert "edge-x" in directory.edges()
        assert "edge-x" in monitor.watched()
        # hysteresis: the streak reset + cooldown mean exactly one action
        assert scaler.counters.get("scale_downs", 0) == 0

        # the audience leaves; sustained low load drains the latent edge
        player.stop()
        net.simulator.run_until(12.0)
        assert scaler.counters["scale_downs"] == 1
        assert scaler.active_latent == []
        assert "edge-x" not in directory.edges()
        assert "edge-x" not in monitor.watched()
        # scale-down unwound only the autoscaler's own action: the base
        # edge (min_edges floor) was never drained
        assert "edge0" in directory.edges()
        assert not relays[0].draining

        scaler.stop()
        monitor.stop()
        for relay in relays:
            relay.shutdown()
        net.simulator.run()
        assert len(origin.sessions) == 0

    def test_scale_down_never_breaches_min_edges(self):
        net, origin, directory, relays = make_tier(edges=1)
        policy = CapacityPolicy(
            high_load=4.0, low_load=1.0, sustain=1, cooldown=0.5, min_edges=1
        )
        scaler = Autoscaler(net.simulator, directory, policy=policy,
                            interval=0.5)
        scaler.start()
        net.simulator.run_until(5.0)
        # dead-quiet tier, low streak every sample — but nothing to drain
        assert scaler.counters.get("scale_downs", 0) == 0
        assert directory.edges() == ["edge0"] or "edge0" in directory.edges()
        scaler.stop()


class TestRicherCapacitySignals:
    """PR 8 signals: QoE-percentile dict probes and bytes_served trends
    feed the same hysteresis machinery as raw viewer counts."""

    def _latent(self, net, name):
        def factory(edge_name):
            net.connect("origin", edge_name,
                        bandwidth=50_000_000, delay=0.005)
            net.connect(edge_name, "student",
                        bandwidth=2_000_000, delay=0.02)
            return EdgeRelay(
                net, edge_name,
                origin_url="http://origin:8080",
                cache=PacketRunCache(),
                pacing_quantum=0.5,
            )

        return LatentEdge(name, factory)

    def test_rebuffer_p95_probe_scales_up_with_hysteresis(self):
        net, origin, directory, relays = make_tier(edges=1)
        probe = {"value": {"startup_p95": 0.1, "rebuffer_p95": 0.2}}
        policy = CapacityPolicy(
            high_load=1000.0, low_load=0.5, sustain=2, cooldown=2.0,
            min_edges=1, max_rebuffer_p95=0.05,
        )
        scaler = Autoscaler(
            net.simulator, directory,
            latent=[self._latent(net, "edge-x")],
            policy=policy, interval=0.5,
            qoe_probe=lambda: probe["value"],
        )
        scaler.start()
        # one bad sample is not enough: sustain=2 holds the action
        net.simulator.run_until(0.9)
        assert scaler.counters.get("scale_ups", 0) == 0
        net.simulator.run_until(2.0)
        assert scaler.counters["scale_ups"] == 1
        assert scaler.active_latent == ["edge-x"]
        # viewer load never looked high — the QoE percentile did it
        assert all(s["per_edge"] < policy.high_load for s in scaler.samples)

        # QoE recovers: the dead-quiet tier drains the latent edge after
        # cooldown, and only the latent edge
        probe["value"] = {"startup_p95": 0.01, "rebuffer_p95": 0.0}
        net.simulator.run_until(8.0)
        assert scaler.counters["scale_downs"] == 1
        assert scaler.active_latent == []
        assert "edge-x" not in directory.edges()
        assert "edge0" in directory.edges()
        scaler.stop()

    def test_bytes_rate_trend_scales_up_when_viewer_counts_look_calm(self):
        net, origin, directory, relays = make_tier(edges=1)
        policy = CapacityPolicy(
            high_load=1000.0, low_load=0.5, sustain=2, cooldown=60.0,
            min_edges=1, high_bytes_rate=1.0,
        )
        scaler = Autoscaler(
            net.simulator, directory,
            latent=[self._latent(net, "edge-x")],
            policy=policy, interval=0.5,
        )
        scaler.start()

        player = MediaPlayer(net, "student", multiplicity=10)
        player.connect(directory.url_for("student", "lecture"))
        player.play()
        net.simulator.run_until(4.0)

        # a first sighting primes the baseline instead of counting the
        # edge's lifetime bytes as one giant delta
        assert scaler.samples[0]["bytes_delta"] == 0
        assert relays[0].bytes_served > 0
        # ten modeled viewers never crossed high_load=1000; the byte
        # trend is what tripped the guard
        assert scaler.counters["scale_ups"] == 1
        assert all(s["per_edge"] < policy.high_load for s in scaler.samples)
        assert any(s["bytes_rate"] > policy.high_bytes_rate
                   for s in scaler.samples)

        player.stop()
        scaler.stop()
        for relay in relays:
            relay.shutdown()
        net.simulator.run()
        assert len(origin.sessions) == 0
