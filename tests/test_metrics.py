"""Unit tests for repro.metrics."""

import pytest

from repro.metrics import (
    Counters,
    MetricsCollector,
    StatsError,
    Summary,
    format_table,
    get_counters,
    jain_index,
    mean,
    merge_snapshot,
    percentile,
    snapshot_delta,
    stdev,
)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_rejected(self):
        with pytest.raises(StatsError):
            mean([])

    def test_stdev(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)
        assert stdev([5]) == 0.0

    def test_percentile_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
        assert percentile([1, 2, 3, 4], 0) == 1
        assert percentile([1, 2, 3, 4], 100) == 4

    def test_percentile_bounds(self):
        with pytest.raises(StatsError):
            percentile([1], 101)
        with pytest.raises(StatsError):
            percentile([], 50)

    def test_percentile_single(self):
        assert percentile([7], 95) == 7

    def test_jain_fair(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_jain_unfair(self):
        assert jain_index([9, 0.0001, 0.0001]) == pytest.approx(1 / 3, abs=0.01)

    def test_jain_ignores_zero_and_empty(self):
        assert jain_index([0, 0]) == 1.0
        assert jain_index([]) == 1.0

    def test_summary(self):
        s = Summary.of([1, 2, 3, 4, 5])
        assert s.n == 5 and s.mean == 3 and s.p50 == 3
        assert "n=5" in str(s)

    def test_format_table(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 2.25]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[3].startswith("a")

    def test_format_table_row_width_checked(self):
        with pytest.raises(StatsError):
            format_table(["a", "b"], [[1]])


class TestCollector:
    def test_record_and_series(self):
        c = MetricsCollector("exp")
        c.record("s", 2, 20)
        c.record("s", 1, 10)
        assert c.series("s") == [(1, 10), (2, 20)]
        assert c.ys("s") == [10, 20]

    def test_unknown_series(self):
        with pytest.raises(StatsError):
            MetricsCollector().series("nope")

    def test_xs_union(self):
        c = MetricsCollector()
        c.record("a", 1, 0)
        c.record("b", 2, 0)
        assert c.xs() == [1, 2]

    def test_value_at(self):
        c = MetricsCollector()
        c.record("a", 1, 5)
        assert c.value_at("a", 1) == 5
        assert c.value_at("a", 9) is None

    def test_as_table_fills_gaps(self):
        c = MetricsCollector("fig")
        c.record("a", 1, 5)
        c.record("b", 2, 6)
        table = c.as_table(x_label="load")
        assert "fig" in table and "-" in table

    def test_crossover(self):
        c = MetricsCollector()
        for x, (ya, yb) in enumerate([(1, 2), (2, 2), (3, 2)]):
            c.record("a", x, ya)
            c.record("b", x, yb)
        assert c.crossover("a", "b") == 2

    def test_no_crossover(self):
        c = MetricsCollector()
        c.record("a", 0, 1)
        c.record("b", 0, 2)
        assert c.crossover("a", "b") is None

    def test_summary(self):
        c = MetricsCollector()
        for i in range(10):
            c.record("s", i, float(i))
        assert c.summary("s").n == 10


class TestSnapshotDelta:
    def test_delta_counts_increments_only(self):
        before = {"farm": {"jobs": 3, "encodes": 2}}
        after = {"farm": {"jobs": 5, "encodes": 2}, "cache": {"hits": 1}}
        assert snapshot_delta(before, after) == {
            "farm": {"jobs": 2},
            "cache": {"hits": 1},
        }

    def test_identical_snapshots_yield_empty_delta(self):
        snap = {"farm": {"jobs": 3}}
        assert snapshot_delta(snap, snap) == {}

    def test_merge_snapshot_folds_into_registry(self):
        bag = get_counters("snapshot_delta_test")
        base = bag.get("k")
        merge_snapshot({"snapshot_delta_test": {"k": 4}})
        assert bag.get("k") == base + 4

    def test_round_trip_from_a_foreign_registry(self):
        # simulate a worker: increments recorded against a fresh registry
        worker = Counters("worker_farm")
        before = {"worker_farm": worker.as_dict()}
        worker.inc("codec_runs")
        worker.inc("encoded_bytes", 512)
        delta = snapshot_delta(before, {"worker_farm": worker.as_dict()})
        parent = get_counters("worker_farm")
        runs = parent.get("codec_runs")
        merge_snapshot(delta)
        assert parent.get("codec_runs") == runs + 1
        assert parent.get("encoded_bytes") >= 512
