"""Unit tests for the XOCPN compiler (repro.core.xocpn)."""

import pytest

from repro.core.analysis import is_safe
from repro.core.ocpn import MediaLeaf, SpecError, parallel, sequence, spec_duration
from repro.core.xocpn import (
    Channel,
    QoSRequirement,
    compile_xocpn,
    measure_stalls,
)


def two_segment_spec():
    return sequence(
        parallel(MediaLeaf("v1", 10), MediaLeaf("s1", 10)),
        parallel(MediaLeaf("v2", 5), MediaLeaf("s2", 5)),
    )


FAST = {"net": Channel("net", 1e9)}


class TestChannel:
    def test_transfer_time(self):
        assert Channel("c", 1000).transfer_time(2500) == pytest.approx(2.5)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            Channel("c", 0)

    def test_requirement_rejects_negative_size(self):
        with pytest.raises(ValueError):
            QoSRequirement(-1, "net")


class TestCompile:
    def test_unknown_channel_rejected(self):
        with pytest.raises(SpecError):
            compile_xocpn(two_segment_spec(), FAST, {"v1": QoSRequirement(1, "zzz")})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SpecError):
            compile_xocpn(two_segment_spec(), FAST, {}, strategy="eager")

    def test_no_requirements_degenerates_to_ocpn(self):
        compiled = compile_xocpn(two_segment_spec(), FAST, {})
        report = measure_stalls(compiled)
        assert report.total_stall == pytest.approx(0.0)
        assert report.makespan == pytest.approx(15.0)

    def test_data_places_created(self):
        compiled = compile_xocpn(
            two_segment_spec(), FAST, {"v1": QoSRequirement(100, "net")}
        )
        assert compiled.data_places == {"v1": "D_v1"}
        assert compiled.channel_places == {"net": "CH_net"}

    def test_zero_size_requirement_skips_fetch(self):
        compiled = compile_xocpn(
            two_segment_spec(), FAST, {"v1": QoSRequirement(0, "net")}
        )
        assert compiled.data_places == {}


class TestBehaviour:
    def test_fast_channel_no_stall(self):
        reqs = {name: QoSRequirement(100, "net") for name in ("v1", "s1", "v2", "s2")}
        compiled = compile_xocpn(two_segment_spec(), FAST, reqs)
        report = measure_stalls(compiled)
        assert report.max_stall < 1e-3
        assert report.stalled_leaves == []

    def test_slow_channel_stalls_prefetch_less_than_lazy(self):
        slow = {"net": Channel("net", 1000.0)}
        reqs = {
            "v1": QoSRequirement(2000, "net"),
            "v2": QoSRequirement(500, "net"),
            "s2": QoSRequirement(500, "net"),
        }
        pre = measure_stalls(compile_xocpn(two_segment_spec(), slow, reqs, strategy="prefetch"))
        lazy = measure_stalls(compile_xocpn(two_segment_spec(), slow, reqs, strategy="lazy"))
        assert pre.makespan < lazy.makespan
        assert pre.total_stall < lazy.total_stall

    def test_lazy_stall_equals_transfer_time_on_critical_path(self):
        slow = {"net": Channel("net", 100.0)}
        reqs = {"v2": QoSRequirement(300, "net")}  # 3s transfer
        compiled = compile_xocpn(two_segment_spec(), slow, reqs, strategy="lazy")
        report = measure_stalls(compiled)
        # v2 starts at nominal 10s + 3s transfer
        assert report.per_leaf["v2"] == pytest.approx(3.0)
        assert report.makespan == pytest.approx(18.0)

    def test_prefetch_hides_transfer_behind_earlier_playout(self):
        slow = {"net": Channel("net", 100.0)}
        reqs = {"v2": QoSRequirement(300, "net")}  # 3s transfer, 10s of lead time
        compiled = compile_xocpn(two_segment_spec(), slow, reqs, strategy="prefetch")
        report = measure_stalls(compiled)
        assert report.per_leaf["v2"] == pytest.approx(0.0)
        assert report.makespan == pytest.approx(15.0)

    def test_shared_channel_serializes_transfers(self):
        # two 2s transfers share one channel: second waits for first
        slow = {"net": Channel("net", 100.0)}
        reqs = {
            "v1": QoSRequirement(200, "net"),
            "s1": QoSRequirement(200, "net"),
        }
        compiled = compile_xocpn(two_segment_spec(), slow, reqs, strategy="prefetch")
        report = measure_stalls(compiled)
        stalls = sorted(report.per_leaf[l] for l in ("v1", "s1"))
        assert stalls == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_two_channels_parallel_transfers(self):
        channels = {"c1": Channel("c1", 100.0), "c2": Channel("c2", 100.0)}
        reqs = {
            "v1": QoSRequirement(200, "c1"),
            "s1": QoSRequirement(200, "c2"),
        }
        compiled = compile_xocpn(two_segment_spec(), channels, reqs, strategy="prefetch")
        report = measure_stalls(compiled)
        assert report.per_leaf["v1"] == pytest.approx(2.0)
        assert report.per_leaf["s1"] == pytest.approx(2.0)

    def test_safe_with_channels(self):
        slow = {"net": Channel("net", 1000.0)}
        reqs = {"v1": QoSRequirement(100, "net"), "v2": QoSRequirement(100, "net")}
        compiled = compile_xocpn(two_segment_spec(), slow, reqs)
        assert is_safe(compiled.timed_net.net)

    def test_stall_report_properties(self):
        slow = {"net": Channel("net", 1000.0)}
        reqs = {"v1": QoSRequirement(3000, "net")}
        report = measure_stalls(compile_xocpn(two_segment_spec(), slow, reqs))
        assert report.max_stall == pytest.approx(3.0)
        assert report.stalled_leaves  # at least v1
        assert report.ideal_makespan == pytest.approx(15.0)
