"""Unit tests for content-tree restructuring (move/promote/demote) and the
SVG timeline export."""

import pytest

from repro.contenttree import ContentTree, ContentTreeError, build_example_tree
from repro.core.intervals import Interval
from repro.core.scheduler import PresentationTimeline, TimelineEntry
from repro.core.visualize import timeline_to_svg


class TestMove:
    def test_move_subtree_changes_levels(self):
        tree = build_example_tree()  # S0(S1(S2,S3),S4)
        tree.move("S2", parent="S4")
        assert tree.node("S2").parent.name == "S4"
        assert tree.node("S2").level == 2
        assert [c.name for c in tree.node("S1").children] == ["S3"]
        tree.validate()

    def test_move_keeps_subtree(self):
        tree = build_example_tree()
        tree.move("S1", parent="S4")
        assert tree.node("S1").level == 2
        assert tree.node("S2").level == 3  # shifted with its parent
        tree.validate()

    def test_move_under_descendant_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.move("S1", parent="S2")
        with pytest.raises(ContentTreeError):
            tree.move("S1", parent="S1")

    def test_move_root_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.move("S0", parent="S1")

    def test_move_with_position(self):
        tree = build_example_tree()
        tree.move("S4", parent="S1", position=0)
        assert [c.name for c in tree.node("S1").children] == ["S4", "S2", "S3"]

    def test_level_values_follow_move(self):
        tree = build_example_tree()  # [20, 60, 100]
        tree.move("S4", parent="S1")  # S4: level 1 -> 2
        assert tree.level_values() == [20.0, 40.0, 100.0]


class TestPromoteDemote:
    def test_promote_moves_one_level_up(self):
        tree = build_example_tree()
        tree.promote("S2")  # child of S1 -> sibling after S1
        assert tree.node("S2").level == 1
        assert [c.name for c in tree.node("S0").children] == ["S1", "S2", "S4"]

    def test_promote_at_level_one_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.promote("S1")
        with pytest.raises(ContentTreeError):
            tree.promote("S0")

    def test_demote_moves_under_previous_sibling(self):
        tree = build_example_tree()
        tree.demote("S4")  # sibling of S1 -> child of S1
        assert tree.node("S4").parent.name == "S1"
        assert tree.node("S4").level == 2

    def test_demote_first_sibling_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.demote("S1")  # no preceding sibling
        with pytest.raises(ContentTreeError):
            tree.demote("S2")

    def test_demote_root_rejected(self):
        tree = build_example_tree()
        with pytest.raises(ContentTreeError):
            tree.demote("S0")

    def test_promote_then_demote_round_trips(self):
        tree = build_example_tree()
        before = tree.render()
        tree.promote("S3")  # becomes sibling right after S1
        tree.demote("S3")  # back under S1 (its preceding sibling), appended
        assert tree.node("S3").parent.name == "S1"
        assert tree.level_values() == build_example_tree().level_values()


class TestSvgExport:
    def timeline(self):
        return PresentationTimeline(
            [
                TimelineEntry("video", Interval(0, 30)),
                TimelineEntry("slide1", Interval(0, 15)),
                TimelineEntry("slide2", Interval(15, 30)),
            ]
        )

    def test_valid_svg_document(self):
        svg = timeline_to_svg(self.timeline())
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= 4  # background + 3 bars

    def test_one_row_per_media(self):
        svg = timeline_to_svg(self.timeline())
        for name in ("video", "slide1", "slide2"):
            assert f">{name}</text>" in svg

    def test_tooltips_carry_intervals(self):
        svg = timeline_to_svg(self.timeline())
        assert "<title>video: 0s – 30s</title>" in svg

    def test_ruler_spans_duration(self):
        svg = timeline_to_svg(self.timeline())
        assert ">0</text>" in svg
        assert ">28</text>" in svg or ">30</text>" in svg

    def test_empty_timeline_renders(self):
        svg = timeline_to_svg(PresentationTimeline())
        assert svg.startswith("<svg ") and svg.endswith("</svg>")

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET

        root = ET.fromstring(timeline_to_svg(self.timeline()))
        assert root.tag.endswith("svg")
