"""Unit tests for the HTML pages of the web publishing manager."""

import pytest

from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.streaming import MediaServer
from repro.web import HTTPClient, VirtualNetwork, form_encode
from repro.web.pages import (
    render_catalog,
    render_publish_form,
    render_publish_result,
)


class TestRenderers:
    def test_form_contains_paper_fields(self):
        page = render_publish_form(["dsl-256k", "lan-1m"])
        for field in ("video_path", "slide_dir", "point", "profile", "protect"):
            assert f'name="{field}"' in page
        assert '<option value="dsl-256k">' in page
        assert page.startswith("<!DOCTYPE html>")

    def test_form_error_banner(self):
        page = render_publish_form([], error="missing video path")
        assert "missing video path" in page

    def test_form_escapes_html(self):
        page = render_publish_form(['<script>"x"'])
        assert "<script>" not in page.split("<style>")[1]
        assert "&lt;script&gt;" in page

    def test_catalog_rows_and_links(self):
        page = render_catalog([
            {"point": "p1", "title": "Lecture <1>", "duration": 30.0,
             "url": "http://server:8080/lod/p1"},
        ])
        assert "Lecture &lt;1&gt;" in page
        assert 'href="http://server:8080/lod/p1"' in page
        assert 'href="/publish"' in page

    def test_result_page_links_replay(self):
        page = render_publish_result({"url": "http://s/lod/x", "point": "x"})
        assert 'href="http://s/lod/x"' in page
        assert "replay the representation" in page


@pytest.fixture
def web_world():
    lecture = Lecture.from_slide_durations(
        "Pages", "Prof", [10.0, 10.0], slide_width=160, slide_height=120
    )
    net = VirtualNetwork()
    net.connect("teacher", "server", bandwidth=10e6, delay=0.005)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v", "/s", lecture)
    WebPublishingManager(server, store)
    return net, HTTPClient(net, "teacher")


class TestServedPages:
    def test_get_publish_returns_form(self, web_world):
        net, client = web_world
        response = client.get("http://server:8080/publish")
        assert response.ok
        assert response.headers.get("Content-Type") == "text/html"
        assert 'name="video_path"' in response.body

    def test_catalog_page_lists_published(self, web_world):
        net, client = web_world
        client.post(
            "http://server:8080/publish",
            body=form_encode({"video_path": "/v", "slide_dir": "/s",
                              "point": "pg1"}),
        )
        page = client.get("http://server:8080/").body
        assert "pg1" in page and "/lod/pg1" in page

    def test_catalog_page_empty_initially(self, web_world):
        net, client = web_world
        response = client.get("http://server:8080/")
        assert response.ok and "<table>" in response.body

    def test_root_does_not_shadow_other_routes(self, web_world):
        net, client = web_world
        assert client.get("http://server:8080/catalog").body == []
        assert client.get("http://server:8080/lod/none").status == 404
