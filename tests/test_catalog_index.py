"""The searchable lecture catalog (:mod:`repro.catalog`).

The catalog is built from artifacts the system already publishes —
header metadata, SLIDE script commands, the ASF simple index — so these
tests pin three promises:

* **determinism**: the same published grid always yields the same
  catalog export, search ranking, and TOC (byte-for-byte);
* **navigability**: ``seek_to_slide`` resolves to exactly the packet
  run playback would fetch — a player seeking through the catalog
  renders the same units as one that started at the slide's position
  (the manual ``expect_replay()`` path);
* **freshness**: a republish re-indexes the variant, bumping the
  recorded cache key (what prefetch and invalidation key off).
"""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.catalog import CatalogIndex, tokenize
from repro.lod import Lecture, LODPublisher
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import VirtualNetwork

PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4


def make_asf(file_id="lec", title=None, duration=DURATION, slides=SLIDES):
    per_slide = duration / slides
    encoder = ASFEncoder(EncoderConfig(profile=PROFILE))
    asf = encoder.encode_file(
        file_id=file_id,
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(slides)]
        ),
    )
    if title is not None:
        asf.header.metadata["title"] = title
    return asf


def grid_lecture(durations=(12, 8, 10, 6)):
    return Lecture.from_slide_durations(
        "Queueing Theory", "Prof", list(durations),
        importances=[0, 1, 0, 1], slide_width=160, slide_height=120,
    )


class TestTokenize:
    def test_lowercases_and_splits_on_non_alnum(self):
        assert tokenize("Queueing-Theory, Part 2!") == [
            "queueing", "theory", "part", "2",
        ]

    def test_empty(self):
        assert tokenize("--- ") == []


class TestCatalogBuild:
    def test_toc_lists_every_slide_in_order(self):
        asf = make_asf()
        catalog = CatalogIndex()
        catalog.add_variant("lec", asf)
        toc = catalog.toc("lec")
        assert [ref.slide for ref in toc] == ["s0", "s1", "s2", "s3"]
        assert [ref.timestamp for ref in toc] == [0.0, 5.0, 10.0, 15.0]

    def test_slide_refs_resolve_to_simple_index_offsets(self):
        asf = make_asf()
        catalog = CatalogIndex()
        catalog.add_variant("lec", asf)
        index = asf.ensure_index()
        for ref in catalog.toc("lec"):
            assert ref.packet_sequence == index.seek(ref.timestamp)
            # the run playback would fetch starts exactly there
            run = asf.packets_from(ref.timestamp)
            assert run[0].sequence == ref.packet_sequence

    def test_entry_carries_cache_key_and_wire_size(self):
        asf = make_asf()
        catalog = CatalogIndex()
        entry = catalog.add_variant("lec", asf)
        assert entry.cache_key == asf.fingerprint()
        assert entry.size_bytes == len(asf.header.pack()) + sum(
            len(b) for b in asf.packed_packets()
        )

    def test_reindex_replaces_entry_and_bumps_cache_key(self):
        catalog = CatalogIndex()
        old = catalog.add_variant("lec", make_asf(title="Old Title"))
        new = catalog.add_variant(
            "lec", make_asf(duration=24.0, title="New Title")
        )
        assert len(catalog) == 1
        assert catalog.entry("lec").cache_key == new.cache_key
        assert new.cache_key != old.cache_key
        # old title's postings are gone with the old entry
        assert catalog.search("old") == []
        assert [h.point for h in catalog.search("new")] == ["lec"]

    def test_determinism_same_grid_same_export(self):
        builds = []
        for _ in range(2):
            catalog = CatalogIndex()
            result = LODPublisher(
                renditions=[PROFILE], catalog=catalog
            ).publish(grid_lecture(), "qt")
            assert result.variants
            builds.append(catalog.export())
        assert builds[0] == builds[1]

    def test_grid_variants_share_lecture_name(self):
        catalog = CatalogIndex()
        LODPublisher(renditions=[PROFILE], catalog=catalog).publish(
            grid_lecture(), "qt"
        )
        variants = catalog.variants_of("qt")
        assert variants
        assert all(v.lecture == "qt" for v in variants)
        assert all(v.point.startswith("qt-l") for v in variants)


class TestSearch:
    def build(self):
        catalog = CatalogIndex()
        catalog.add_variant("intro", make_asf("intro", title="Intro to Queueing"))
        catalog.add_variant("adv", make_asf("adv", title="Advanced Networks"))
        return catalog

    def test_title_tokens_outweigh_command_tokens(self):
        catalog = self.build()
        # "queueing" appears only in intro's title; slide names s0..s3
        # appear as command parameters in both
        hits = catalog.search("queueing s1")
        assert hits[0].point == "intro"
        assert hits[0].score > hits[1].score

    def test_ties_break_lexicographically(self):
        catalog = self.build()
        hits = catalog.search("s2")  # same command weight in both
        assert [h.point for h in hits] == ["adv", "intro"]
        assert hits[0].score == hits[1].score

    def test_search_is_deterministic(self):
        catalog = self.build()
        first = catalog.search("queueing networks s0")
        for _ in range(3):
            assert catalog.search("queueing networks s0") == first

    def test_limit_and_miss(self):
        catalog = self.build()
        assert catalog.search("s3", limit=1)[0].point == "adv"
        assert catalog.search("nonexistent-word") == []

    def test_matched_tokens_reported(self):
        catalog = self.build()
        (hit,) = catalog.search("advanced networks")
        assert hit.matched == ("advanced", "networks")


class TestSeekToSlide:
    def test_unknown_slide_raises(self):
        catalog = CatalogIndex()
        catalog.add_variant("lec", make_asf())
        with pytest.raises(KeyError):
            catalog.seek_to_slide("lec", "s99")
        with pytest.raises(KeyError):
            catalog.seek_to_slide("ghost", "s0")

    def test_catalog_seek_matches_manual_replay_seek(self):
        """A player seeking via the catalog renders the same tail as one
        started at the slide position (the ``expect_replay()`` path)."""
        asf = make_asf()
        catalog = CatalogIndex()
        catalog.add_variant("lec", asf)
        ref = catalog.seek_to_slide("lec", "s2")
        assert ref.timestamp == 10.0

        net = VirtualNetwork()
        origin = MediaServer(net, "origin", port=8080, pacing_quantum=0.5)
        origin.publish("lec", asf)
        for host in ("nav", "direct"):
            net.connect("origin", host, bandwidth=2_000_000, delay=0.02)
        url = f"http://origin:8080/lod/lec"

        # catalog-navigating player: start from zero, then jump to s2
        nav = MediaPlayer(net, "nav", user="nav")
        nav.connect(url)
        nav.play()
        net.simulator.run_until(4.0)
        nav.seek(ref.timestamp)
        net.simulator.run_until(80.0)
        if nav.state is not PlayerState.FINISHED:
            nav.stop()

        # reference player: plays the slide's tail directly
        direct = MediaPlayer(net, "direct", user="direct")
        direct.connect(url)
        direct.play(start=ref.timestamp)
        net.simulator.run_until(160.0)
        if direct.state is not PlayerState.FINISHED:
            direct.stop()

        def keys(report):
            # everything rendered at/after the slide's playback position
            return {
                (r.unit.stream_number, r.unit.object_number)
                for r in report.rendered
                if r.position >= ref.timestamp
            }

        assert keys(nav.report()) == keys(direct.report())

    def test_slide_command_fires_after_catalog_seek(self):
        asf = make_asf()
        catalog = CatalogIndex()
        catalog.add_variant("lec", asf)
        ref = catalog.seek_to_slide("lec", "s3")

        net = VirtualNetwork()
        origin = MediaServer(net, "origin", port=8080, pacing_quantum=0.5)
        origin.publish("lec", asf)
        net.connect("origin", "nav", bandwidth=2_000_000, delay=0.02)
        player = MediaPlayer(net, "nav", user="nav")
        player.connect("http://origin:8080/lod/lec")
        player.play(start=ref.timestamp)
        net.simulator.run_until(60.0)
        if player.state is not PlayerState.FINISHED:
            player.stop()
        fired = [c.command.parameter for c in player.report().commands
                 if c.command.type == "SLIDE"]
        assert fired and fired[0] == "s3"
