"""Unit tests for presentation timelines and QoS metrics (repro.core.scheduler)."""

import pytest

from repro.core.intervals import Interval
from repro.core.ocpn import MediaLeaf, compile_spec, parallel, sequence
from repro.core.scheduler import (
    PresentationTimeline,
    TimelineEntry,
    qos_metrics,
    timeline_for,
)


def sample_timeline():
    return PresentationTimeline(
        [
            TimelineEntry("video", Interval(0, 10)),
            TimelineEntry("slide1", Interval(0, 5)),
            TimelineEntry("slide2", Interval(5, 10)),
        ]
    )


class TestTimeline:
    def test_sorted_by_start(self):
        t = PresentationTimeline(
            [TimelineEntry("b", Interval(5, 6)), TimelineEntry("a", Interval(0, 1))]
        )
        assert [e.media for e in t] == ["a", "b"]

    def test_duration(self):
        assert sample_timeline().duration == 10

    def test_empty_duration_zero(self):
        assert PresentationTimeline().duration == 0.0

    def test_active_at(self):
        t = sample_timeline()
        assert t.active_at(3) == ["slide1", "video"]
        assert t.active_at(5) == ["slide2", "video"]
        assert t.active_at(10) == []

    def test_media_names(self):
        assert sample_timeline().media_names() == ["slide1", "slide2", "video"]

    def test_entry_for(self):
        assert sample_timeline().entry_for("video").end == 10
        with pytest.raises(KeyError):
            sample_timeline().entry_for("zzz")

    def test_edges_stop_before_start_at_same_instant(self):
        edges = sample_timeline().edges()
        idx = {(kind, media): i for i, (_, kind, media) in enumerate(edges)}
        assert idx[("stop", "slide1")] < idx[("start", "slide2")]

    def test_edges_complete(self):
        edges = sample_timeline().edges()
        assert len(edges) == 6

    def test_from_schedule(self):
        t = PresentationTimeline.from_schedule({"x": Interval(1, 2)})
        assert len(t) == 1 and t.entry_for("x").start == 1

    def test_from_execution_matches_nominal(self):
        spec = sequence(
            parallel(MediaLeaf("v", 10), MediaLeaf("s", 10)), MediaLeaf("tail", 5)
        )
        compiled = compile_spec(spec)
        measured = PresentationTimeline.from_execution(compiled)
        nominal = timeline_for(compiled)
        assert measured.max_drift(nominal) == pytest.approx(0.0)


class TestDrift:
    def test_drift_against_identical_is_zero(self):
        t = sample_timeline()
        assert all(v == 0 for v in t.drift_against(sample_timeline()).values())

    def test_drift_measures_endpoint_error(self):
        shifted = PresentationTimeline(
            [
                TimelineEntry("video", Interval(0.5, 10.5)),
                TimelineEntry("slide1", Interval(0, 5)),
                TimelineEntry("slide2", Interval(5, 10)),
            ]
        )
        drift = shifted.drift_against(sample_timeline())
        assert drift["video"] == pytest.approx(0.5)
        assert drift["slide1"] == 0

    def test_missing_media_is_infinite_drift(self):
        partial = PresentationTimeline([TimelineEntry("video", Interval(0, 10))])
        drift = partial.drift_against(sample_timeline())
        assert drift["slide1"] == float("inf")

    def test_max_drift(self):
        partial = PresentationTimeline([TimelineEntry("video", Interval(0, 10))])
        assert partial.max_drift(sample_timeline()) == float("inf")


class TestQoSMetrics:
    def test_perfect_playback(self):
        t = sample_timeline()
        m = qos_metrics(t, sample_timeline())
        assert m.max_sync_error == 0
        assert m.missing_objects == 0
        assert m.makespan_inflation == pytest.approx(0.0)

    def test_inflation(self):
        slow = PresentationTimeline(
            [
                TimelineEntry("video", Interval(0, 12)),
                TimelineEntry("slide1", Interval(0, 5)),
                TimelineEntry("slide2", Interval(5, 10)),
            ]
        )
        m = qos_metrics(slow, sample_timeline())
        assert m.makespan_inflation == pytest.approx(0.2)
        assert m.max_sync_error == pytest.approx(2.0)

    def test_missing_counted_not_averaged(self):
        partial = PresentationTimeline(
            [
                TimelineEntry("video", Interval(0, 10)),
                TimelineEntry("slide1", Interval(0.1, 5)),
            ]
        )
        m = qos_metrics(partial, sample_timeline())
        assert m.missing_objects == 1
        assert m.mean_sync_error == pytest.approx(0.05)

    def test_zero_nominal_makespan(self):
        empty = PresentationTimeline()
        m = qos_metrics(empty, empty)
        assert m.makespan_inflation == 0.0
