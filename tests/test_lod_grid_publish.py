"""LODPublisher: the levels × renditions grid with segment-level reuse."""

import pytest

from repro.asf import TYPE_SLIDE, TYPE_TREE_LEVEL, EncodeCache, EncodeFarm
from repro.lod import Lecture, LectureError, LODPublisher
from repro.lod.lecture import LectureSegment
from repro.media import get_profile
from repro.media.objects import ImageObject
from repro.streaming import MediaServer
from repro.web import VirtualNetwork

RENDITIONS = [get_profile("modem-56k"), get_profile("dsl-256k")]


def lecture():
    return Lecture.from_slide_durations(
        "grid-talk",
        "Prof",
        [12, 8, 10, 6, 9, 5],
        importances=[0, 1, 2, 0, 1, 2],
        slide_width=160,
        slide_height=120,
    )


def edit_slide(lec, index, new_seed):
    """The 'teacher fixed one slide' republish: same timeline, one image."""
    segments = []
    for i, s in enumerate(lec.segments):
        slide = s.slide
        if i == index:
            slide = ImageObject(
                new_seed, s.duration, width=slide.width, height=slide.height
            )
        segments.append(
            LectureSegment(s.name, slide, s.start, s.duration, s.importance)
        )
    return Lecture(
        title=lec.title,
        author=lec.author,
        video=lec.video,
        audio=lec.audio,
        segments=segments,
    )


class TestGridShape:
    def test_publishes_every_cell(self):
        result = LODPublisher(renditions=RENDITIONS).publish(lecture(), "p")
        assert result.levels == (1, 2, 3)
        assert result.profiles == ("modem-56k", "dsl-256k")
        assert len(result.variants) == 6

    def test_levels_nest_and_timelines_are_contiguous(self):
        lec = lecture()
        result = LODPublisher(renditions=RENDITIONS).publish(lec, "p")
        previous = None
        for level in result.levels:
            variant = result.variant(level, "dsl-256k")
            expected = [
                s.name for s in lec.segments if s.importance < level
            ]
            assert list(variant.segments) == expected
            assert variant.duration == pytest.approx(
                sum(s.duration for s in lec.segments if s.importance < level)
            )
            if previous is not None:
                it = iter(variant.segments)
                assert all(name in it for name in previous)
            previous = variant.segments

    def test_variant_carries_level_commands(self):
        result = LODPublisher(renditions=RENDITIONS).publish(lecture(), "p")
        variant = result.variant(2, "modem-56k")
        commands = variant.asf.header.script_commands
        levels = [c for c in commands if c.type == TYPE_TREE_LEVEL]
        slides = [c for c in commands if c.type == TYPE_SLIDE]
        assert [(c.timestamp_ms, c.parameter) for c in levels] == [(0, "2")]
        assert [c.parameter for c in slides] == list(variant.segments)
        # slides fire at the *rebased* starts of the shortened timeline
        assert [c.timestamp_ms for c in slides] == [0, 12_000, 20_000, 26_000]

    def test_explicit_levels_validated(self):
        publisher = LODPublisher(renditions=RENDITIONS)
        result = publisher.publish(lecture(), "p", levels=[2])
        assert result.levels == (2,)
        with pytest.raises(LectureError):
            publisher.publish(lecture(), "p", levels=[0])
        with pytest.raises(LectureError):
            publisher.publish(lecture(), "p", levels=[9])

    def test_needs_renditions(self):
        with pytest.raises(LectureError):
            LODPublisher(renditions=[])
        with pytest.raises(LectureError):
            LODPublisher(renditions=[RENDITIONS[0], RENDITIONS[0]])

    def test_unknown_variant_rejected(self):
        result = LODPublisher(renditions=RENDITIONS).publish(lecture(), "p")
        with pytest.raises(LectureError):
            result.variant(1, "lan-1m")


class TestGridReuse:
    def test_dedup_collapses_grid_to_distinct_segment_encodes(self):
        lec = lecture()
        result = LODPublisher(renditions=RENDITIONS).publish(lec, "p")
        segments = len(lec.segments)
        profiles = len(RENDITIONS)
        # distinct work: video + audio per (segment, profile), one image per
        # segment — regardless of how many levels repeat each segment
        assert result.encodes_performed == 2 * segments * profiles + segments
        assert result.jobs_submitted > result.encodes_performed
        assert result.dedup_hits == result.jobs_submitted - result.encodes_performed

    def test_republish_is_pure_cache(self):
        cache = EncodeCache()
        publisher = LODPublisher(renditions=RENDITIONS, cache=cache)
        publisher.publish(lecture(), "p")
        again = publisher.publish(lecture(), "p")
        assert again.encodes_performed == 0
        assert again.cache_hits > 0

    def test_one_slide_edit_encodes_only_the_delta(self):
        cache = EncodeCache()
        publisher = LODPublisher(renditions=RENDITIONS, cache=cache)
        first = publisher.publish(lecture(), "p")
        edited = edit_slide(lecture(), 0, "slide0-fixed")
        second = publisher.publish(edited, "p2")
        # only the replaced slide image is new work
        assert second.encodes_performed == 1
        assert second.encodes_performed <= first.encodes_performed * 0.5
        assert (
            second.variant(1, "dsl-256k").asf.pack()
            != first.variant(1, "dsl-256k").asf.pack()
        )

    def test_publishing_level_k_after_deeper_grid_is_free(self):
        cache = EncodeCache()
        publisher = LODPublisher(renditions=RENDITIONS, cache=cache)
        publisher.publish(lecture(), "p", levels=[3])
        shallow = publisher.publish(lecture(), "p-short", levels=[1, 2])
        assert shallow.encodes_performed == 0


class TestGridServing:
    def make_server(self):
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=2e6, delay=0.02)
        return MediaServer(net, "server", port=8080)

    def test_publishes_points_with_urls(self):
        server = self.make_server()
        publisher = LODPublisher(server, renditions=RENDITIONS)
        result = publisher.publish(lecture(), "course")
        assert len(server.points) == 6
        variant = result.variant(1, "modem-56k")
        assert variant.point == "course-l1-modem-56k"
        assert variant.url == server.url_of("course-l1-modem-56k")

    def test_replace_republishes_colliding_points(self):
        server = self.make_server()
        publisher = LODPublisher(server, renditions=RENDITIONS)
        publisher.publish(lecture(), "course")
        from repro.streaming.server import PublishError

        with pytest.raises(PublishError):
            publisher.publish(lecture(), "course")
        edited = edit_slide(lecture(), 1, "slide1-fixed")
        result = publisher.publish(edited, "course", replace=True)
        assert len(server.points) == 6
        point = server.points["course-l2-dsl-256k"]
        assert point.content is result.variant(2, "dsl-256k").asf
