"""Consistent-hash placement: determinism, ring stability, spill order.

The :class:`~repro.streaming.edge.EdgeDirectory` contracts the serving
tier relies on:

* placement is a pure function of (seed, membership, key) — same inputs,
  same edge, across directory instances and processes;
* membership churn moves a *bounded* share of keys (the consistent-hash
  property): removing one of E edges reassigns roughly 1/E of keys, and
  no key moves between two edges that both stayed;
* admission control skips full/down edges in deterministic spill order;
* exhausted rings raise :class:`PlacementError` unless an origin
  fallback URL was configured.
"""

import pytest

from repro.streaming import EdgeDirectory, PlacementError

EDGES = [f"edge{i}" for i in range(8)]
KEYS = [f"client{i}|lecture" for i in range(400)]


def build(names=EDGES, *, seed=7, vnodes=64, capacity=None, origin_url=None):
    directory = EdgeDirectory(vnodes=vnodes, seed=seed, origin_url=origin_url)
    for name in names:
        directory.add_edge(
            name, url=f"http://{name}:8080", capacity=capacity
        )
    return directory


class TestDeterminism:
    def test_same_seed_same_placement(self):
        a = build(seed=7)
        b = build(seed=7)
        assert [a.place(k) for k in KEYS] == [b.place(k) for k in KEYS]

    def test_registration_order_is_irrelevant(self):
        a = build(EDGES, seed=7)
        b = build(list(reversed(EDGES)), seed=7)
        assert [a.place(k) for k in KEYS] == [b.place(k) for k in KEYS]

    def test_different_seed_different_ring(self):
        a = build(seed=7)
        b = build(seed=8)
        assert [a.place(k) for k in KEYS] != [b.place(k) for k in KEYS]

    def test_every_edge_gets_a_share(self):
        directory = build()
        placed = {directory.place(k) for k in KEYS}
        assert placed == set(EDGES)

    def test_url_for_builds_playback_url(self):
        directory = build()
        url = directory.url_for("client3", "lecture")
        assert url.startswith("http://edge") and url.endswith("/lod/lecture")


class TestRingStability:
    def test_leave_moves_only_the_departed_edges_keys(self):
        full = build()
        before = {k: full.place(k) for k in KEYS}
        reduced = build()
        reduced.remove_edge("edge3")
        after = {k: reduced.place(k) for k in KEYS}
        for key in KEYS:
            if before[key] != "edge3":
                # keys on surviving edges must not reshuffle among them
                assert after[key] == before[key]
        displaced = [k for k in KEYS if before[k] == "edge3"]
        assert displaced  # edge3 owned a share before leaving

    def test_join_steals_a_bounded_share(self):
        base = build()
        before = {k: base.place(k) for k in KEYS}
        grown = build(EDGES + ["edge8"])
        after = {k: grown.place(k) for k in KEYS}
        moved = sum(1 for k in KEYS if before[k] != after[k])
        # the newcomer should take about 1/9 of the keys; allow slack for
        # vnode variance but far below a rehash-everything shuffle
        assert 0 < moved < len(KEYS) * 0.35
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == "edge8"  # moves only *to* the joiner


class TestAdmission:
    def test_down_edge_is_skipped(self):
        directory = build()
        victims = [k for k in KEYS if directory.place(k) == "edge5"][:10]
        directory.mark_down("edge5")
        for key in victims:
            fallback = directory.place(key)
            assert fallback != "edge5"
            # the fallback is that key's next ring node, not arbitrary
            order = directory.spill_order(key)
            assert fallback == next(n for n in order if n != "edge5")
        directory.mark_up("edge5")
        assert directory.place(victims[0]) == "edge5"

    def test_capacity_spills_to_next_ring_node(self):
        directory = build(capacity=2)
        key = KEYS[0]
        order = directory.spill_order(key)
        directory.set_load(order[0], 2)  # primary full
        assert directory.place(key) == order[1]
        directory.set_load(order[1], 2)
        assert directory.place(key) == order[2]

    def test_spill_order_lists_every_edge_once(self):
        directory = build()
        order = directory.spill_order(KEYS[0])
        assert sorted(order) == sorted(EDGES)

    def test_exhausted_ring_raises(self):
        directory = build(["edge0", "edge1"])
        directory.mark_down("edge0")
        directory.mark_down("edge1")
        with pytest.raises(PlacementError):
            directory.place(KEYS[0])

    def test_origin_fallback_when_every_edge_refuses(self):
        directory = build(
            ["edge0"], origin_url="http://origin:8080"
        )
        directory.mark_down("edge0")
        assert (
            directory.url_for("client0", "lecture")
            == "http://origin:8080/lod/lecture"
        )

    def test_duplicate_registration_rejected(self):
        directory = build(["edge0"])
        with pytest.raises(PlacementError):
            directory.add_edge("edge0", url="http://elsewhere:1")
