"""Unit tests for Allen's interval algebra (repro.core.intervals)."""

import pytest

from repro.core.intervals import (
    Interval,
    TemporalRelation,
    relation_between,
    schedule_pair,
)

R = TemporalRelation


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(1.0, 1.0)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_duration(self):
        assert Interval(1.0, 4.5).duration == 3.5

    def test_shifted(self):
        assert Interval(1, 2).shifted(3) == Interval(4, 5)

    def test_overlaps_with(self):
        assert Interval(0, 2).overlaps_with(Interval(1, 3))
        assert not Interval(0, 1).overlaps_with(Interval(1, 2))


class TestRelationBetween:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (Interval(0, 1), Interval(2, 3), R.BEFORE),
            (Interval(2, 3), Interval(0, 1), R.AFTER),
            (Interval(0, 1), Interval(1, 2), R.MEETS),
            (Interval(1, 2), Interval(0, 1), R.MET_BY),
            (Interval(0, 2), Interval(1, 3), R.OVERLAPS),
            (Interval(1, 3), Interval(0, 2), R.OVERLAPPED_BY),
            (Interval(1, 2), Interval(0, 3), R.DURING),
            (Interval(0, 3), Interval(1, 2), R.CONTAINS),
            (Interval(0, 1), Interval(0, 2), R.STARTS),
            (Interval(0, 2), Interval(0, 1), R.STARTED_BY),
            (Interval(1, 2), Interval(0, 2), R.FINISHES),
            (Interval(0, 2), Interval(1, 2), R.FINISHED_BY),
            (Interval(0, 2), Interval(0, 2), R.EQUALS),
        ],
    )
    def test_all_thirteen(self, a, b, expected):
        assert relation_between(a, b) is expected

    def test_inverse_is_involutive(self):
        for rel in R:
            assert rel.inverse().inverse() is rel

    def test_equals_self_inverse(self):
        assert R.EQUALS.inverse() is R.EQUALS

    def test_relation_symmetry(self):
        a, b = Interval(0, 2), Interval(1, 3)
        assert relation_between(a, b).inverse() is relation_between(b, a)

    def test_canonicalize(self):
        rel, swapped = R.CONTAINS.canonicalize()
        assert rel is R.DURING and swapped
        rel, swapped = R.MEETS.canonicalize()
        assert rel is R.MEETS and not swapped


class TestSchedulePair:
    def test_equals(self):
        a, b = schedule_pair(R.EQUALS, 5, 5)
        assert a == b == Interval(0, 5)

    def test_equals_mismatched_durations_rejected(self):
        with pytest.raises(ValueError):
            schedule_pair(R.EQUALS, 5, 6)

    def test_meets(self):
        a, b = schedule_pair(R.MEETS, 3, 4)
        assert a == Interval(0, 3) and b == Interval(3, 7)

    def test_before_needs_positive_delay(self):
        with pytest.raises(ValueError):
            schedule_pair(R.BEFORE, 3, 4)

    def test_before(self):
        a, b = schedule_pair(R.BEFORE, 3, 4, delay=2)
        assert a == Interval(0, 3) and b == Interval(5, 9)

    def test_starts(self):
        a, b = schedule_pair(R.STARTS, 3, 5)
        assert a.start == b.start == 0 and a.end == 3 and b.end == 5

    def test_starts_requires_shorter_a(self):
        with pytest.raises(ValueError):
            schedule_pair(R.STARTS, 5, 3)

    def test_finishes(self):
        a, b = schedule_pair(R.FINISHES, 3, 5)
        assert a == Interval(2, 5) and b == Interval(0, 5)

    def test_overlaps(self):
        a, b = schedule_pair(R.OVERLAPS, 4, 4, delay=2)
        assert a == Interval(0, 4) and b == Interval(2, 6)

    def test_overlaps_delay_bounds(self):
        with pytest.raises(ValueError):
            schedule_pair(R.OVERLAPS, 4, 4, delay=5)
        with pytest.raises(ValueError):
            schedule_pair(R.OVERLAPS, 4, 1, delay=1)  # b would end inside a

    def test_during(self):
        a, b = schedule_pair(R.DURING, 2, 10, delay=3)
        assert a == Interval(3, 5) and b == Interval(0, 10)

    def test_during_must_fit(self):
        with pytest.raises(ValueError):
            schedule_pair(R.DURING, 8, 10, delay=3)

    def test_inverse_relations_swap(self):
        a1, b1 = schedule_pair(R.CONTAINS, 10, 2, delay=3)
        # a contains b == b during a
        b2, a2 = schedule_pair(R.DURING, 2, 10, delay=3)
        assert a1 == a2 and b1 == b2

    def test_origin_shift(self):
        a, b = schedule_pair(R.MEETS, 3, 4, origin=10)
        assert a == Interval(10, 13) and b == Interval(13, 17)

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ValueError):
            schedule_pair(R.MEETS, 0, 4)

    def test_schedule_matches_classification(self):
        """schedule_pair and relation_between agree on every canonical relation."""
        cases = [
            (R.BEFORE, 3, 4, 1.0),
            (R.MEETS, 3, 4, 0.0),
            (R.OVERLAPS, 4, 4, 2.0),
            (R.DURING, 2, 10, 3.0),
            (R.STARTS, 3, 5, 0.0),
            (R.FINISHES, 3, 5, 0.0),
            (R.EQUALS, 5, 5, 0.0),
        ]
        for rel, da, db, delay in cases:
            a, b = schedule_pair(rel, da, db, delay=delay)
            assert relation_between(a, b) is rel, rel
