"""Reconnect determinism: chaos runs must replay byte-identically.

``RecoveryConfig.reconnect_jitter`` de-synchronizes mass reconnects (no
thundering herd after an edge dies) — but the jitter is derived from a
sha1 of ``(player, stalled session, attempt)``, never a wall clock or a
shared RNG, so:

* two runs of the same chaos scenario with the same ``CHAOS_SEED``
  produce *identical* traces, jitter enabled or not;
* ``reconnect_jitter=0`` (the default) reproduces the un-jittered
  backoff schedule exactly — enabling the knob is opt-in;
* distinct players stalled by the same fault back off by distinct
  amounts: the herd actually spreads.
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import reset_counters
from repro.net import FaultInjector, FaultPlan
from repro.obs import Tracer
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    RecoveryConfig,
    build_edge_tier,
)
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 2
VIEWERS = 3


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def run_chaos(*, jitter: float):
    """One fixed chaos scenario: an edge dies mid-stream under N viewers
    and restarts later; every viewer reconnects. Returns (trace jsonl,
    per-viewer reconnect delay schedule, reports)."""
    reset_counters("edge_cache")
    tracer = Tracer("determinism")
    net = VirtualNetwork()
    tracer.bind_clock(net.simulator)
    net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    origin.publish("lecture", make_asf())
    directory, relays = build_edge_tier(
        net, origin, ["edge0", "edge1"],
        pacing_quantum=0.5, seed=CHAOS_SEED, tracer=tracer,
    )
    config = RecoveryConfig(reconnect_jitter=jitter)
    players = []
    for i in range(VIEWERS):
        host = f"viewer{i}"
        for relay in relays:
            net.connect(relay.host, host, bandwidth=2_000_000, delay=0.02)
            net.link(relay.host, host).rng.seed(1000 + CHAOS_SEED + i)
        player = MediaPlayer(
            net, host, user=host, directory=directory,
            recovery=config, tracer=tracer,
        )
        players.append(player)

    # every viewer watches via its directory placement; kill whichever
    # edge hosts viewer0 while all of them stream, so at least one
    # viewer is guaranteed to ride the crash path
    victim = directory.place("viewer0|lecture")
    injector = FaultInjector(net, tracer=tracer)
    injector.register_directory(directory)
    injector.apply(
        FaultPlan("kill").edge_crash(victim, at=6.0, restart_at=14.0)
    )
    for player in players:
        player.connect(directory.url_for(player.host, "lecture"))
        player.play()
    net.simulator.run_until(80.0)
    reports = []
    for player in players:
        if player.state is not PlayerState.FINISHED:
            player.stop()
        reports.append(player.report())

    # reconstruct each player's reconnect-attempt schedule from the trace
    delays = {}
    for record in tracer.events("playback.reconnect"):
        delays.setdefault(record["attrs"]["client"], []).append(record["t"])
    return tracer.to_jsonl(), delays, reports


class TestReconnectDeterminism:
    def test_same_seed_replays_identical_traces_with_jitter(self):
        trace_a, delays_a, _ = run_chaos(jitter=0.5)
        trace_b, delays_b, _ = run_chaos(jitter=0.5)
        assert delays_a == delays_b
        assert trace_a == trace_b

    def test_zero_jitter_reproduces_unjittered_schedule(self):
        trace_default, _, _ = run_chaos(jitter=0.0)
        trace_again, _, _ = run_chaos(jitter=0.0)
        assert trace_default == trace_again

    def test_jitter_desynchronizes_distinct_players(self):
        _, delays, reports = run_chaos(jitter=0.5)
        # every stalled viewer recovered
        stalled = [
            r for r in reports if r.recovery.get("stalls_detected", 0) >= 1
        ]
        assert stalled, "the crash must have stalled at least one viewer"
        for report in reports:
            assert report.duration_watched == pytest.approx(
                DURATION, abs=0.5
            )
        if len(delays) >= 2:
            # the herd spread: no two stalled players share an identical
            # reconnect timeline
            timelines = [tuple(v) for v in delays.values()]
            assert len(set(timelines)) == len(timelines)
