"""Chaos against the relay tree: dead siblings, stale replicas, races.

The tree fill plan (sibling → parent → origin) must degrade, never
wedge:

* a sibling that **crashes mid-fill** costs the filling leaf one failed
  attempt; the fill falls through to the regional parent and the viewer
  still gets byte-identical content;
* a sibling left holding an **old version** of a republished run is
  rejected *before any media moves* — the origin's authoritative
  describe carries the cache key every non-origin source must match;
* **concurrent misses** on two siblings coalesce: the second leaf finds
  the first's in-flight fill through the directory's pending-holder
  registry and rides it, so the origin's data egress for the whole
  region is one session;
* the headline: a **100k-viewer live flash crowd** over a two-region
  tree — the origin carries one feed per region, every cohort sees the
  broadcast, and the full :class:`TraceChecker` audit (fill loops,
  backbone budget honesty, one-feed-per-region) holds over the entire
  trace.

``CHAOS_SEED`` (env) must hold for seeds 0, 1, 2;
``CHAOS_SCALE_VIEWERS`` shrinks the flash crowd for CI smoke runs.
"""

import os

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.load import LoadConfig, WorkloadSpec, lecture_catalog, run_workload
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.obs import TraceChecker, Tracer
from repro.streaming import BackboneBudget, MediaServer, build_relay_tree
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
VIEWERS = int(os.environ.get("CHAOS_SCALE_VIEWERS", "100000"))
PROFILE = get_profile("dsl-256k")
DURATION = 8.0


def make_asf(file_id="lec", duration=DURATION):
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id=file_id,
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
        images=[(ImageObject("s0", duration, width=320, height=240), 0.0)],
        commands=slide_commands([("s0", 0.0)]),
    )


def make_tree(*, tracer=None, budget=None, fill_burst=64.0):
    """One region, two leaves — the smallest tree with a sibling."""
    reset_counters("edge_cache")
    net = VirtualNetwork()
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    origin.publish("lecture", make_asf())
    directory, parents, leaves = build_relay_tree(
        net, origin, {"r0": ["e0", "e1"]},
        pacing_quantum=0.5, seed=CHAOS_SEED, fill_burst=fill_burst,
        backbone_budget=budget, tracer=tracer,
    )
    for leaf in leaves:
        net.connect(leaf.host, "viewer", bandwidth=2_000_000, delay=0.02)
    return net, origin, directory, parents, leaves


def blob_of(packets):
    return b"".join(p.pack() for p in packets)


def reference_blob(origin):
    return blob_of(origin.points["lecture"].content.packets)


class TestSiblingCrashMidFill:
    def test_fill_falls_through_to_parent_when_sibling_dies(self):
        budget = BackboneBudget()
        # fill_burst=2 stretches the sibling burst over seconds of sim
        # time so the scripted crash lands squarely mid-transfer
        net, origin, directory, parents, leaves = make_tree(
            budget=budget, fill_burst=2.0,
        )
        e0, e1 = leaves
        e0.prefetch("lecture")
        warm_origin_sessions = origin.sessions.total_created

        net.simulator.schedule(0.2, e0.crash)
        e1.prefetch("lecture")

        counters = get_counters("edge_cache")
        # the sibling attempt was charged and failed; the parent (still
        # warm from e0's fill) delivered
        assert counters["parent_fills"] >= 2
        assert "lecture" in e1.points
        assert blob_of(e1.points["lecture"].content.packets) == \
            reference_blob(origin)
        # the origin never saw a second data egress for the region
        assert origin.sessions.total_created == warm_origin_sessions
        budget.assert_no_leaks()

        e1.shutdown()
        parents["r0"].shutdown()
        net.simulator.run(max_events=1_000_000)


class TestStaleSiblingRejected:
    def test_republished_run_rejects_stale_holders_before_media_moves(self):
        tracer = Tracer("stale-tree")
        net, origin, directory, parents, leaves = make_tree(tracer=tracer)
        e0, e1 = leaves
        e0.prefetch("lecture")

        # the lecture is re-cut at the origin: every replica below —
        # e0's *and* the parent's — is now stale
        origin.unpublish("lecture")
        origin.publish("lecture", make_asf(file_id="lec-v2", duration=12.0))

        e1.prefetch("lecture")
        counters = get_counters("edge_cache")
        # both the sibling and the warm parent were rejected up front by
        # the authoritative cache key; no stale byte crossed a tree link
        assert counters["stale_source_rejected"] >= 2
        assert blob_of(e1.points["lecture"].content.packets) == \
            reference_blob(origin)
        stale_refusals = [
            r for r in tracer.records
            if r["name"] == "edge.fill_refused"
            and r["attrs"].get("reason") == "stale"
        ]
        assert len(stale_refusals) >= 2

        for leaf in leaves:
            leaf.shutdown()
        parents["r0"].shutdown()
        net.simulator.run(max_events=1_000_000)


class TestConcurrentMissesCoalesce:
    def test_simultaneous_sibling_misses_cost_one_origin_egress(self):
        budget = BackboneBudget()
        net, origin, directory, parents, leaves = make_tree(budget=budget)
        e0, e1 = leaves
        net.simulator.schedule(0.001, lambda: e0.prefetch("lecture"))
        net.simulator.schedule(0.001, lambda: e1.prefetch("lecture"))
        net.simulator.run(max_events=5_000_000)

        # the pending-holder registry advertised e0's in-flight fill, so
        # e1 rode it as a sibling instead of racing a second chain to
        # the origin: one data egress for the whole region
        assert origin.sessions.total_created == 1
        counters = get_counters("edge_cache")
        assert counters["origin_fills"] == 1
        assert counters["fills"] == 3
        reference = reference_blob(origin)
        for leaf in leaves:
            assert "lecture" in leaf.points
            assert blob_of(leaf.points["lecture"].content.packets) == reference
        budget.assert_no_leaks()

        for leaf in leaves:
            leaf.shutdown()
        parents["r0"].shutdown()
        net.simulator.run(max_events=1_000_000)
        assert len(origin.sessions) == 0


class TestLiveFlashCrowdAtScale:
    def test_100k_live_flash_crowd_passes_full_tree_audit(self):
        tracer = Tracer("tree-scale")
        budget = BackboneBudget(tracer=tracer)
        result = run_workload(
            WorkloadSpec(
                viewers=VIEWERS,
                lectures=lecture_catalog(1, 12.0, live_fraction=1.0),
                seed=CHAOS_SEED,
                flash_fraction=1.0,
                flash_width=2.0,
            ),
            mode="cohort",
            config=LoadConfig(
                edges=8,
                regions=2,
                live_capture=True,
                backbone_budget=budget,
                tracer=tracer,
                teardown=True,
            ),
        )
        assert result.viewers == VIEWERS
        assert result.cohorts < max(result.viewers / 10, 100)
        # the origin carried one live session per region — the whole
        # flash crowd multiplied through the tree, not the backbone
        assert result.control["origin"]["sessions_created"] == 2
        budget.assert_no_leaks()
        checker = TraceChecker(tracer.records).assert_ok()
        # every relay (2 parents + 8 leaves) ran exactly one feed
        assert checker.live_feeds_seen == 10
        assert checker.backbone_reservations == checker.backbone_releases > 0
        assert checker.sessions_opened == checker.sessions_closed
