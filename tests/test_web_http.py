"""Unit tests for the HTTP substrate (repro.web)."""

import pytest

from repro.web.http import (
    HTTPClient,
    HTTPError,
    HTTPRequest,
    HTTPResponse,
    HTTPServer,
    VirtualNetwork,
    form_decode,
    form_encode,
)


@pytest.fixture
def net():
    network = VirtualNetwork()
    network.connect("client", "server", bandwidth=10e6, delay=0.005)
    return network


@pytest.fixture
def server(net):
    srv = HTTPServer(net, "server", 8080)
    srv.route("GET", "/hello", lambda r: HTTPResponse(200, body="hi"))
    srv.route("POST", "/echo", lambda r: HTTPResponse(200, body=r.body))
    return srv


@pytest.fixture
def client(net):
    return HTTPClient(net, "client")


class TestRouting:
    def test_basic_get(self, server, client):
        response = client.get("http://server:8080/hello")
        assert response.ok and response.body == "hi"
        assert server.requests_served == 1

    def test_post_echo(self, server, client):
        response = client.post("http://server:8080/echo", body={"a": 1})
        assert response.body == {"a": 1}

    def test_404(self, server, client):
        assert client.get("http://server:8080/missing").status == 404

    def test_method_mismatch_404(self, server, client):
        assert client.post("http://server:8080/hello").status == 404

    def test_longest_prefix_wins(self, net, client):
        srv = HTTPServer(net, "server", 9000)
        srv.route("GET", "/a", lambda r: HTTPResponse(200, body="short"))
        srv.route("GET", "/a/b", lambda r: HTTPResponse(200, body="long"))
        assert client.get("http://server:9000/a/b/c").body == "long"
        assert client.get("http://server:9000/a/x").body == "short"

    def test_query_parsing(self, net, client):
        srv = HTTPServer(net, "server", 9001)
        srv.route("GET", "/q", lambda r: HTTPResponse(200, body=r.query))
        assert client.get("http://server:9001/q?x=1&y=z").body == {"x": "1", "y": "z"}

    def test_client_host_visible(self, net, client):
        srv = HTTPServer(net, "server", 9002)
        srv.route("GET", "/", lambda r: HTTPResponse(200, body=r.client_host))
        assert client.get("http://server:9002/").body == "client"

    def test_handler_http_error_becomes_400(self, net, client):
        srv = HTTPServer(net, "server", 9003)

        def boom(request):
            raise HTTPError("bad form")

        srv.route("GET", "/boom", boom)
        response = client.get("http://server:9003/boom")
        assert response.status == 400 and "bad form" in response.body


class TestNetworkPlumbing:
    def test_connection_refused(self, net, client):
        with pytest.raises(HTTPError):
            client.get("http://server:5999/hello")

    def test_bad_url(self, client):
        with pytest.raises(HTTPError):
            client.get("ftp://server/thing")

    def test_double_bind_rejected(self, net):
        HTTPServer(net, "server", 7000)
        with pytest.raises(HTTPError):
            HTTPServer(net, "server", 7000)

    def test_request_takes_network_time(self, server, client, net):
        before = net.simulator.now
        client.get("http://server:8080/hello")
        assert net.simulator.now > before

    def test_timeout_on_black_hole(self, net):
        # 100% loss both ways: reliable channel keeps retrying, fetch times out
        net.connect("c2", "server", bandwidth=1e6, delay=0.01, loss_rate=0.999)
        HTTPServer(net, "server", 7100).route(
            "GET", "/", lambda r: HTTPResponse(200)
        )
        client = HTTPClient(net, "c2", timeout=2.0)
        with pytest.raises(HTTPError):
            client.get("http://server:7100/")

    def test_lossy_link_still_succeeds(self, net):
        net.connect("c3", "server", bandwidth=1e6, delay=0.01, loss_rate=0.3)
        srv = HTTPServer(net, "server", 7200)
        srv.route("GET", "/", lambda r: HTTPResponse(200, body="made it"))
        client = HTTPClient(net, "c3", timeout=30.0)
        assert client.get("http://server:7200/").body == "made it"

    def test_default_link_created_lazily(self):
        network = VirtualNetwork()
        srv = HTTPServer(network, "s", 80)
        srv.route("GET", "/", lambda r: HTTPResponse(200, body="ok"))
        assert HTTPClient(network, "c").get("http://s:80/").body == "ok"

    def test_loopback_rejected(self):
        network = VirtualNetwork()
        with pytest.raises(Exception):
            network.link("same", "same")


class TestErrorPaths:
    """Timeout/error-path coverage: late responses must stay harmless."""

    def test_timeout_delivers_late_response_exactly_once(self, net):
        # the link is slow enough that the response lands after the
        # client's deadline: fetch raises, but the in-flight exchange is
        # still on the simulator and must complete exactly once, harmlessly
        net.connect("slowpoke", "server", bandwidth=1e6, delay=3.0)
        srv = HTTPServer(net, "server", 7300)
        served = []
        srv.route("GET", "/", lambda r: served.append(1) or HTTPResponse(200))
        client = HTTPClient(net, "slowpoke", timeout=2.0)
        with pytest.raises(HTTPError, match="timeout"):
            client.get("http://server:7300/")
        net.simulator.run()  # drain the abandoned exchange
        assert served == [1]
        assert srv.requests_served == 1

    def test_timed_out_client_can_retry_on_a_healed_link(self, net):
        net.connect("retrier", "server", bandwidth=1e6, delay=0.01,
                    loss_rate=0.999)
        srv = HTTPServer(net, "server", 7400)
        srv.route("GET", "/", lambda r: HTTPResponse(200, body="ok"))
        client = HTTPClient(net, "retrier", timeout=1.0)
        with pytest.raises(HTTPError):
            client.get("http://server:7400/")
        net.link("retrier", "server").set_loss(loss_rate=0.0)
        net.link("server", "retrier").set_loss(loss_rate=0.0)
        net.simulator.run()
        assert client.get("http://server:7400/").body == "ok"

    def test_unknown_route_error_is_well_formed(self, server, client):
        response = client.get("http://server:8080/definitely/not/there")
        assert response.status == 404 and not response.ok
        assert "GET" in response.body and "/definitely/not/there" in response.body
        assert response.wire_size() > 0

    def test_handler_exceptions_other_than_httperror_propagate(self, net, client):
        srv = HTTPServer(net, "server", 7500)

        def broken(request):
            raise ValueError("bug, not a bad request")

        srv.route("GET", "/", broken)
        with pytest.raises(ValueError):
            client.get("http://server:7500/")


class TestForms:
    def test_round_trip(self):
        fields = {"path": "/videos/lec.mpg", "slides": "/slides dir/", "port": "8080"}
        assert form_decode(form_encode(fields)) == fields

    def test_wire_sizes_positive(self):
        request = HTTPRequest("POST", "/publish", body=b"x" * 100)
        assert request.wire_size() > 100
        response = HTTPResponse(200, body="y" * 50)
        assert response.wire_size() > 50
