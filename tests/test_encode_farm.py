"""EncodeFarm: serial fallback, dedup/cache reuse, and byte-identity.

The hard guarantee under test: a parallel farm produces **byte-identical**
ASF output to the ``workers=0`` serial path, for both the MBR rendition
ladder and the full levels × renditions publish grid. ``workers=0`` must
touch zero multiprocessing machinery.
"""

import os
import pickle

import pytest

from repro.asf import (
    ASFEncoder,
    EncodeCache,
    EncoderConfig,
    EncodeFarm,
    EncodeJob,
    FarmError,
    JOB_AUDIO,
    JOB_IMAGE,
    JOB_VIDEO,
    START_METHOD,
    run_encode_job,
    run_job_with_deltas,
)
from repro.lod import Lecture, LODPublisher
from repro.media import get_profile
from repro.media.objects import AudioObject, ImageObject, VideoObject
from repro.metrics import get_counters


def video_job(seed="v", profile="dsl-256k", **kwargs):
    return EncodeJob(
        JOB_VIDEO,
        VideoObject("talk", 10.0, width=320, height=240, fps=15.0, seed=seed),
        profile=get_profile(profile),
        **kwargs,
    )


def lecture():
    return Lecture.from_slide_durations(
        "farm-talk",
        "Prof",
        [12, 8, 10, 6],
        importances=[0, 1, 0, 1],
        slide_width=160,
        slide_height=120,
    )


@pytest.fixture(scope="module")
def parallel_farm():
    """One shared 2-worker spawn pool for the whole module (spawn start-up
    is the expensive part; a publish farm is a long-lived service)."""
    with EncodeFarm(2) as farm:
        yield farm


class TestEncodeJob:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FarmError):
            EncodeJob("subtitles", VideoObject("v", 1.0))

    def test_av_jobs_need_profile(self):
        with pytest.raises(FarmError):
            EncodeJob(JOB_VIDEO, VideoObject("v", 1.0))
        with pytest.raises(FarmError):
            EncodeJob(JOB_AUDIO, AudioObject("a", 1.0))

    def test_negative_cost_rejected(self):
        with pytest.raises(FarmError):
            video_job(simulated_cost=-0.1)

    def test_fingerprint_excludes_simulated_cost(self):
        assert video_job().fingerprint() == video_job(
            simulated_cost=0.5
        ).fingerprint()

    def test_fingerprint_separates_content(self):
        base = video_job().fingerprint()
        assert video_job(seed="other").fingerprint() != base
        assert video_job(profile="lan-1m").fingerprint() != base
        assert video_job(with_data=True).fingerprint() != base

    def test_pickle_round_trip_encodes_identically(self):
        job = video_job()
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert run_encode_job(clone) == run_encode_job(job)


class TestSerialFallback:
    def test_serial_farm_never_builds_a_pool(self):
        farm = EncodeFarm(0)
        farm.encode_batch([video_job(), video_job(seed="b")])
        assert not farm.pool_started
        farm.warm_up()  # no-op at workers=0
        assert not farm.pool_started

    def test_serial_farm_never_reaches_for_multiprocessing(self, monkeypatch):
        farm = EncodeFarm(0)

        def explode():
            raise AssertionError("workers=0 must not touch multiprocessing")

        monkeypatch.setattr(farm, "_ensure_pool", explode)
        results = farm.encode_batch([video_job(), video_job(seed="b")])
        assert len(results) == 2

    def test_negative_workers_rejected(self):
        with pytest.raises(FarmError):
            EncodeFarm(-1)

    def test_start_method_pinned_to_spawn(self):
        """Byte-identity across platforms/versions leans on ``spawn``; CI
        sets REPRO_EXPECT_START_METHOD to catch accidental fork-dependence."""
        assert START_METHOD == "spawn"
        assert EncodeFarm(0).start_method == "spawn"
        expected = os.environ.get("REPRO_EXPECT_START_METHOD")
        if expected:
            assert START_METHOD == expected


class TestReuse:
    def test_within_batch_dedup(self):
        farm = EncodeFarm(0)
        a, b = video_job(), video_job()
        r1, r2, r3 = farm.encode_batch([a, b, video_job(seed="other")])
        assert r1 is r2
        assert r3 is not r1
        assert farm.encodes_performed == 2
        assert farm.dedup_hits == 1

    def test_cache_reuse_across_batches(self):
        cache = EncodeCache()
        farm = EncodeFarm(0, cache=cache)
        first = farm.encode_batch([video_job()])
        again = farm.encode_batch([video_job()])
        assert again[0] is first[0]
        assert farm.encodes_performed == 1
        assert farm.cache_hits == 1
        assert cache.segment_hits == 1

    def test_use_cache_false_bypasses_segment_cache(self):
        cache = EncodeCache()
        farm = EncodeFarm(0, cache=cache)
        farm.encode_batch([video_job()], use_cache=False)
        farm.encode_batch([video_job()], use_cache=False)
        assert cache.segment_count == 0
        assert (cache.segment_hits, cache.segment_misses) == (0, 0)
        assert farm.encodes_performed == 2

    def test_counters_registry_tallies(self):
        bag = get_counters("encode_farm")
        before = bag.get("encodes")
        EncodeFarm(0).encode_batch([video_job(seed="counted")])
        assert bag.get("encodes") == before + 1


class TestCounterParity:
    """Regression: pool workers used to lose their registry increments.

    ``spawn`` children own a private process-global counter registry, so
    codec-run tallies made inside a worker died with it — a parallel
    publish under-reported ``codec_runs``/``encoded_bytes`` versus the
    identical serial run. The fix returns each job's counter delta with
    its result (:func:`run_job_with_deltas`) and merges it in the parent.
    """

    def batch(self):
        return [video_job(seed=f"parity{i}") for i in range(6)]

    def run_and_delta(self, farm):
        bag = get_counters("encode_farm")
        before = (bag.get("codec_runs"), bag.get("encoded_bytes"))
        streams = farm.encode_batch(self.batch())
        return streams, (
            bag.get("codec_runs") - before[0],
            bag.get("encoded_bytes") - before[1],
        )

    def test_serial_and_four_worker_totals_identical(self):
        serial_streams, serial_delta = self.run_and_delta(EncodeFarm(0))
        with EncodeFarm(4) as farm:
            parallel_streams, parallel_delta = self.run_and_delta(farm)
            assert farm.pool_started
        # the bug: parallel used to report (0, 0) here
        assert serial_delta == parallel_delta
        assert serial_delta[0] == 6
        assert serial_delta[1] == sum(s.total_size for s in serial_streams)
        assert parallel_streams == serial_streams

    def test_run_job_with_deltas_reports_per_job_increment(self):
        stream, deltas = run_job_with_deltas(video_job(seed="delta"))
        farm_delta = deltas["encode_farm"]
        assert farm_delta["codec_runs"] == 1
        assert farm_delta["encoded_bytes"] == stream.total_size


class TestByteIdentity:
    """Parallel output must equal serial output, byte for byte."""

    @staticmethod
    def mbr_sources():
        video = VideoObject("talk", 12.0, width=320, height=240, fps=15.0)
        audio = AudioObject("voice", 12.0, sample_rate=22_050, channels=1)
        images = [
            (ImageObject("s0", 6.0, width=320, height=240, seed="s0"), 0.0),
            (ImageObject("s1", 6.0, width=320, height=240, seed="s1"), 6.0),
        ]
        return video, audio, images

    def mbr_bytes(self, farm):
        video, audio, images = self.mbr_sources()
        config = EncoderConfig(profile=get_profile("dsl-256k"))
        encoder = ASFEncoder(config, farm=farm)
        asf = encoder.encode_file_mbr(
            file_id="L",
            video=video,
            audio=audio,
            images=images,
            renditions=[
                get_profile("modem-56k"),
                get_profile("dsl-256k"),
                get_profile("lan-1m"),
            ],
        )
        return asf.pack()

    def test_mbr_parallel_matches_serial(self, parallel_farm):
        assert self.mbr_bytes(parallel_farm) == self.mbr_bytes(EncodeFarm(0))
        assert parallel_farm.pool_started

    def test_grid_parallel_matches_serial(self, parallel_farm):
        renditions = [get_profile("modem-56k"), get_profile("dsl-256k")]
        serial = LODPublisher(renditions=renditions).publish(lecture(), "p")
        parallel = LODPublisher(
            renditions=renditions, farm=parallel_farm
        ).publish(lecture(), "p")
        assert serial.variants.keys() == parallel.variants.keys()
        for key, variant in serial.variants.items():
            assert parallel.variants[key].asf.pack() == variant.asf.pack(), key
