"""Unit tests for the streaming layer: buffer, sessions, server, player."""

import pytest

from repro.asf import (
    ASFEncoder,
    EncoderConfig,
    LicenseServer,
    MediaUnit,
    ScriptCommand,
    slide_commands,
)
from repro.asf.drm import DRMError
from repro.asf.header import StreamProperties
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.net.qos import QoSError
from repro.streaming import (
    JitterBuffer,
    MediaPlayer,
    MediaServer,
    PlayerError,
    PlayerState,
    PublishError,
    SessionError,
    SessionState,
    SessionTable,
)
from repro.web import VirtualNetwork

PROFILE = get_profile("dsl-256k")


def make_asf(duration=20.0, slides=2, license_server=None):
    encoder = ASFEncoder(EncoderConfig(profile=PROFILE))
    per_slide = duration / slides
    return encoder.encode_file(
        file_id="lec",
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240), i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands([(f"s{i}", i * per_slide) for i in range(slides)]),
        license_server=license_server,
    )


def make_world(asf=None, *, bandwidth=2_000_000, delay=0.02, loss=0.0,
               qos_enabled=False, seedling=0):
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=bandwidth, delay=delay,
                loss_rate=loss)
    server = MediaServer(net, "server", port=8080, qos_enabled=qos_enabled)
    server.publish("lecture1", asf or make_asf())
    return net, server


class TestJitterBuffer:
    def unit(self, stream, number, ts_ms, size=10):
        return MediaUnit(stream, number, ts_ms, True, b"x" * size)

    def test_pop_due_in_timestamp_order(self):
        buffer = JitterBuffer()
        buffer.push(self.unit(1, 1, 200))
        buffer.push(self.unit(1, 0, 100))
        due = buffer.pop_due(0.5)
        assert [u.timestamp_ms for u in due] == [100, 200]

    def test_pop_due_respects_position(self):
        buffer = JitterBuffer()
        buffer.push(self.unit(1, 0, 100))
        buffer.push(self.unit(1, 1, 900))
        assert len(buffer.pop_due(0.5)) == 1
        assert len(buffer) == 1

    def test_depth_min_across_streams(self):
        buffer = JitterBuffer()
        buffer.push(self.unit(1, 0, 5_000))
        buffer.push(self.unit(2, 0, 2_000))
        assert buffer.depth(1.0, [1, 2]) == pytest.approx(1.0)

    def test_depth_missing_stream_is_zero(self):
        buffer = JitterBuffer()
        buffer.push(self.unit(1, 0, 5_000))
        assert buffer.depth(0.0, [1, 2]) == 0.0

    def test_depth_never_negative(self):
        buffer = JitterBuffer()
        buffer.push(self.unit(1, 0, 1_000))
        assert buffer.depth(5.0, [1]) == 0.0

    def test_clear(self):
        buffer = JitterBuffer()
        buffer.push(self.unit(1, 0, 100))
        buffer.clear()
        assert len(buffer) == 0 and buffer.peek_timestamp() is None


class TestSessionTable:
    def test_lifecycle(self):
        table = SessionTable()
        session = table.create("p", "host", lambda pkt: None, broadcast=False)
        assert session.state is SessionState.CONNECTING
        session.transition(SessionState.STREAMING)
        session.transition(SessionState.PAUSED)
        session.transition(SessionState.STREAMING)
        session.transition(SessionState.FINISHED)
        table.close(session.session_id)
        assert len(table) == 0

    def test_illegal_transition(self):
        table = SessionTable()
        session = table.create("p", "host", lambda pkt: None, broadcast=False)
        with pytest.raises(SessionError):
            session.transition(SessionState.PAUSED)

    def test_unknown_session(self):
        with pytest.raises(SessionError):
            SessionTable().get(42)

    def test_active_index_follows_transitions(self):
        table = SessionTable()
        a = table.create("p", "h", lambda pkt: None, broadcast=False)
        b = table.create("p", "h", lambda pkt: None, broadcast=False)
        assert table.active_sessions() == []  # CONNECTING is not active
        a.transition(SessionState.STREAMING)
        b.transition(SessionState.STREAMING)
        b.transition(SessionState.PAUSED)
        assert {s.session_id for s in table.active_sessions()} == {
            a.session_id, b.session_id
        }
        a.transition(SessionState.FINISHED)
        assert [s.session_id for s in table.active_sessions()] == [b.session_id]
        table.close(b.session_id)
        assert table.active_sessions() == []

    def test_point_index_follows_lifecycle(self):
        table = SessionTable()
        a = table.create("p1", "h", lambda pkt: None, broadcast=False)
        b = table.create("p2", "h", lambda pkt: None, broadcast=False)
        c = table.create("p1", "h", lambda pkt: None, broadcast=False)
        assert {s.session_id for s in table.sessions_for_point("p1")} == {
            a.session_id, c.session_id
        }
        assert [s.session_id for s in table.sessions_for_point("p2")] == [
            b.session_id
        ]
        table.close(a.session_id)
        assert [s.session_id for s in table.sessions_for_point("p1")] == [
            c.session_id
        ]
        assert table.sessions_for_point("nowhere") == []

    def test_sessions_for_point(self):
        table = SessionTable()
        table.create("a", "h1", lambda pkt: None, broadcast=False)
        table.create("b", "h2", lambda pkt: None, broadcast=False)
        assert len(table.sessions_for_point("a")) == 1


class TestServer:
    def test_duplicate_publish_rejected(self):
        net, server = make_world()
        with pytest.raises(PublishError):
            server.publish("lecture1", make_asf())

    def test_url_of(self):
        net, server = make_world()
        assert server.url_of("lecture1") == "http://server:8080/lod/lecture1"
        with pytest.raises(PublishError):
            server.url_of("nope")

    def test_describe_unknown_point_404(self):
        net, server = make_world()
        from repro.web import HTTPClient

        client = HTTPClient(net, "student")
        assert client.get("http://server:8080/lod/none").status == 404

    def test_unpublish_closes_sessions(self):
        net, server = make_world()
        session = server.open_session("lecture1", "student", lambda pkt: None)
        server.unpublish("lecture1")
        with pytest.raises(SessionError):
            server.sessions.get(session.session_id)

    def test_seek_broadcast_rejected(self):
        net, server = make_world()
        encoder = ASFEncoder(EncoderConfig(profile=PROFILE))
        live = encoder.start_live(
            file_id="live",
            streams=[StreamProperties(1, "video", bitrate=100_000)],
        )
        server.publish("livepoint", live.stream)
        session = server.open_session("livepoint", "student", lambda pkt: None)
        server.play(session.session_id)
        with pytest.raises(SessionError):
            server.seek(session.session_id, 5.0)


class TestPlayback:
    def test_full_playback_no_loss(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("lecture1"))
        assert player.state is PlayerState.FINISHED
        assert report.rebuffer_count == 0
        assert report.duration_watched == pytest.approx(20.0, abs=0.2)
        assert all(rate == 0.0 for rate in report.loss_rates.values())

    def test_startup_latency_near_preroll(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("lecture1"))
        preroll = 3.0
        assert preroll <= report.startup_latency <= preroll + 2.0

    def test_slides_fire_at_commanded_times(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("lecture1"))
        slides = report.slide_changes()
        assert [c.command.parameter for c in slides] == ["s0", "s1"]
        assert report.max_command_sync_error <= 2 * MediaPlayer.RENDER_TICK

    def test_rendered_units_cover_all_streams(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("lecture1"))
        streams = {r.unit.stream_number for r in report.rendered}
        assert {1, 2, 3} <= streams

    def test_lossy_link_reports_loss(self):
        net, server = make_world(loss=0.05)
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("lecture1"))
        assert any(rate > 0 for rate in report.loss_rates.values())

    def test_slow_link_causes_rebuffering(self):
        # stream needs ~260kbps; give it less
        net, server = make_world(bandwidth=180_000)
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("lecture1"), )
        assert report.rebuffer_count > 0
        assert report.rebuffer_time > 0

    def test_start_midway(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        player.connect(server.url_of("lecture1"))
        player.play(start=10.0)
        report = player.run_until_finished()
        positions = [r.position for r in report.rendered]
        assert min(positions) >= 9.0  # nothing from the first slide segment

    def test_double_connect_rejected(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        player.connect(server.url_of("lecture1"))
        with pytest.raises(PlayerError):
            player.connect(server.url_of("lecture1"))

    def test_play_without_connect_rejected(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        with pytest.raises(PlayerError):
            player.play()

    def test_bad_sync_mode_rejected(self):
        net, server = make_world()
        with pytest.raises(PlayerError):
            MediaPlayer(net, "student", sync_mode="psychic")


class TestInteractivePlayback:
    def drive_to_playing(self, net, player, server):
        player.connect(server.url_of("lecture1"))
        player.play()
        while player.state is not PlayerState.PLAYING:
            net.simulator.step()
        return player

    def test_pause_resume(self):
        net, server = make_world()
        player = self.drive_to_playing(net, MediaPlayer(net, "student"), server)
        net.simulator.run_until(net.simulator.now + 2)
        player.pause()
        paused_at = player.position
        net.simulator.run_until(net.simulator.now + 5)
        assert player.position == pytest.approx(paused_at, abs=0.01)
        player.resume()
        report = player.run_until_finished()
        assert report.duration_watched == pytest.approx(20.0, abs=0.2)

    def test_pause_from_wrong_state(self):
        net, server = make_world()
        player = MediaPlayer(net, "student")
        with pytest.raises(PlayerError):
            player.pause()

    def test_seek_forward(self):
        net, server = make_world()
        player = self.drive_to_playing(net, MediaPlayer(net, "student"), server)
        net.simulator.run_until(net.simulator.now + 1)
        player.seek(15.0)
        report = player.run_until_finished()
        # after the seek the player replays the active slide (catch-up)
        replayed = [c for c in report.slide_changes() if c.command.parameter == "s1"]
        assert replayed
        assert report.duration_watched == pytest.approx(20.0, abs=0.2)

    def test_seek_is_not_an_underrun(self):
        net, server = make_world()
        player = self.drive_to_playing(net, MediaPlayer(net, "student"), server)
        net.simulator.run_until(net.simulator.now + 1)
        player.seek(12.0)
        report = player.run_until_finished()
        assert report.rebuffer_count == 0

    def test_stop_mid_playback(self):
        net, server = make_world()
        player = self.drive_to_playing(net, MediaPlayer(net, "student"), server)
        net.simulator.run_until(net.simulator.now + 2)
        player.stop()
        assert player.state is PlayerState.FINISHED


class TestDRMPlayback:
    def test_entitled_user_plays(self):
        licenses = LicenseServer()
        asf = make_asf(license_server=licenses)
        net, server = make_world(asf)
        licenses.entitle("lec", "student")
        player = MediaPlayer(net, "student", license_server=licenses)
        report = player.watch(server.url_of("lecture1"))
        assert report.duration_watched == pytest.approx(20.0, abs=0.2)

    def test_unentitled_user_refused(self):
        licenses = LicenseServer()
        asf = make_asf(license_server=licenses)
        net, server = make_world(asf)
        player = MediaPlayer(net, "student", license_server=licenses)
        with pytest.raises(DRMError):
            player.connect(server.url_of("lecture1"))

    def test_player_without_license_server_refused(self):
        licenses = LicenseServer()
        asf = make_asf(license_server=licenses)
        net, server = make_world(asf)
        player = MediaPlayer(net, "student")
        with pytest.raises(DRMError):
            player.connect(server.url_of("lecture1"))


class TestQoSAdmission:
    def test_admitted_within_capacity(self):
        net, server = make_world(qos_enabled=True, bandwidth=2_000_000)
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("lecture1"))
        assert report.duration_watched > 19

    def test_over_subscription_rejected(self):
        # link fits one ~260kbps stream with 0.9 headroom, not three
        net, server = make_world(qos_enabled=True, bandwidth=600_000)
        server.open_session("lecture1", "student", lambda pkt: None)
        server.open_session("lecture1", "student", lambda pkt: None)
        with pytest.raises(QoSError):
            server.open_session("lecture1", "student", lambda pkt: None)
