"""Unit tests for the orchestrator and web publishing manager (repro.lod)."""

import pytest

from repro.asf.drm import LicenseServer
from repro.asf.script_commands import TYPE_SLIDE, ScriptCommand
from repro.lod import (
    Lecture,
    LectureError,
    MediaStore,
    OrchestrationError,
    Orchestrator,
    PublishFormError,
    WebPublishingManager,
    verify_orchestration,
)
from repro.media import ImageObject, VideoObject, get_profile
from repro.streaming import MediaPlayer, MediaServer
from repro.web import HTTPClient, VirtualNetwork, form_encode

PROFILE = get_profile("dsl-256k")


def lecture(durations=(10.0, 10.0), importances=None):
    return Lecture.from_slide_durations(
        "Net Theory", "Prof", list(durations), importances=importances,
        slide_width=320, slide_height=240,
    )


class TestOrchestrator:
    def test_orchestrate_produces_verified_asf(self):
        result = Orchestrator(PROFILE).orchestrate(lecture())
        assert result.verification_error == pytest.approx(0.0, abs=1e-3)
        assert result.asf.duration == 20.0
        types = {s.stream_type for s in result.asf.header.streams}
        assert types == {"video", "audio", "image", "command"}

    def test_commands_match_segments(self):
        result = Orchestrator(PROFILE).orchestrate(lecture())
        slides = [c for c in result.commands if c.type == TYPE_SLIDE]
        assert [c.parameter for c in slides] == ["slide0", "slide1"]

    def test_metadata_carried(self):
        result = Orchestrator(PROFILE).orchestrate(lecture())
        assert result.asf.header.metadata["title"] == "Net Theory"
        assert result.asf.header.metadata["segments"] == "2"

    def test_content_tree_json_round_trips(self):
        from repro.contenttree import tree_from_json

        result = Orchestrator(PROFILE).orchestrate(
            lecture(importances=[0, 1])
        )
        tree = tree_from_json(result.content_tree_json)
        assert tree.presentation_time(1) == 10.0

    def test_net_schedule_covers_all_leaves(self):
        orch = Orchestrator(PROFILE)
        schedule = orch.net_schedule(lecture())
        assert schedule["image_slide0"] == (0.0, 10.0)
        assert schedule["image_slide1"] == (10.0, 20.0)
        assert schedule["video_slide1"] == (10.0, 20.0)

    def test_drm_via_license_server(self):
        licenses = LicenseServer()
        result = Orchestrator(PROFILE, license_server=licenses).orchestrate(
            lecture(), file_id="prot"
        )
        assert result.asf.header.file_properties.is_protected

    def test_verify_catches_missing_command(self):
        lec = lecture()
        schedule = Orchestrator(PROFILE).net_schedule(lec)
        with pytest.raises(OrchestrationError):
            verify_orchestration(lec, [], schedule)

    def test_verify_catches_shifted_command(self):
        lec = lecture()
        schedule = Orchestrator(PROFILE).net_schedule(lec)
        bad = [
            ScriptCommand(0, TYPE_SLIDE, "slide0"),
            ScriptCommand(12_000, TYPE_SLIDE, "slide1"),  # should be 10s
        ]
        with pytest.raises(OrchestrationError):
            verify_orchestration(lec, bad, schedule)


@pytest.fixture
def world():
    net = VirtualNetwork()
    net.connect("teacher", "server", bandwidth=10e6, delay=0.01)
    net.connect("server", "student", bandwidth=2e6, delay=0.02)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    lec = lecture(importances=[0, 1])
    store.register_lecture("/v/lec.mpg", "/slides/", lec)
    manager = WebPublishingManager(server, store)
    return net, server, store, manager, lec


class TestMediaStore:
    def test_lookup_registered_lecture(self, world):
        _, _, store, _, lec = world
        assert store.lookup_lecture("/v/lec.mpg", "/slides/") is lec

    def test_assembles_from_parts(self):
        store = MediaStore()
        video = VideoObject("talk", 20.0)
        store.register_video("/v/x.mpg", video)
        store.register_slides(
            "/s/", [(ImageObject("a", 10.0), 0.0), (ImageObject("b", 10.0), 10.0)]
        )
        lec = store.lookup_lecture("/v/x.mpg", "/s/")
        assert [s.name for s in lec.segments] == ["a", "b"]
        assert lec.segments[1].duration == 10.0

    def test_missing_paths(self):
        store = MediaStore()
        with pytest.raises(PublishFormError):
            store.lookup_lecture("/nope", "/s/")
        store.register_video("/v", VideoObject("v", 10.0))
        with pytest.raises(PublishFormError):
            store.lookup_lecture("/v", "/missing")

    def test_empty_slide_dir(self):
        store = MediaStore()
        store.register_video("/v", VideoObject("v", 10.0))
        store.register_slides("/s/", [])
        with pytest.raises(PublishFormError):
            store.lookup_lecture("/v", "/s/")


class TestWebPublishingManager:
    def test_programmatic_publish(self, world):
        net, server, _, manager, _ = world
        record = manager.publish(
            video_path="/v/lec.mpg", slide_dir="/slides/", point="lec1"
        )
        assert record.url == "http://server:8080/lod/lec1"
        assert "lec1" in server.points

    def test_duplicate_point_rejected(self, world):
        _, _, _, manager, _ = world
        manager.publish(video_path="/v/lec.mpg", slide_dir="/slides/", point="x")
        with pytest.raises(PublishFormError):
            manager.publish(video_path="/v/lec.mpg", slide_dir="/slides/", point="x")

    def test_unknown_profile_rejected(self, world):
        _, _, _, manager, _ = world
        with pytest.raises(PublishFormError):
            manager.publish(
                video_path="/v/lec.mpg", slide_dir="/slides/",
                point="y", profile="warp-speed",
            )

    def test_form_publish_over_http(self, world):
        net, _, _, _, _ = world
        client = HTTPClient(net, "teacher")
        response = client.post(
            "http://server:8080/publish",
            body=form_encode(
                {"video_path": "/v/lec.mpg", "slide_dir": "/slides/",
                 "point": "web1", "profile": "isdn-dual"}
            ),
        )
        assert response.ok
        assert response.body["url"].endswith("/lod/web1")
        assert response.body["profile"] == "isdn-dual"
        assert response.body["verification_error"] <= 1e-3

    def test_form_malformed_body_400(self, world):
        net, _, _, _, _ = world
        client = HTTPClient(net, "teacher")
        response = client.post(
            "http://server:8080/publish", body=b"\x00not-a-form"
        )
        assert response.status == 400
        assert "publish form" in response.body

    def test_form_missing_fields_400(self, world):
        net, _, _, _, _ = world
        client = HTTPClient(net, "teacher")
        response = client.post(
            "http://server:8080/publish", body={"video_path": "/v/lec.mpg"}
        )
        assert response.status == 400 and "missing" in response.body

    def test_form_bad_path_400(self, world):
        net, _, _, _, _ = world
        client = HTTPClient(net, "teacher")
        response = client.post(
            "http://server:8080/publish",
            body={"video_path": "/bad", "slide_dir": "/slides/", "point": "z"},
        )
        assert response.status == 400

    def test_published_lecture_is_watchable(self, world):
        net, _, _, manager, _ = world
        record = manager.publish(
            video_path="/v/lec.mpg", slide_dir="/slides/", point="lec2"
        )
        player = MediaPlayer(net, "student")
        report = player.watch(record.url)
        assert report.duration_watched == pytest.approx(20.0, abs=0.2)
        slides = [c.command.parameter for c in report.slide_changes()]
        assert slides == ["slide0", "slide1"]

    def test_tree_endpoint(self, world):
        net, _, _, manager, _ = world
        manager.publish(video_path="/v/lec.mpg", slide_dir="/slides/", point="t1")
        client = HTTPClient(net, "student")
        response = client.get("http://server:8080/tree/t1")
        assert response.ok
        tree = manager.content_tree_of("t1")
        assert tree.presentation_time(1) == 10.0

    def test_tree_endpoint_404(self, world):
        net, _, _, _, _ = world
        client = HTTPClient(net, "student")
        assert client.get("http://server:8080/tree/none").status == 404

    def test_catalog(self, world):
        net, _, _, manager, _ = world
        manager.publish(video_path="/v/lec.mpg", slide_dir="/slides/", point="c1")
        client = HTTPClient(net, "student")
        response = client.get("http://server:8080/catalog")
        assert [e["point"] for e in response.body] == ["c1"]

    def test_protected_publish_requires_license(self, world):
        net, server, store, _, lec = world
        licenses = LicenseServer()
        manager = WebPublishingManager(
            MediaServer(net, "server2", port=8081), store,
            license_server=licenses,
        )
        record = manager.publish(
            video_path="/v/lec.mpg", slide_dir="/slides/",
            point="secret", protect=True,
        )
        licenses.entitle("secret", "student")
        player = MediaPlayer(net, "student", license_server=licenses)
        report = player.watch(record.url)
        assert report.duration_watched > 19
