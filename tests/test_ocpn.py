"""Unit tests for the OCPN compiler (repro.core.ocpn)."""

import pytest

from repro.core.analysis import is_deadlock_free, is_safe
from repro.core.intervals import TemporalRelation as R
from repro.core.ocpn import (
    Composite,
    MediaLeaf,
    SpecError,
    compile_spec,
    parallel,
    sequence,
    spec_duration,
    spec_intervals,
    spec_leaves,
    verify_schedule,
)


class TestSpecAST:
    def test_leaf_validation(self):
        with pytest.raises(SpecError):
            MediaLeaf("", 5)
        with pytest.raises(SpecError):
            MediaLeaf("x", 0)

    def test_sequence_duration_adds(self):
        spec = sequence(MediaLeaf("a", 2), MediaLeaf("b", 3), MediaLeaf("c", 4))
        assert spec_duration(spec) == pytest.approx(9)

    def test_parallel_duration_is_max(self):
        spec = parallel(MediaLeaf("a", 2), MediaLeaf("b", 7), MediaLeaf("c", 4))
        assert spec_duration(spec) == pytest.approx(7)

    def test_parallel_equal_durations_uses_equals(self):
        spec = parallel(MediaLeaf("a", 3), MediaLeaf("b", 3))
        assert spec.relation is R.EQUALS

    def test_empty_combinators_rejected(self):
        with pytest.raises(SpecError):
            sequence()
        with pytest.raises(SpecError):
            parallel()

    def test_spec_leaves(self):
        spec = sequence(MediaLeaf("a", 1), parallel(MediaLeaf("b", 2), MediaLeaf("c", 2)))
        assert [l.name for l in spec_leaves(spec)] == ["a", "b", "c"]

    def test_duplicate_leaves_detected_in_intervals(self):
        spec = sequence(MediaLeaf("a", 1), MediaLeaf("a", 2))
        with pytest.raises(SpecError):
            spec_intervals(spec)

    def test_before_duration_includes_gap(self):
        spec = Composite(R.BEFORE, MediaLeaf("a", 2), MediaLeaf("b", 3), delay=1.5)
        assert spec_duration(spec) == pytest.approx(6.5)


class TestSpecIntervals:
    def test_sequence_intervals(self):
        spec = sequence(MediaLeaf("a", 2), MediaLeaf("b", 3))
        ivs = spec_intervals(spec)
        assert ivs["a"].start == 0 and ivs["a"].end == 2
        assert ivs["b"].start == 2 and ivs["b"].end == 5

    def test_during_intervals(self):
        spec = Composite(R.DURING, MediaLeaf("note", 2), MediaLeaf("video", 10), delay=3)
        ivs = spec_intervals(spec)
        assert ivs["video"].start == 0
        assert ivs["note"].start == 3 and ivs["note"].end == 5

    def test_origin_propagates(self):
        spec = sequence(MediaLeaf("a", 2), MediaLeaf("b", 3))
        ivs = spec_intervals(spec, origin=10)
        assert ivs["a"].start == 10 and ivs["b"].end == 15

    def test_inverse_relation_intervals(self):
        spec = Composite(R.CONTAINS, MediaLeaf("video", 10), MediaLeaf("note", 2), delay=3)
        ivs = spec_intervals(spec)
        assert ivs["video"].start == 0 and ivs["note"] .start == 3


ALL_RELATION_SPECS = [
    Composite(R.BEFORE, MediaLeaf("a", 2), MediaLeaf("b", 3), delay=1),
    Composite(R.MEETS, MediaLeaf("a", 2), MediaLeaf("b", 3)),
    Composite(R.OVERLAPS, MediaLeaf("a", 4), MediaLeaf("b", 4), delay=2),
    Composite(R.DURING, MediaLeaf("a", 2), MediaLeaf("b", 10), delay=3),
    Composite(R.STARTS, MediaLeaf("a", 2), MediaLeaf("b", 5)),
    Composite(R.FINISHES, MediaLeaf("a", 2), MediaLeaf("b", 5)),
    Composite(R.EQUALS, MediaLeaf("a", 5), MediaLeaf("b", 5)),
    # inverses
    Composite(R.AFTER, MediaLeaf("a", 2), MediaLeaf("b", 3), delay=1),
    Composite(R.MET_BY, MediaLeaf("a", 2), MediaLeaf("b", 3)),
    Composite(R.OVERLAPPED_BY, MediaLeaf("a", 4), MediaLeaf("b", 4), delay=2),
    Composite(R.CONTAINS, MediaLeaf("a", 10), MediaLeaf("b", 2), delay=3),
    Composite(R.STARTED_BY, MediaLeaf("a", 5), MediaLeaf("b", 2)),
    Composite(R.FINISHED_BY, MediaLeaf("a", 5), MediaLeaf("b", 2)),
]


class TestCompiler:
    @pytest.mark.parametrize("spec", ALL_RELATION_SPECS,
                             ids=[s.relation.value for s in ALL_RELATION_SPECS])
    def test_all_thirteen_relations_compile_and_verify(self, spec):
        compiled = compile_spec(spec)
        errors = verify_schedule(compiled)
        assert max(errors.values()) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("spec", ALL_RELATION_SPECS,
                             ids=[s.relation.value for s in ALL_RELATION_SPECS])
    def test_compiled_nets_are_safe(self, spec):
        compiled = compile_spec(spec)
        assert is_safe(compiled.timed_net.net)

    def test_done_place_marked_at_end(self):
        compiled = compile_spec(sequence(MediaLeaf("a", 1), MediaLeaf("b", 1)))
        compiled.execute()
        net = compiled.timed_net.net
        # final untimed firing run leaves exactly one token in P_done
        from repro.core.analysis import reachability_graph

        graph = reachability_graph(net)
        finals = [m for m in graph.dead_markings()]
        assert len(finals) == 1 and finals[0]["P_done"] == 1

    def test_nested_composition(self):
        spec = sequence(
            parallel(MediaLeaf("v1", 10), MediaLeaf("img1", 10)),
            Composite(R.DURING, MediaLeaf("note", 2),
                      parallel(MediaLeaf("v2", 8), MediaLeaf("img2", 8)), delay=1),
        )
        compiled = compile_spec(spec)
        errors = verify_schedule(compiled)
        assert max(errors.values()) < 1e-9
        ivs = spec_intervals(spec)
        assert ivs["note"].start == pytest.approx(11)

    def test_duplicate_leaf_rejected_at_compile(self):
        with pytest.raises(SpecError):
            compile_spec(sequence(MediaLeaf("a", 1), MediaLeaf("a", 1)))

    def test_invalid_delay_rejected_at_compile(self):
        spec = Composite(R.DURING, MediaLeaf("a", 9), MediaLeaf("b", 10), delay=5)
        with pytest.raises(ValueError):
            compile_spec(spec)

    def test_media_places_mapping(self):
        compiled = compile_spec(MediaLeaf("solo", 3))
        assert compiled.media_places == {"solo": "P_solo"}
        assert compiled.timed_net.duration("P_solo") == 3

    def test_execute_resets(self):
        compiled = compile_spec(MediaLeaf("solo", 3))
        first = compiled.execute()
        second = compiled.execute()
        assert first.makespan() == second.makespan() == pytest.approx(3)

    def test_deadlock_free_until_done(self):
        compiled = compile_spec(sequence(MediaLeaf("a", 1), MediaLeaf("b", 2)))
        net = compiled.timed_net.net
        from repro.core.analysis import find_deadlocks

        dead = find_deadlocks(net)
        # the only dead marking is the accepting "done" marking
        assert len(dead) == 1 and dead[0]["P_done"] == 1

    def test_verify_catches_tampered_duration(self):
        compiled = compile_spec(sequence(MediaLeaf("a", 2), MediaLeaf("b", 3)))
        compiled.timed_net.set_duration("P_a", 4.0)  # sabotage
        with pytest.raises(SpecError):
            verify_schedule(compiled)

    def test_makespan_matches_spec_duration(self):
        spec = sequence(
            parallel(MediaLeaf("v", 10), MediaLeaf("s", 10)),
            Composite(R.BEFORE, MediaLeaf("x", 2), MediaLeaf("y", 2), delay=1),
        )
        compiled = compile_spec(spec)
        assert compiled.execute().makespan() == pytest.approx(spec_duration(spec))
