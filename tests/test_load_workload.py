"""Workload generator, cohort planner, and load-harness smoke tests."""

import pytest

from repro.load import (
    CohortViewer,
    LectureSpec,
    LoadConfig,
    WorkloadError,
    WorkloadSpec,
    generate,
    lecture_catalog,
    plan_cohorts,
    run_workload,
)


def catalog(**kwargs):
    return lecture_catalog(4, 20.0, stagger=30.0, **kwargs)


class TestSpecValidation:
    def test_rejects_empty_catalog(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(viewers=10, lectures=())

    def test_rejects_bad_rates(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(viewers=10, lectures=catalog(), churn_rate=1.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(viewers=10, lectures=catalog(), flash_fraction=-0.1)

    def test_rejects_nonpositive_lecture_duration(self):
        with pytest.raises(WorkloadError):
            LectureSpec("x", duration=0.0)


class TestGenerator:
    def spec(self, **kwargs):
        defaults = dict(
            viewers=500, lectures=catalog(), seed=42, zipf_s=1.2,
            flash_fraction=0.5, flash_width=2.0,
            churn_rate=0.2, seek_rate=0.2,
        )
        defaults.update(kwargs)
        return WorkloadSpec(**defaults)

    def test_deterministic_for_a_seed(self):
        a = generate(self.spec())
        b = generate(self.spec())
        assert a.arrivals == b.arrivals
        c = generate(self.spec(seed=43))
        assert c.arrivals != a.arrivals

    def test_arrivals_sorted_and_complete(self):
        script = generate(self.spec())
        assert len(script) == 500
        joins = [a.join_time for a in script.arrivals]
        assert joins == sorted(joins)
        assert len({a.viewer for a in script.arrivals}) == 500

    def test_zipf_skew_orders_the_catalog(self):
        script = generate(self.spec(viewers=4000, zipf_s=1.3))
        counts = [len(v) for v in (
            script.by_lecture().get(lec.name, [])
            for lec in self.spec().lectures
        )]
        # rank-1 strictly dominates rank-4, and the head holds a plural
        assert counts[0] > counts[-1] * 2
        assert counts[0] > 4000 * 0.35

    def test_uniform_when_zipf_is_zero(self):
        script = generate(self.spec(viewers=4000, zipf_s=0.0))
        counts = [len(v) for v in script.by_lecture().values()]
        assert max(counts) < min(counts) * 1.5

    def test_flash_crowd_lands_inside_the_width(self):
        spec = self.spec(flash_fraction=1.0, flash_width=2.0,
                         churn_rate=0.0, seek_rate=0.0)
        by_name = {lec.name: lec for lec in spec.lectures}
        for arrival in generate(spec).arrivals:
            start = by_name[arrival.lecture].start_time
            assert start <= arrival.join_time <= start + 2.0

    def test_churn_and_seek_rates_apply(self):
        script = generate(self.spec(viewers=2000))
        leavers = sum(1 for a in script.arrivals if a.leave_time is not None)
        seekers = sum(1 for a in script.arrivals if a.seek is not None)
        assert 0.1 < leavers / 2000 < 0.3
        assert seekers > 0
        for a in script.arrivals:
            # mutually exclusive individuation paths
            assert not (a.seek is not None and a.leave_time is not None)
            if a.leave_time is not None:
                assert a.leave_time > a.join_time

    def test_live_viewers_join_at_the_broadcast_position(self):
        spec = self.spec(lectures=lecture_catalog(
            2, 20.0, stagger=40.0, live_fraction=1.0))
        by_name = {lec.name: lec for lec in spec.lectures}
        script = generate(spec)
        assert script.arrivals
        for a in script.arrivals:
            assert a.live
            lec = by_name[a.lecture]
            assert a.start_position == pytest.approx(
                min(max(0.0, a.join_time - lec.start_time), lec.duration)
            )

    def test_horizon_covers_every_watch(self):
        script = generate(self.spec())
        by_name = {lec.name: lec for lec in script.spec.lectures}
        horizon = script.horizon
        for a in script.arrivals:
            lec = by_name[a.lecture]
            end = a.join_time + (lec.duration - a.start_position)
            if a.leave_time is not None:
                end = min(end, a.leave_time)
            assert end <= horizon + 1e-9


class TestCohortPlanning:
    def test_same_bucket_same_edge_collapses(self):
        spec = WorkloadSpec(
            viewers=100, lectures=catalog(), seed=1,
            flash_fraction=1.0, flash_width=0.0, join_quantum=0.5,
        )
        script = generate(spec)
        plans = plan_cohorts(script, lambda a: "edge0")
        # every lecture's flash crowd lands at its exact start time ->
        # one cohort per lecture with an audience
        assert len(plans) == len(script.by_lecture())
        assert sum(p.multiplicity for p in plans) == 100

    def test_members_split_across_edges_and_buckets(self):
        spec = WorkloadSpec(
            viewers=200, lectures=catalog(), seed=3,
            flash_fraction=0.5, flash_width=3.0, join_quantum=0.5,
        )
        script = generate(spec)
        plans = plan_cohorts(
            script, lambda a: f"edge{hash(a.viewer) % 3}"
        )
        assert sum(p.multiplicity for p in plans) == 200
        for plan in plans:
            quantum = 0.5
            bucket = round(plan.join_time / quantum)
            assert plan.join_time == pytest.approx(bucket * quantum)
            for member in plan.members:
                assert member.lecture == plan.lecture
                assert abs(member.join_time - plan.join_time) < quantum

    def test_individuating_members_listed(self):
        spec = WorkloadSpec(
            viewers=300, lectures=catalog(), seed=5,
            churn_rate=0.3, seek_rate=0.3,
        )
        script = generate(spec)
        plans = plan_cohorts(script, lambda a: "edge0")
        individuating = sum(
            len(p.individuating_members()) for p in plans
        )
        expected = sum(1 for a in script.arrivals if a.individuates)
        assert individuating == expected > 0

    def test_plans_ordered_by_join_time(self):
        script = generate(WorkloadSpec(
            viewers=100, lectures=catalog(), seed=7, flash_width=4.0))
        plans = plan_cohorts(script, lambda a: "edge0")
        times = [p.join_time for p in plans]
        assert times == sorted(times)


class TestHarness:
    """End-to-end smoke: small audiences through both execution modes."""

    SPEC = dict(
        viewers=30,
        seed=11, zipf_s=1.0, flash_fraction=0.6, flash_width=1.5,
        churn_rate=0.2, seek_rate=0.2, join_quantum=0.5,
    )

    def spec(self):
        return WorkloadSpec(
            lectures=lecture_catalog(2, 8.0, stagger=1.0), **self.SPEC
        )

    def test_cohort_mode_collapses_sessions(self):
        result = run_workload(
            self.spec(), mode="cohort",
            config=LoadConfig(edges=2, heartbeat_interval=1.0),
        )
        assert result.viewers == 30
        assert result.cohorts < 30          # aggregation actually happened
        assert result.sessions == result.cohorts + result.splits
        assert result.qoe["viewers"] == 30  # every modeled viewer counted
        assert result.events_leapt > 0      # beacon windows were leapt
        assert result.beacons > 0           # including leapt beacons
        assert result.events_per_sec > 0
        assert result.peak_rss > 0

    def test_real_mode_drives_every_viewer(self):
        result = run_workload(
            self.spec(), mode="real", config=LoadConfig(edges=2),
        )
        assert result.viewers == result.sessions == 30
        assert result.cohorts == 0
        assert result.qoe["viewers"] == 30

    def test_modes_agree_on_audience_accounting(self):
        cfg = LoadConfig(edges=2)
        cohort = run_workload(self.spec(), mode="cohort", config=cfg)
        real = run_workload(self.spec(), mode="real", config=cfg)
        assert cohort.viewers == real.viewers
        assert cohort.qoe["viewers"] == real.qoe["viewers"]
        # aggregation must make the run cheaper, not just equal
        assert cohort.events_processed < real.events_processed

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_workload(self.spec(), mode="hybrid")


class TestCohortViewerLifecycle:
    def test_depart_snapshots_and_shrinks(self):
        from repro.streaming import MediaServer
        from repro.web import VirtualNetwork
        from repro.load.harness import encode_lecture

        net = VirtualNetwork()
        net.connect("server", "c", bandwidth=2_000_000, delay=0.02)
        server = MediaServer(net, "server", port=8080)
        server.publish("lec", encode_lecture("lec", 6.0))
        cohort = CohortViewer(
            net, "c", server.url_of("lec"), size=5, heartbeat_interval=0.5
        )
        cohort.start()
        net.simulator.run_until(3.0)
        qoe = cohort.depart(user="leaver")
        assert qoe is not None and qoe.multiplicity == 1
        assert cohort.multiplicity == 4
        net.simulator.run_until(20.0)
        cohort.stop_heartbeat()
        net.simulator.run(max_events=1_000_000)
        qoes = cohort.qoes()
        # 1 delegate measurement (weight 4) + 1 departure snapshot
        assert len(qoes) == 2
        assert sum(q.multiplicity for q in qoes) == 5
        assert cohort.beacons > 0


class TestPlannerPrefetch:
    """``LoadConfig.prefetch`` as a :class:`PrefetchConfig`: scheduled
    warming on the run's own timeline, tier reuse for warm second waves."""

    def spec(self):
        return WorkloadSpec(
            viewers=40, seed=3, zipf_s=1.0, flash_fraction=0.6,
            flash_width=1.5, join_quantum=0.5,
            lectures=lecture_catalog(3, 8.0, stagger=4.0),
        )

    def config(self, **kw):
        from repro.catalog import PrefetchConfig

        kw.setdefault("prefetch", PrefetchConfig(lead_time=2.0))
        return LoadConfig(edges=4, regions=2, teardown=True, **kw)

    def test_planner_warms_parents_and_reports_stats(self):
        result = run_workload(
            self.spec(), mode="cohort", config=self.config(),
        )
        stats = result.control["prefetch"]
        # 3 VOD lectures × 2 region parents, all landed
        assert stats["items"] == 6
        assert stats["ok"] == 6 and stats["failed"] == 0
        assert stats["warmed_bytes"] == stats["planned_bytes"] > 0
        assert result.tier is None  # not kept unless asked

    def test_planner_run_passes_trace_audit(self):
        from repro.obs import TraceChecker, Tracer

        tracer = Tracer()
        run_workload(
            self.spec(), mode="cohort", config=self.config(tracer=tracer),
        )
        checker = TraceChecker(tracer.records)
        checker.assert_ok()
        assert checker.prefetch_spans == 6
        assert checker.prefetch_bytes > 0

    def test_tier_reuse_makes_second_wave_origin_free(self):
        wave1 = run_workload(
            self.spec(), mode="cohort", config=self.config(), keep_tier=True,
        )
        assert wave1.tier is not None
        assert wave1.control["origin"]["bytes_served"] > 0
        wave2 = run_workload(
            self.spec(), mode="cohort",
            config=self.config(client_prefix="w2-"),
            tier=wave1.tier,
        )
        # every warm is a local cache hit: zero origin media egress
        assert wave2.control["prefetch"]["ok"] == 6
        assert wave2.control["prefetch"]["origin_egress_bytes"] == 0
        assert wave2.control["origin"]["bytes_served"] == 0

    def test_prefetch_false_still_means_cold_start(self):
        result = run_workload(
            self.spec(), mode="cohort",
            config=LoadConfig(edges=2, prefetch=False),
        )
        assert "prefetch" not in result.control

    def test_disabled_planner_schedules_nothing(self):
        from repro.catalog import PrefetchConfig

        result = run_workload(
            self.spec(), mode="cohort",
            config=self.config(prefetch=PrefetchConfig(enabled=False)),
        )
        assert "prefetch" not in result.control
