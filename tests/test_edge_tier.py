"""The edge-relay tier end to end: coalescing, caching, teardown, parity.

Covers the tentpole contracts of ``repro.streaming.edge``:

* **request coalescing** — N clients behind one edge share exactly one
  origin replica session (including opens that land *during* the fill);
* **byte parity** — clients served through a relay receive exactly the
  packets a direct origin session would have sent;
* **packet-run caching** — a re-opened point refills from the local
  cache: origin data-path egress stays flat, the ``edge_cache`` counters
  show the hit; LRU + byte budget evict the coldest run;
* **two-hop teardown** — the last local client leaving closes the local
  point *and* the upstream origin session; QoS reservations on both
  hops drain (the satellite audit: an edge crash must not leak its
  origin-side sessions either — they settle at restart/shutdown);
* **join quantum** — staggered viewers land in one shared pacing group;
* **passthrough** — broadcast feeds, MBR thinning, and player recovery
  (NAK repair) all behave against a relay exactly as against the origin.
"""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.lod import LiveCaptureSession
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.streaming import (
    EdgeRelay,
    MediaPlayer,
    PacketRunCache,
    PlayerState,
    RecoveryConfig,
    build_edge_tier,
)
from repro.streaming.server import MediaServer
from repro.web import VirtualNetwork

PROFILE = get_profile("dsl-256k")
DURATION = 8.0


def make_asf(file_id="lec", duration=DURATION):
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id=file_id,
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
        images=[(ImageObject("s0", duration, width=320, height=240), 0.0)],
        commands=slide_commands([("s0", 0.0)]),
    )


def mbr_asf():
    renditions = [
        get_profile(n) for n in ("modem-56k", "isdn-dual", "dsl-256k")
    ]
    return ASFEncoder(EncoderConfig(profile=renditions[-1])).encode_file_mbr(
        file_id="mbr",
        video=VideoObject("talk", DURATION, width=640, height=480, fps=25),
        renditions=renditions,
        audio=AudioObject("voice", DURATION),
        commands=slide_commands([("s0", 0.0)]),
    )


def make_world(asf=None, *, edges=1, clients=3, qos_enabled=False, **relay_kwargs):
    reset_counters("edge_cache")
    net = VirtualNetwork()
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5, qos_enabled=qos_enabled,
        trace_label="origin",
    )
    origin.publish("lecture", asf if asf is not None else make_asf())
    directory, relays = build_edge_tier(
        net, origin, [f"edge{i}" for i in range(edges)],
        pacing_quantum=0.5, qos_enabled=qos_enabled, **relay_kwargs,
    )
    for relay in relays:
        for c in range(clients):
            net.connect(relay.host, f"c{c}", bandwidth=2_000_000, delay=0.02)
    return net, origin, directory, relays


def blob_of(packets):
    return b"".join(p.pack() for p in packets)


class TestCoalescing:
    def test_sequential_clients_share_one_origin_session(self):
        net, origin, _, (edge,) = make_world()
        sinks = [[] for _ in range(3)]
        sessions = [
            edge.open_session("lecture", f"c{i}", sinks[i].append)
            for i in range(3)
        ]
        for s in sessions:
            edge.play(s.session_id)
        net.simulator.run(max_events=1_000_000)
        assert origin.sessions.total_created == 1
        reference = blob_of(origin.points["lecture"].content.packets)
        for sink in sinks:
            assert blob_of(sink) == reference

    def test_opens_landing_mid_fill_ride_the_same_fill(self):
        net, origin, _, (edge,) = make_world()
        sinks = [[] for _ in range(3)]
        opened = []

        def open_one(i):
            session = edge.open_session("lecture", f"c{i}", sinks[i].append)
            edge.play(session.session_id)
            opened.append(session.session_id)

        # all three opens dispatch at the same instant: the first blocks
        # re-entrantly inside its fill, the other two fire nested and must
        # wait on that fill instead of opening their own origin sessions
        for i in range(3):
            net.simulator.schedule(0.001, lambda i=i: open_one(i))
        net.simulator.run(max_events=1_000_000)
        assert len(opened) == 3
        assert origin.sessions.total_created == 1
        assert get_counters("edge_cache")["fills"] == 1
        reference = blob_of(origin.points["lecture"].content.packets)
        for sink in sinks:
            assert blob_of(sink) == reference

    def test_relay_parity_with_direct_origin_serving(self):
        asf = make_asf()
        # direct: origin serves the client itself
        direct_net = VirtualNetwork()
        direct_net.connect("origin", "c0", bandwidth=2_000_000, delay=0.02)
        direct = MediaServer(direct_net, "origin", port=8080,
                             pacing_quantum=0.5)
        direct.publish("lecture", asf)
        direct_sink = []
        session = direct.open_session("lecture", "c0", direct_sink.append)
        direct.play(session.session_id)
        direct_net.simulator.run(max_events=1_000_000)

        net, origin, _, (edge,) = make_world(asf)
        relay_sink = []
        session = edge.open_session("lecture", "c0", relay_sink.append)
        edge.play(session.session_id)
        net.simulator.run(max_events=1_000_000)
        assert blob_of(relay_sink) == blob_of(direct_sink)


class TestPacketRunCache:
    def test_refill_is_a_cache_hit_with_zero_origin_egress(self):
        net, origin, _, (edge,) = make_world()
        sink = []
        session = edge.open_session("lecture", "c0", sink.append)
        edge.play(session.session_id)
        net.simulator.run(max_events=1_000_000)
        edge.close_session(session.session_id)
        assert "lecture" not in edge.points  # fully released
        fill_egress = origin.bytes_served
        counters = get_counters("edge_cache")
        assert counters["misses"] == 1 and counters["fills"] == 1

        sink2 = []
        session = edge.open_session("lecture", "c1", sink2.append)
        edge.play(session.session_id)
        net.simulator.run(max_events=1_000_000)
        assert counters["hits"] == 1
        # the refill cost the origin a control-plane open, zero media bytes
        assert origin.bytes_served == fill_egress
        assert blob_of(sink2) == blob_of(sink)
        # and the origin still tracks exactly one (register-only) session
        assert len(origin.sessions) == 1

    def test_seek_replay_served_from_local_buffer(self):
        net, origin, _, (edge,) = make_world()
        sink = []
        session = edge.open_session("lecture", "c0", sink.append)
        edge.play(session.session_id)
        net.simulator.run(max_events=1_000_000)
        after_fill = origin.bytes_served
        served_once = len(sink)
        edge.seek(session.session_id, 0.0)  # replay from the top
        net.simulator.run(max_events=1_000_000)
        assert len(sink) > served_once  # the replay actually re-delivered
        assert origin.bytes_served == after_fill  # ...without origin help

    def test_lru_eviction_respects_byte_budget(self):
        first = make_asf("lec-a")
        second = make_asf("lec-b")
        size = len(first.header.pack()) + sum(
            len(b) for b in first.packed_packets()
        )
        reset_counters("edge_cache")
        cache = PacketRunCache(max_bytes=int(size * 1.5))
        cache.store(first.fingerprint(), first)
        cache.store(second.fingerprint(), second)
        counters = get_counters("edge_cache")
        assert counters["evictions"] == 1
        assert first.fingerprint() not in cache
        assert cache.lookup(second.fingerprint()) is second
        assert cache.bytes_cached <= cache.max_bytes

    def test_lru_order_follows_use_not_insertion(self):
        reset_counters("edge_cache")
        a, b = make_asf("lec-a"), make_asf("lec-b")
        cache = PacketRunCache(max_bytes=10**9)
        cache.store(a.fingerprint(), a)
        cache.store(b.fingerprint(), b)
        cache.lookup(a.fingerprint())  # touch a: b becomes coldest
        assert cache.keys()[0] == b.fingerprint()


class TestTwoHopTeardown:
    def test_last_client_out_closes_the_upstream_session(self):
        net, origin, _, (edge,) = make_world(qos_enabled=True)
        sinks = [[] for _ in range(2)]
        sessions = [
            edge.open_session("lecture", f"c{i}", sinks[i].append)
            for i in range(2)
        ]
        assert len(origin.sessions) == 1
        edge.close_session(sessions[0].session_id)
        # one local client remains: the upstream session must survive
        assert len(origin.sessions) == 1
        assert "lecture" in edge.points
        edge.close_session(sessions[1].session_id)
        assert len(origin.sessions) == 0
        assert "lecture" not in edge.points
        origin.assert_no_qos_leaks()
        edge.assert_no_qos_leaks()
        origin.sessions.assert_consistent()
        edge.sessions.assert_consistent()

    def test_edge_crash_orphans_settle_at_restart(self):
        net, origin, _, (edge,) = make_world(qos_enabled=True)
        sink = []
        session = edge.open_session("lecture", "c0", sink.append)
        edge.play(session.session_id)
        net.simulator.run_until(net.simulator.now + 1.0)
        edge.crash()
        # the audit's leak: the edge died before closing its origin-side
        # replica session — the origin still holds it (and its QoS channel)
        assert len(origin.sessions) == 1
        assert edge._orphan_upstream
        edge.restart()
        net.simulator.run(max_events=100_000)
        assert len(origin.sessions) == 0
        assert not edge._orphan_upstream
        origin.assert_no_qos_leaks()
        edge.assert_no_qos_leaks()
        origin.sessions.assert_consistent()
        edge.sessions.assert_consistent()

    def test_shutdown_sweeps_everything(self):
        net, origin, _, (edge,) = make_world(qos_enabled=True)
        for i in range(2):
            s = edge.open_session("lecture", f"c{i}", [].append)
            edge.play(s.session_id)
        net.simulator.run_until(net.simulator.now + 0.5)
        edge.shutdown()
        assert len(edge.sessions) == 0 and not edge.points
        assert len(origin.sessions) == 0
        origin.assert_no_qos_leaks()
        edge.assert_no_qos_leaks()


class TestJoinQuantum:
    def test_staggered_clients_share_one_pacing_group(self):
        net, origin, _, (edge,) = make_world(join_quantum=0.5)
        edge.prefetch("lecture")
        sinks = [[] for _ in range(3)]
        sessions = []

        def open_at(i):
            session = edge.open_session("lecture", f"c{i}", sinks[i].append)
            edge.play(session.session_id)
            sessions.append(session)

        base = net.simulator.now
        for i in range(3):
            net.simulator.schedule_at(base + 0.02 * (i + 1), lambda i=i: open_at(i))
        # just past the next quantum boundary every session must ride the
        # same pacing group (one event chain for all three)
        net.simulator.run_until(base + 0.62)
        groups = {id(s.pacing_group) for s in sessions}
        assert len(sessions) == 3
        assert len(groups) == 1 and None not in {s.pacing_group for s in sessions}
        net.simulator.run(max_events=1_000_000)
        reference = blob_of(origin.points["lecture"].content.packets)
        for sink in sinks:
            assert blob_of(sink) == reference

    def test_zero_quantum_plays_immediately(self):
        net, origin, _, (edge,) = make_world(join_quantum=0.0)
        edge.prefetch("lecture")
        sink = []
        session = edge.open_session("lecture", "c0", sink.append)
        edge.play(session.session_id)
        assert session.pacing_group is not None  # no deferral


class TestPassthrough:
    def test_player_watches_through_the_edge(self):
        net, origin, directory, (edge,) = make_world()
        net.connect("edge0", "student", bandwidth=2_000_000, delay=0.02)
        player = MediaPlayer(net, "student")
        report = player.watch(directory.url_for("student", "lecture"))
        assert player.state is PlayerState.FINISHED
        assert report.rendered and not report.rebuffer_count
        assert all(rate == 0.0 for rate in report.loss_rates.values())

    def test_mbr_thinning_happens_at_the_edge(self):
        asf = mbr_asf()
        net, origin, directory, (edge,) = make_world(asf)
        # a narrow last mile forces the edge to pick a low rendition,
        # while the edge itself was filled with the full packet run
        net.connect("edge0", "student", bandwidth=150_000, delay=0.02)
        player = MediaPlayer(net, "student")
        player.connect(directory.url_for("student", "lecture"))
        player.play()
        net.simulator.run_until(net.simulator.now + 40.0)
        if player.state is not PlayerState.FINISHED:
            player.stop()
        renditions = asf.header.mbr_group("video")
        highest = max(renditions, key=lambda s: s.bitrate)
        # dsl-256k cannot fit a 150 kbps last mile: the *edge* must have
        # run rendition selection, not just proxied the origin's choice
        assert player.selected_video != highest.stream_number
        # the replica fill was NOT thinned: the edge holds every rendition
        local = edge.cache.lookup(asf.fingerprint())
        assert local is not None and blob_of(local.packets) == blob_of(asf.packets)

    def test_nak_repair_on_the_edge_last_mile(self):
        net, origin, directory, (edge,) = make_world()
        net.connect("edge0", "student", bandwidth=2_000_000, delay=0.02)
        downlink = net.link("edge0", "student")
        downlink.rng.seed(1234)
        edge.prefetch("lecture")
        after_fill = origin.bytes_served
        downlink.set_loss(loss_rate=0.05)
        player = MediaPlayer(net, "student", recovery=RecoveryConfig())
        player.connect(directory.url_for("student", "lecture"))
        player.play()
        net.simulator.run_until(net.simulator.now + 40.0)
        if player.state is not PlayerState.FINISHED:
            player.stop()
        report = player.report()
        # losses on the last mile repaired by the *edge's* packet cache
        assert report.recovery.get("naks_sent", 0) > 0
        assert edge.recovery_stats["repairs_sent"] > 0
        assert all(rate == 0.0 for rate in report.loss_rates.values())
        assert origin.bytes_served == after_fill

    def test_broadcast_passes_through_the_relay(self):
        net = VirtualNetwork()
        origin = MediaServer(net, "origin", port=8080)
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        origin.publish("live", capture.stream)
        directory, (edge,) = build_edge_tier(net, origin, ["edge0"])
        net.connect("edge0", "viewer", bandwidth=2_000_000, delay=0.02)
        sink = []
        session = edge.open_session("live", "viewer", sink.append)
        edge.play(session.session_id)
        net.simulator.run_until(6.0)
        capture.finish()
        net.simulator.run(max_events=100_000)
        assert session.broadcast
        assert sink  # live packets crossed both hops
        got = {p.sequence for p in sink}
        sent = {p.sequence for p in capture.stream.packets}
        assert got <= sent and len(got) > 0.9 * len(sent)
