"""End-to-end recovery: NAK retransmit, crash resume, degradation, parity.

The chaos counterpart of test_lossy_baseline.py — the same scripted fault
timelines, but with the player's recovery machinery switched on
(``MediaPlayer(recovery=RecoveryConfig())``). Asserts the PR's acceptance
criteria:

* 5% burst loss: >= 99% of media bytes delivered and every slide command
  fired with bounded sync error (the baseline suite shows recovery-off
  drops both);
* mid-stream server crash + restart: the client reconnects on its own and
  resumes from the buffered frontier without re-downloading or
  double-rendering delivered content;
* control-plane partition: reconnect attempts back off until the heal,
  then playback completes;
* bandwidth collapse on an MBR file: the client downshifts to a lighter
  rendition instead of rebuffering forever;
* fault-free runs: recovery being armed adds not a single simulator event.

``CHAOS_SEED`` (env) reseeds the lossy links; all assertions must hold
for seeds 0, 1, 2.
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.asf.packets import Depacketizer, MediaUnit, Packetizer
from repro.lod import LiveCaptureSession
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.net import FaultInjector, FaultPlan, GilbertElliott
from repro.net.qos import QoSError
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    RecoveryConfig,
)
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def mbr_asf():
    renditions = [
        get_profile(n)
        for n in ("modem-56k", "isdn-dual", "dsl-256k", "lan-1m")
    ]
    return ASFEncoder(EncoderConfig(profile=renditions[-1])).encode_file_mbr(
        file_id="mbr",
        video=VideoObject("talk", DURATION, width=640, height=480, fps=25),
        renditions=renditions,
        audio=AudioObject("voice", DURATION),
        commands=slide_commands([("s0", 0.0), ("s1", DURATION / 2)]),
    )


def make_world(asf=None, *, burst_loss=None, qos_enabled=False):
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
    downlink = net.link("server", "student")
    downlink.rng.seed(1000 + CHAOS_SEED)
    if burst_loss is not None:
        downlink.set_loss(burst_loss=burst_loss)
    server = MediaServer(net, "server", port=8080, qos_enabled=qos_enabled)
    server.publish("lecture", asf if asf is not None else make_asf())
    return net, server


def drive(net, player, horizon):
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


def watch(net, server, *, recovery=None, horizon=60.0, point="lecture"):
    player = MediaPlayer(net, "student", recovery=recovery)
    player.connect(server.url_of(point))
    player.play()
    return drive(net, player, horizon)


class TestDepacketizerGapHook:
    def _packets(self, count=6):
        data = b"x" * 600
        units = [MediaUnit(1, i, i * 100, True, data) for i in range(count)]
        packets = Packetizer(packet_size=400, bitrate=100_000).packetize(
            [units]
        )
        assert len(packets) >= 5
        return packets

    def test_gap_reported_once_with_missing_sequences(self):
        gaps = []
        depacketizer = Depacketizer(on_gap=gaps.append)
        packets = self._packets()
        depacketizer.push_packet(packets[0])
        depacketizer.push_packet(packets[1])
        assert gaps == []  # in order: no gap
        depacketizer.push_packet(packets[4])
        assert gaps == [[packets[2].sequence, packets[3].sequence]]
        # a late (repaired) packet fills the hole without a new report
        depacketizer.push_packet(packets[2])
        assert len(gaps) == 1

    def test_replay_suppresses_already_completed_objects(self):
        depacketizer = Depacketizer()
        packets = self._packets()
        for packet in packets:
            depacketizer.push_packet(packet)
        completed = len(depacketizer.completed)
        depacketizer.expect_replay(suppress_completed=True)
        for packet in packets:
            assert depacketizer.push_packet(packet) == []
        assert len(depacketizer.completed) == completed
        assert depacketizer.suppressed_duplicates > 0


class TestNakRepair:
    def test_burst_loss_repaired_to_99_percent(self):
        clean_net, clean_srv = make_world()
        clean = watch(clean_net, clean_srv)

        net, server = make_world(
            burst_loss=GilbertElliott.from_average(0.05, mean_burst=5.0)
        )
        report = watch(net, server, recovery=RecoveryConfig())

        # the acceptance bar: >= 99% of media bytes despite 5% burst loss
        assert report.media_bytes >= 0.99 * clean.media_bytes
        assert report.recovery.get("naks_sent", 0) >= 1
        assert report.recovery.get("repairs_received", 0) >= 1
        assert server.recovery_stats["repairs_sent"] >= 1
        # every slide fires, and stays on the media clock
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired == [f"s{i}" for i in range(SLIDES)]
        assert report.max_command_sync_error <= 0.2
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)

    def test_repairs_add_nothing_on_a_clean_link(self):
        net, server = make_world()
        report = watch(net, server, recovery=RecoveryConfig())
        assert report.recovery.get("naks_sent", 0) == 0
        assert server.recovery_stats["repairs_sent"] == 0
        assert report.media_bytes > 0


class TestLiveCommandRepair:
    def _run(self, recovery):
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
        server = MediaServer(net, "server", port=8080)
        capture = LiveCaptureSession(
            net.simulator, get_profile("isdn-dual"), chunk=0.5
        )
        server.publish("live", capture.stream)
        FaultInjector(net).apply(
            FaultPlan("outage").link_down(
                "server", "student", at=4.8, until=5.8, both=False
            )
        )
        player = MediaPlayer(net, "student", preroll_override=1.0,
                             recovery=recovery)
        player.connect(server.url_of("live"))
        player.play()
        capture.advance_slide("intro")
        net.simulator.run_until(5.0)
        capture.advance_slide("mid")  # transmitted into the dead window
        net.simulator.run_until(9.0)
        capture.advance_slide("wrap")
        net.simulator.run_until(14.0)
        capture.finish()
        player.mark_stream_ended()
        net.simulator.run_until(16.0)
        player.stop()
        return player.report()

    def test_every_live_slide_fires_with_recovery(self):
        without = self._run(None)
        with_recovery = self._run(RecoveryConfig())

        lost = [c.command.parameter for c in without.commands]
        assert "mid" not in lost  # the baseline demonstrably loses it

        fired = [c.command.parameter for c in with_recovery.commands]
        assert sorted(fired) == ["intro", "mid", "wrap"]
        # the repaired command fires late but bounded: outage window plus
        # a NAK round trip, nowhere near a whole-lecture desync
        mid = next(
            c for c in with_recovery.commands
            if c.command.parameter == "mid"
        )
        assert mid.sync_error <= 2.5
        assert with_recovery.recovery.get("naks_sent", 0) >= 1
        assert with_recovery.recovery.get("repairs_received", 0) >= 1


class TestCrashResume:
    def test_client_resumes_from_rendered_position(self):
        clean_net, clean_srv = make_world()
        clean = watch(clean_net, clean_srv)

        net, server = make_world(qos_enabled=True)
        injector = FaultInjector(net, servers={"media": server})
        injector.apply(
            FaultPlan("crash").server_crash("media", at=6.0, restart_at=8.0)
        )
        player = MediaPlayer(net, "student", recovery=RecoveryConfig())
        player.connect(server.url_of("lecture"))
        player.play()
        report = drive(net, player, 60.0)

        assert server.crash_count == 1
        assert report.recovery.get("stalls_detected", 0) >= 1
        assert report.recovery.get("reconnects", 0) >= 1
        # playback completes end to end after the restart
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        assert report.media_bytes >= 0.999 * clean.media_bytes
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired == [f"s{i}" for i in range(SLIDES)]
        # resume did not re-deliver what the client already had: nothing
        # renders twice, and the replay overlap is at most a boundary sliver
        keys = [
            (r.unit.stream_number, r.unit.object_number)
            for r in report.rendered
        ]
        assert len(keys) == len(set(keys))
        assert server.sessions.total_created == 2
        # the crash freed the first session's QoS channel, the close freed
        # the second's
        server.assert_no_qos_leaks()

    def test_give_up_after_bounded_reconnect_attempts(self):
        net, server = make_world()
        FaultInjector(net, servers={"media": server}).apply(
            FaultPlan("fatal").server_crash("media", at=6.0)  # no restart
        )
        config = RecoveryConfig(max_reconnects=3)
        player = MediaPlayer(net, "student", recovery=config)
        player.connect(server.url_of("lecture"))
        player.play()
        report = drive(net, player, 60.0)

        assert player.state is PlayerState.FINISHED
        assert report.recovery.get("reconnect_attempts", 0) == 3
        assert report.recovery.get("reconnect_giveups", 0) == 1
        assert report.duration_watched < DURATION


class TestPartitionHeal:
    def test_reconnect_after_control_plane_partition(self):
        net, server = make_world(qos_enabled=True)
        FaultInjector(net).apply(
            FaultPlan("partition").partition(
                "student", ["server"], at=5.0, until=9.0
            )
        )
        player = MediaPlayer(net, "student", recovery=RecoveryConfig())
        player.connect(server.url_of("lecture"))
        player.play()
        report = drive(net, player, 90.0)

        assert report.recovery.get("stalls_detected", 0) >= 1
        assert report.recovery.get("reconnects", 0) >= 1
        # attempts during the partition failed and backed off
        assert (
            report.recovery["reconnect_attempts"]
            > report.recovery["reconnects"]
        )
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        # the orphaned pre-partition session was closed after the heal:
        # nothing leaks even though its first close was swallowed
        assert len(server.sessions) == 0
        server.assert_no_qos_leaks()


class TestGracefulDegradation:
    def _run(self, recovery):
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
        server = MediaServer(net, "server", port=8080)
        server.publish("mbr", mbr_asf())
        FaultInjector(net).apply(
            FaultPlan("collapse").bandwidth(
                "server", "student", at=5.0, bps=400_000.0
            )
        )
        player = MediaPlayer(net, "student", recovery=recovery)
        player.connect(server.url_of("mbr"))
        player.play()
        report = drive(net, player, 120.0)
        return player, report

    def test_bandwidth_collapse_triggers_downshift(self):
        _, stubborn = self._run(None)
        player, degraded = self._run(RecoveryConfig())

        assert degraded.recovery.get("downshifts", 0) >= 1
        # the server actually switched the session to a lighter rendition
        assert player.selected_video is not None
        # degrading beats stubbornly streaming the fat rendition through
        # a collapsed link
        assert degraded.rebuffer_count < stubborn.rebuffer_count
        assert degraded.duration_watched >= stubborn.duration_watched


class TestQoSTeardownPaths:
    def test_crash_and_failed_handshake_release_reservations(self):
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=600_000, delay=0.02)
        server = MediaServer(net, "server", port=8080, qos_enabled=True)
        server.publish("lecture", make_asf())

        first = server.open_session("lecture", "student", lambda pkt: None)
        second = server.open_session("lecture", "student", lambda pkt: None)
        with pytest.raises(QoSError):
            server.open_session("lecture", "student", lambda pkt: None)
        # the refused handshake left neither a session nor a reservation
        assert len(server.sessions) == 2
        assert len(server.qos_leaks()) == 2  # the two legitimate holds

        server.crash()
        assert len(server.sessions) == 0
        server.assert_no_qos_leaks()
        assert first.reservation is None and second.reservation is None


class TestFaultFreeParity:
    def test_recovery_armed_adds_zero_simulator_events(self):
        def run(recovery):
            net, server = make_world()
            report = watch(net, server, recovery=recovery)
            return net.simulator.events_processed, report

        off_events, off_report = run(None)
        on_events, on_report = run(RecoveryConfig())
        # the acceptance bar: a fault-free run is event-for-event identical
        assert on_events == off_events
        assert on_report.media_bytes == off_report.media_bytes
        assert len(on_report.rendered) == len(off_report.rendered)
        assert on_report.rebuffer_count == off_report.rebuffer_count == 0
