"""DES hot-loop fast path: unified drain, epoch ticks, leap, shared ticks.

Four engine guarantees the million-viewer load harness leans on:

* **unified drain** — ``run_until``/``run`` pop each heap entry once;
  cancelled entries are discarded in the same pass as live ones execute.
  ``Simulator.cancelled_drained`` counts every dead entry exactly once
  across all drain paths (hot loop, ``peek_time``, compaction), which is
  the regression observable for the old peek-then-step double scan.
* **epoch-anchored PeriodicTask** — tick *n* fires at exactly
  ``epoch + n·interval`` (one float product), never at an accumulated
  ``now + interval``; a million ticks stay on the grid.
* **fast_forward** — when only *skippable* periodic ticks remain
  pending, the clock leaps the window in O(1) per owner instead of
  executing ticks one by one; non-skippable events still run faithfully.
* **SharedTicker** — many callbacks ride one simulator event per
  epoch-aligned instant, and late registrants join on the grid.
"""

import pytest

from repro.net.engine import (
    PeriodicTask,
    SharedTicker,
    SimulationError,
    Simulator,
)


class TestUnifiedDrain:
    def test_every_cancelled_entry_drained_exactly_once(self):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(0.001 * i, lambda i=i: fired.append(i))
            for i in range(1000)
        ]
        for handle in handles[::2]:
            sim.cancel(handle)
        sim.run_until(2.0)
        assert len(fired) == 500
        assert sim.cancelled_drained == 500
        assert not sim._queue and not sim._cancelled

    def test_compaction_and_hot_loop_never_double_count(self):
        # cancellation-heavy pacing: enough dead entries to trip heap
        # compaction mid-run, the rest drained by the hot loop — the
        # counter must come out exactly equal to the number cancelled
        sim = Simulator()
        fired = []
        cancelled = 0
        for wave in range(10):
            handles = [
                sim.schedule(1.0 + wave + 0.001 * i,
                             lambda: fired.append(1))
                for i in range(300)
            ]
            for handle in handles[: 270]:
                sim.cancel(handle)
                cancelled += 1
        sim.run_until(12.0)
        assert sim.cancelled_drained == cancelled
        assert len(fired) == 10 * 30
        assert not sim._queue and not sim._cancelled

    def test_peek_time_share_the_same_counter(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(first)
        assert sim.peek_time() == 2.0
        assert sim.cancelled_drained == 1
        sim.run_until(3.0)
        assert sim.cancelled_drained == 1  # not re-counted by the run

    def test_dead_entries_do_not_linger_in_the_heap(self):
        # the quadratic failure mode: cancelled entries surviving in the
        # queue make every later push/pop pay for them. Compaction must
        # keep the heap near the live population.
        sim = Simulator()
        handles = [
            sim.schedule(1.0 + 0.0001 * i, lambda: None)
            for i in range(10_000)
        ]
        for handle in handles[: 9_000]:
            sim.cancel(handle)
        assert len(sim._queue) < 2_500  # 1_000 live + bounded dead tail
        sim.run_until(3.0)
        assert sim.cancelled_drained == 9_000


class TestEpochAnchoredTicks:
    def test_hundred_thousand_ticks_on_exact_grid(self):
        sim = Simulator()
        interval = 0.05
        sample = {}
        task = PeriodicTask(
            sim, interval,
            lambda: sample.__setitem__(task.ticks, sim.now)
            if task.ticks % 10_000 == 0 else None,
        )
        sim.run_until(5_000.0, max_events=2_000_000)
        assert task.ticks >= 100_000
        # every sampled firing landed on the exact one-product grid value
        # — now + interval accumulation would have drifted off it by now
        for n, t in sample.items():
            assert t == n * interval
        assert task.next_time == task.epoch + task.ticks * task.interval

    def test_million_ticks_stay_aligned_across_a_leap(self):
        sim = Simulator()
        interval = 0.001
        skipped = []
        fires = []
        task = PeriodicTask(
            sim, interval, lambda: fires.append(sim.now),
            skippable=True, on_skip=skipped.append,
        )
        leapt = sim.fast_forward(1_000.0)
        # ticks 0.000 .. 1000.000 inclusive: 1_000_001 instants, all leapt
        assert leapt == 1_000_001
        assert task.ticks == 1_000_001
        assert sum(skipped) == leapt
        assert fires == []  # leapt ticks never invoke the callback
        # and the task is still on the exact grid: the next real fire
        # lands at one float product off the epoch
        sim.run_until(task.next_time)
        assert fires == [task.epoch + 1_000_001 * interval]

    def test_start_delay_anchors_the_epoch(self):
        sim = Simulator()
        sim.run_until(1.3)
        times = []
        task = PeriodicTask(sim, 0.5, lambda: times.append(sim.now),
                            start_delay=0.2)
        sim.run_until(3.0)
        assert task.epoch == 1.5
        assert times == [1.5 + i * 0.5 for i in range(4)]
        assert task.next_time == task.epoch + task.ticks * 0.5


class TestFastForward:
    def test_quiet_window_is_leapt_not_executed(self):
        sim = Simulator()
        beats = []
        skipped = []
        task = PeriodicTask(
            sim, 0.5, lambda: beats.append(sim.now),
            skippable=True, on_skip=skipped.append,
        )
        leapt = sim.fast_forward(100.0)
        assert sim.now == 100.0
        assert beats == []
        assert leapt == 201  # grid instants 0.0 .. 100.0
        assert sim.events_leapt == 201
        assert sum(skipped) == 201
        assert task.ticks == 201
        # the engine did not execute the ticks one by one
        assert sim.events_processed == 0

    def test_blockers_execute_normally_before_the_leap(self):
        sim = Simulator()
        beats = []
        ran = []
        PeriodicTask(
            sim, 0.5, lambda: beats.append(sim.now), skippable=True
        )
        sim.schedule(5.25, lambda: ran.append(sim.now))
        leapt = sim.fast_forward(10.0)
        assert ran == [5.25]
        # ticks before the blocker fired for real (0.0 .. 5.0) ...
        assert beats == [i * 0.5 for i in range(11)]
        # ... ticks after it (5.5 .. 10.0) were leapt
        assert leapt == 10
        assert sim.pending_blockers() == 0

    def test_empty_queue_just_advances_the_clock(self):
        sim = Simulator()
        assert sim.fast_forward(42.0) == 0
        assert sim.now == 42.0

    def test_cannot_run_backwards(self):
        sim = Simulator()
        sim.fast_forward(10.0)
        with pytest.raises(SimulationError):
            sim.fast_forward(5.0)

    def test_non_skippable_ticker_is_never_leapt(self):
        sim = Simulator()
        renders = []
        ticker = SharedTicker(sim, 0.05)  # skippable defaults to False
        ticker.register(lambda: renders.append(sim.now))
        sim.fast_forward(1.0)
        # every render tick executed for real — active playback is
        # simulated faithfully even under fast_forward
        assert len(renders) == 21
        assert sim.events_leapt == 0

    def test_resumes_normal_execution_after_the_leap(self):
        sim = Simulator()
        beats = []
        task = PeriodicTask(
            sim, 1.0, lambda: beats.append(sim.now), skippable=True
        )
        sim.fast_forward(10.5)
        sim.run_until(12.0)
        assert beats == [11.0, 12.0]
        assert task.ticks == 13


class TestSharedTicker:
    def test_many_callbacks_one_event_per_instant(self):
        sim = Simulator()
        counts = [0] * 100
        ticker = SharedTicker(sim, 0.05)
        for i in range(100):
            ticker.register(lambda i=i: counts.__setitem__(i, counts[i] + 1))
        sim.run_until(0.2)
        # 5 instants (0.0 .. 0.2) -> 5 simulator events, not 500
        assert sim.events_processed == 5
        assert counts == [5] * 100

    def test_unregister_idles_the_ticker(self):
        sim = Simulator()
        fired = []
        ticker = SharedTicker(sim, 0.05)
        slot = ticker.register(lambda: fired.append(sim.now))
        sim.run_until(0.1)
        slot.stop()
        assert len(ticker) == 0
        before = sim.events_processed
        sim.run_until(1.0)
        assert sim.events_processed == before  # no idle ticking
        assert sim.pending() == 0

    def test_late_registrant_joins_on_the_grid(self):
        sim = Simulator()
        ticker = SharedTicker(sim, 0.05)
        slot = ticker.register(lambda: None)
        sim.run_until(0.1)
        slot.stop()
        sim.run_until(0.17)  # idle gap, clock between grid instants
        times = []
        ticker.register(lambda: times.append(sim.now))
        sim.run_until(0.31)
        assert times == [4 * 0.05, 5 * 0.05, 6 * 0.05]

    def test_skippable_ticker_leaps_with_full_accounting(self):
        sim = Simulator()
        fired = []
        ticker = SharedTicker(sim, 0.5, skippable=True)
        ticker.register(lambda: fired.append(sim.now))
        sim.run_until(1.0)
        leapt = sim.fast_forward(10.0)
        assert fired == [0.0, 0.5, 1.0]
        assert leapt == 18  # 1.5 .. 10.0
        sim.run_until(11.0)
        # post-leap fires resume on the grid: 10.5 then 11.0
        assert fired[-2:] == [21 * 0.5, 22 * 0.5]
