"""EncodeCache and packed-bytes memoization — the encode-once layer.

A re-encode of identical sources must be a cache hit returning the same
:class:`ASFFile`; any knob that changes the output bytes must miss; and
:meth:`DataPacket.pack` must hand back the identical ``bytes`` object
until the packet is mutated.
"""

import pytest

from repro.asf import (
    ASFEncoder,
    DataPacket,
    EncodeCache,
    EncoderConfig,
    Payload,
)
from repro.asf.drm import LicenseServer
from repro.media import get_profile
from repro.media.objects import AudioObject, ImageObject, VideoObject


def sources():
    video = VideoObject("talk", 12.0, width=320, height=240, fps=15.0)
    audio = AudioObject("voice", 12.0, sample_rate=22_050, channels=1)
    images = [
        (ImageObject("s0", 6.0, width=640, height=480, seed="s0"), 0.0),
        (ImageObject("s1", 6.0, width=640, height=480, seed="s1"), 6.0),
    ]
    return video, audio, images


def make_encoder(cache, **config_kwargs):
    config = EncoderConfig(profile=get_profile("isdn-dual"), **config_kwargs)
    return ASFEncoder(config, cache=cache)


class TestEncodeCache:
    def test_identical_encode_hits(self):
        cache = EncodeCache()
        video, audio, images = sources()
        first = make_encoder(cache).encode_file(
            file_id="L1", video=video, audio=audio, images=images
        )
        again = make_encoder(cache).encode_file(
            file_id="L1", video=video, audio=audio, images=images
        )
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_different_file_id_misses(self):
        cache = EncodeCache()
        video, audio, images = sources()
        a = make_encoder(cache).encode_file(file_id="A", video=video)
        b = make_encoder(cache).encode_file(file_id="B", video=video)
        assert a is not b
        assert cache.hits == 0
        assert len(cache) == 2

    def test_profile_changes_miss(self):
        cache = EncodeCache()
        video, _, _ = sources()
        isdn = ASFEncoder(
            EncoderConfig(profile=get_profile("isdn-dual")), cache=cache
        ).encode_file(file_id="L", video=video)
        lan = ASFEncoder(
            EncoderConfig(profile=get_profile("lan-1m")), cache=cache
        ).encode_file(file_id="L", video=video)
        assert lan is not isdn
        assert cache.hits == 0

    def test_packet_size_changes_miss(self):
        cache = EncodeCache()
        video, _, _ = sources()
        small = make_encoder(cache, packet_size=800).encode_file(
            file_id="L", video=video
        )
        large = make_encoder(cache, packet_size=2_000).encode_file(
            file_id="L", video=video
        )
        assert small is not large
        assert small.header.file_properties.packet_size == 800
        assert large.header.file_properties.packet_size == 2_000

    def test_metadata_changes_miss(self):
        cache = EncodeCache()
        video, _, _ = sources()
        first = make_encoder(cache, metadata={"title": "x"}).encode_file(
            file_id="L", video=video
        )
        second = make_encoder(cache, metadata={"title": "y"}).encode_file(
            file_id="L", video=video
        )
        assert first is not second

    def test_drm_bypasses_cache(self):
        cache = EncodeCache()
        video, _, _ = sources()
        licenses = LicenseServer()
        encoder = make_encoder(cache)
        protected = encoder.encode_file(
            file_id="L", video=video, license_server=licenses
        )
        again = encoder.encode_file(
            file_id="L", video=video, license_server=licenses
        )
        assert protected is not again  # every publish re-registers a license
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_lru_eviction(self):
        cache = EncodeCache(max_entries=2)
        video, _, _ = sources()
        for name in ("A", "B", "C"):
            make_encoder(cache).encode_file(file_id=name, video=video)
        assert len(cache) == 2
        # A was evicted: encoding it again is a miss
        make_encoder(cache).encode_file(file_id="A", video=video)
        assert cache.hits == 0
        # C is still warm
        make_encoder(cache).encode_file(file_id="C", video=video)
        assert cache.hits == 1

    def test_clear(self):
        cache = EncodeCache()
        video, _, _ = sources()
        make_encoder(cache).encode_file(file_id="L", video=video)
        cache.clear()
        assert len(cache) == 0
        make_encoder(cache).encode_file(file_id="L", video=video)
        assert cache.misses == 2

    def test_invalid_capacity_rejected(self):
        from repro.asf import ASFError

        with pytest.raises(ASFError):
            EncodeCache(max_entries=0)

    def test_uncached_encoder_unaffected(self):
        video, _, _ = sources()
        a = make_encoder(None).encode_file(file_id="L", video=video)
        b = make_encoder(None).encode_file(file_id="L", video=video)
        assert a is not b  # no cache: every call builds a fresh file


class TestMBRCache:
    """encode_file_mbr goes through the cache with a rendition-aware key."""

    RENDITIONS = ["modem-56k", "dsl-256k", "lan-1m"]

    def renditions(self):
        return [get_profile(name) for name in self.RENDITIONS]

    def test_identical_mbr_encode_hits(self):
        cache = EncodeCache()
        video, audio, images = sources()
        first = make_encoder(cache).encode_file_mbr(
            file_id="L",
            video=video,
            audio=audio,
            images=images,
            renditions=self.renditions(),
        )
        again = make_encoder(cache).encode_file_mbr(
            file_id="L",
            video=video,
            audio=audio,
            images=images,
            renditions=self.renditions(),
        )
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_rendition_order_is_normalized(self):
        cache = EncodeCache()
        video, _, _ = sources()
        first = make_encoder(cache).encode_file_mbr(
            file_id="L", video=video, renditions=self.renditions()
        )
        shuffled = make_encoder(cache).encode_file_mbr(
            file_id="L", video=video, renditions=self.renditions()[::-1]
        )
        assert shuffled is first

    def test_ladder_change_misses(self):
        cache = EncodeCache()
        video, _, _ = sources()
        full = make_encoder(cache).encode_file_mbr(
            file_id="L", video=video, renditions=self.renditions()
        )
        trimmed = make_encoder(cache).encode_file_mbr(
            file_id="L",
            video=video,
            renditions=self.renditions()[:2],
        )
        assert trimmed is not full
        assert cache.hits == 0

    def test_single_and_mbr_keys_do_not_collide(self):
        cache = EncodeCache()
        video, _, _ = sources()
        single = make_encoder(cache).encode_file(file_id="L", video=video)
        mbr = make_encoder(cache).encode_file_mbr(
            file_id="L", video=video, renditions=[get_profile("isdn-dual")]
        )
        assert mbr is not single
        assert cache.hits == 0

    def test_drm_bypasses_mbr_cache(self):
        cache = EncodeCache()
        video, _, _ = sources()
        licenses = LicenseServer()
        encoder = make_encoder(cache)
        protected = encoder.encode_file_mbr(
            file_id="L",
            video=video,
            renditions=self.renditions(),
            license_server=licenses,
        )
        again = encoder.encode_file_mbr(
            file_id="L",
            video=video,
            renditions=self.renditions(),
            license_server=licenses,
        )
        assert protected is not again
        assert len(cache) == 0
        assert cache.segment_count == 0
        assert (cache.hits, cache.misses) == (0, 0)
        assert (cache.segment_hits, cache.segment_misses) == (0, 0)


class TestSegmentScope:
    def test_segment_entries_counted_separately(self):
        cache = EncodeCache()
        video, audio, images = sources()
        make_encoder(cache).encode_file(
            file_id="L", video=video, audio=audio, images=images
        )
        assert len(cache) == 1  # one file entry
        assert cache.segment_count == 4  # video + audio + two slides
        assert cache.segment_misses == 4

    def test_segment_reuse_across_file_ids(self):
        cache = EncodeCache()
        video, audio, images = sources()
        make_encoder(cache).encode_file(file_id="A", video=video)
        make_encoder(cache).encode_file(file_id="B", video=video)
        # different file id: file-level miss, but the codec run is reused
        assert cache.hits == 0
        assert cache.segment_hits == 1
        assert cache.bytes_saved > 0

    def test_segment_lru_eviction(self):
        cache = EncodeCache(max_segment_entries=1)
        video, audio, _ = sources()
        make_encoder(cache).encode_file(file_id="L", video=video, audio=audio)
        assert cache.segment_count == 1
        assert cache.evictions == 1


class TestCountersRegistry:
    def test_cache_publishes_to_registry_bag(self):
        from repro.metrics import get_counters

        bag = get_counters("encode_cache")
        before_hits = bag.get("file_hits")
        before_seg = bag.get("segment_misses")
        cache = EncodeCache()
        video, _, _ = sources()
        make_encoder(cache).encode_file(file_id="L", video=video)
        make_encoder(cache).encode_file(file_id="L", video=video)
        assert bag.get("file_hits") == before_hits + 1
        assert bag.get("segment_misses") == before_seg + 1

    def test_private_counters_bag_honoured(self):
        from repro.metrics import Counters

        private = Counters()
        cache = EncodeCache(counters=private)
        video, _, _ = sources()
        make_encoder(cache).encode_file(file_id="L", video=video)
        assert private.get("file_misses") == 1
        assert private.get("segment_misses") == 1


class TestPackMemo:
    def packet(self):
        payload = Payload(1, 0, 0, 6, 0, True, b"abcdef")
        return DataPacket(0, 0, [payload], packet_size=200)

    def test_pack_returns_same_object(self):
        packet = self.packet()
        first = packet.pack()
        second = packet.pack()
        assert second is first

    def test_memo_matches_fresh_pack(self):
        packet = self.packet()
        memoized = packet.pack()
        fresh = self.packet().pack()
        assert memoized == fresh

    def test_mutating_header_fields_invalidates(self):
        packet = self.packet()
        before = packet.pack()
        packet.sequence = 7
        packet.send_time_ms = 1_234
        after = packet.pack()
        assert after is not before
        assert after != before
        reference = DataPacket(
            7, 1_234, list(packet.payloads), packet_size=200
        ).pack()
        assert after == reference

    def test_appending_payload_invalidates(self):
        packet = self.packet()
        before = packet.pack()
        packet.payloads.append(Payload(2, 0, 0, 2, 5, False, b"zz"))
        after = packet.pack()
        assert after != before
        reference = DataPacket(
            0, 0, list(packet.payloads), packet_size=200
        ).pack()
        assert after == reference

    def test_asffile_packed_packets_shared_view(self):
        cache = EncodeCache()
        video, audio, images = sources()
        asf = make_encoder(cache).encode_file(
            file_id="L", video=video, audio=audio, images=images
        )
        view = asf.packed_packets()
        assert view is asf.packed_packets()  # memoized list
        assert view == [p.pack() for p in asf.packets]
        assert all(v is p.pack() for v, p in zip(view, asf.packets))
