"""EncodeCache and packed-bytes memoization — the encode-once layer.

A re-encode of identical sources must be a cache hit returning the same
:class:`ASFFile`; any knob that changes the output bytes must miss; and
:meth:`DataPacket.pack` must hand back the identical ``bytes`` object
until the packet is mutated.
"""

import pytest

from repro.asf import (
    ASFEncoder,
    DataPacket,
    EncodeCache,
    EncoderConfig,
    Payload,
)
from repro.asf.drm import LicenseServer
from repro.media import get_profile
from repro.media.objects import AudioObject, ImageObject, VideoObject


def sources():
    video = VideoObject("talk", 12.0, width=320, height=240, fps=15.0)
    audio = AudioObject("voice", 12.0, sample_rate=22_050, channels=1)
    images = [
        (ImageObject("s0", 6.0, width=640, height=480, seed="s0"), 0.0),
        (ImageObject("s1", 6.0, width=640, height=480, seed="s1"), 6.0),
    ]
    return video, audio, images


def make_encoder(cache, **config_kwargs):
    config = EncoderConfig(profile=get_profile("isdn-dual"), **config_kwargs)
    return ASFEncoder(config, cache=cache)


class TestEncodeCache:
    def test_identical_encode_hits(self):
        cache = EncodeCache()
        video, audio, images = sources()
        first = make_encoder(cache).encode_file(
            file_id="L1", video=video, audio=audio, images=images
        )
        again = make_encoder(cache).encode_file(
            file_id="L1", video=video, audio=audio, images=images
        )
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_different_file_id_misses(self):
        cache = EncodeCache()
        video, audio, images = sources()
        a = make_encoder(cache).encode_file(file_id="A", video=video)
        b = make_encoder(cache).encode_file(file_id="B", video=video)
        assert a is not b
        assert cache.hits == 0
        assert len(cache) == 2

    def test_profile_changes_miss(self):
        cache = EncodeCache()
        video, _, _ = sources()
        isdn = ASFEncoder(
            EncoderConfig(profile=get_profile("isdn-dual")), cache=cache
        ).encode_file(file_id="L", video=video)
        lan = ASFEncoder(
            EncoderConfig(profile=get_profile("lan-1m")), cache=cache
        ).encode_file(file_id="L", video=video)
        assert lan is not isdn
        assert cache.hits == 0

    def test_packet_size_changes_miss(self):
        cache = EncodeCache()
        video, _, _ = sources()
        small = make_encoder(cache, packet_size=800).encode_file(
            file_id="L", video=video
        )
        large = make_encoder(cache, packet_size=2_000).encode_file(
            file_id="L", video=video
        )
        assert small is not large
        assert small.header.file_properties.packet_size == 800
        assert large.header.file_properties.packet_size == 2_000

    def test_metadata_changes_miss(self):
        cache = EncodeCache()
        video, _, _ = sources()
        first = make_encoder(cache, metadata={"title": "x"}).encode_file(
            file_id="L", video=video
        )
        second = make_encoder(cache, metadata={"title": "y"}).encode_file(
            file_id="L", video=video
        )
        assert first is not second

    def test_drm_bypasses_cache(self):
        cache = EncodeCache()
        video, _, _ = sources()
        licenses = LicenseServer()
        encoder = make_encoder(cache)
        protected = encoder.encode_file(
            file_id="L", video=video, license_server=licenses
        )
        again = encoder.encode_file(
            file_id="L", video=video, license_server=licenses
        )
        assert protected is not again  # every publish re-registers a license
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_lru_eviction(self):
        cache = EncodeCache(max_entries=2)
        video, _, _ = sources()
        for name in ("A", "B", "C"):
            make_encoder(cache).encode_file(file_id=name, video=video)
        assert len(cache) == 2
        # A was evicted: encoding it again is a miss
        make_encoder(cache).encode_file(file_id="A", video=video)
        assert cache.hits == 0
        # C is still warm
        make_encoder(cache).encode_file(file_id="C", video=video)
        assert cache.hits == 1

    def test_clear(self):
        cache = EncodeCache()
        video, _, _ = sources()
        make_encoder(cache).encode_file(file_id="L", video=video)
        cache.clear()
        assert len(cache) == 0
        make_encoder(cache).encode_file(file_id="L", video=video)
        assert cache.misses == 2

    def test_invalid_capacity_rejected(self):
        from repro.asf import ASFError

        with pytest.raises(ASFError):
            EncodeCache(max_entries=0)

    def test_uncached_encoder_unaffected(self):
        video, _, _ = sources()
        a = make_encoder(None).encode_file(file_id="L", video=video)
        b = make_encoder(None).encode_file(file_id="L", video=video)
        assert a is not b  # no cache: every call builds a fresh file


class TestPackMemo:
    def packet(self):
        payload = Payload(1, 0, 0, 6, 0, True, b"abcdef")
        return DataPacket(0, 0, [payload], packet_size=200)

    def test_pack_returns_same_object(self):
        packet = self.packet()
        first = packet.pack()
        second = packet.pack()
        assert second is first

    def test_memo_matches_fresh_pack(self):
        packet = self.packet()
        memoized = packet.pack()
        fresh = self.packet().pack()
        assert memoized == fresh

    def test_mutating_header_fields_invalidates(self):
        packet = self.packet()
        before = packet.pack()
        packet.sequence = 7
        packet.send_time_ms = 1_234
        after = packet.pack()
        assert after is not before
        assert after != before
        reference = DataPacket(
            7, 1_234, list(packet.payloads), packet_size=200
        ).pack()
        assert after == reference

    def test_appending_payload_invalidates(self):
        packet = self.packet()
        before = packet.pack()
        packet.payloads.append(Payload(2, 0, 0, 2, 5, False, b"zz"))
        after = packet.pack()
        assert after != before
        reference = DataPacket(
            0, 0, list(packet.payloads), packet_size=200
        ).pack()
        assert after == reference

    def test_asffile_packed_packets_shared_view(self):
        cache = EncodeCache()
        video, audio, images = sources()
        asf = make_encoder(cache).encode_file(
            file_id="L", video=video, audio=audio, images=images
        )
        view = asf.packed_packets()
        assert view is asf.packed_packets()  # memoized list
        assert view == [p.pack() for p in asf.packets]
        assert all(v is p.pack() for v, p in zip(view, asf.packets))
