"""End-to-end trace audits: one Tracer across publish/serve/playback/chaos.

Every scenario here drives a full pipeline with a single
:class:`repro.obs.Tracer` threaded through the server, links, fault
injector and player, then hands the finished trace to
:class:`repro.obs.TraceChecker` — the cross-layer invariants (sessions
closed, QoS released, no traffic after close, floor mutual exclusion,
monotonic renders) must hold under faults, not just on the happy path.

``CHAOS_SEED`` (env) reseeds the lossy links; all assertions must hold
for seeds 0, 1, 2 (the chaos CI matrix).
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.core.extended import SiteLink
from repro.lod import Classroom
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.net import FaultInjector, FaultPlan, GilbertElliott
from repro.obs import SessionQoE, TraceChecker, Tracer, load_jsonl
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    RecoveryConfig,
)
from repro.streaming.session import SessionError
from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="lec",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def mbr_asf():
    renditions = [
        get_profile(n)
        for n in ("modem-56k", "isdn-dual", "dsl-256k", "lan-1m")
    ]
    return ASFEncoder(EncoderConfig(profile=renditions[-1])).encode_file_mbr(
        file_id="mbr",
        video=VideoObject("talk", DURATION, width=640, height=480, fps=25),
        renditions=renditions,
        audio=AudioObject("voice", DURATION),
        commands=slide_commands([("s0", 0.0), ("s1", DURATION / 2)]),
    )


def traced_world(asf=None, *, burst_loss=None, qos_enabled=False,
                 point="lecture"):
    """One tracer threaded through every layer of a server+student world."""
    tracer = Tracer("chaos")
    net = VirtualNetwork()
    tracer.bind_clock(net.simulator)
    net.simulator.tracer = tracer
    net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
    for src, dst in (("server", "student"), ("student", "server")):
        net.link(src, dst).tracer = tracer
    downlink = net.link("server", "student")
    downlink.rng.seed(1000 + CHAOS_SEED)
    if burst_loss is not None:
        downlink.set_loss(burst_loss=burst_loss)
    server = MediaServer(
        net, "server", port=8080, qos_enabled=qos_enabled, tracer=tracer
    )
    server.publish(point, asf if asf is not None else make_asf())
    return tracer, net, server


def drive(net, player, horizon):
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


def watch(tracer, net, server, *, recovery=None, horizon=60.0,
          point="lecture"):
    player = MediaPlayer(net, "student", recovery=recovery, tracer=tracer)
    player.connect(server.url_of(point))
    player.play()
    return drive(net, player, horizon)


def assert_no_session_leaks(server):
    """The leak-regression bundle every teardown path must satisfy."""
    assert len(server.sessions) == 0
    server.sessions.assert_consistent()
    server.assert_no_qos_leaks()


class TestCleanRun:
    def test_trace_passes_all_invariants(self):
        tracer, net, server = traced_world(qos_enabled=True)
        report = watch(tracer, net, server)

        checker = TraceChecker(tracer.records).assert_ok()
        summary = checker.summary()
        assert summary["sessions_opened"] == summary["sessions_closed"] == 1
        assert summary["reservations_made"] == 1
        assert summary["reservations_released"] == 1
        assert summary["trains_seen"] >= 1
        # every rendered unit left a monotonic render.unit record
        assert summary["renders_seen"] == len(report.rendered)
        assert tracer.open_spans() == {}
        assert_no_session_leaks(server)

    def test_trace_survives_jsonl_round_trip(self, tmp_path):
        tracer, net, server = traced_world(qos_enabled=True)
        watch(tracer, net, server)
        path = tmp_path / "clean.jsonl"
        count = tracer.write_jsonl(str(path))
        records = load_jsonl(path.read_text())
        assert len(records) == count
        TraceChecker(records).assert_ok()

    def test_playback_span_brackets_the_run(self):
        tracer, net, server = traced_world()
        watch(tracer, net, server)
        begins = [r for r in tracer.events("playback") if r["kind"] == "begin"]
        ends = [r for r in tracer.events("playback") if r["kind"] == "end"]
        assert len(begins) == len(ends) == 1
        assert ends[0]["attrs"]["rendered"] > 0
        starts = tracer.events("playback.start")
        assert len(starts) == 1 and starts[0]["attrs"]["startup"] > 0


class TestBurstLossRecovery:
    def test_invariants_and_qoe_under_burst_loss(self):
        clean_tracer, clean_net, clean_srv = traced_world(qos_enabled=True)
        clean = watch(clean_tracer, clean_net, clean_srv)

        tracer, net, server = traced_world(
            burst_loss=GilbertElliott.from_average(0.05, mean_burst=5.0),
            qos_enabled=True,
        )
        report = watch(tracer, net, server, recovery=RecoveryConfig())

        TraceChecker(tracer.records).assert_ok()
        # the recovery machinery left its footprint in the trace
        assert tracer.events("gap.observed")
        assert tracer.events("nak.sent")
        assert tracer.events("repair.sent")
        assert_no_session_leaks(server)

        # QoE extraction agrees with the independently computed ratio
        qoe = SessionQoE.from_report(
            report, clean_media_bytes=clean.media_bytes, client="student"
        )
        assert qoe.delivery_ratio == pytest.approx(
            report.media_bytes / clean.media_bytes
        )
        assert qoe.delivery_ratio >= 0.99
        assert qoe.naks_sent == report.recovery["naks_sent"]
        assert qoe.repairs_received == report.recovery["repairs_received"]
        assert qoe.naks_sent >= 1


class TestCrashRestart:
    def test_sessions_balance_across_a_crash(self):
        tracer, net, server = traced_world(qos_enabled=True)
        FaultInjector(net, servers={"media": server}, tracer=tracer).apply(
            FaultPlan("crash").server_crash("media", at=6.0, restart_at=8.0)
        )
        player = MediaPlayer(
            net, "student", recovery=RecoveryConfig(), tracer=tracer
        )
        player.connect(server.url_of("lecture"))
        player.play()
        report = drive(net, player, 60.0)

        checker = TraceChecker(tracer.records).assert_ok()
        # pre-crash and post-restart sessions both opened AND closed
        assert checker.sessions_opened == 2
        assert checker.sessions_closed == 2
        assert checker.reservations_made == 2
        assert checker.reservations_released == 2
        assert [r["name"] for r in tracer.events("fault.server_crash")]
        assert [r["name"] for r in tracer.events("server.crash")]
        assert [r["name"] for r in tracer.events("server.restart")]
        assert tracer.events("playback.stall")
        assert tracer.events("playback.reconnect")
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        assert_no_session_leaks(server)


class TestPartitionHeal:
    def test_orphan_close_retry_leaves_no_leak(self):
        tracer, net, server = traced_world(qos_enabled=True)
        FaultInjector(net, tracer=tracer).apply(
            FaultPlan("partition").partition(
                "student", ["server"], at=5.0, until=9.0
            )
        )
        player = MediaPlayer(
            net, "student", recovery=RecoveryConfig(), tracer=tracer
        )
        player.connect(server.url_of("lecture"))
        player.play()
        report = drive(net, player, 90.0)

        TraceChecker(tracer.records).assert_ok()
        assert tracer.events("link.down") and tracer.events("link.up")
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        # the pre-partition session's first close was swallowed by the
        # dead control plane; the retry path still removed every index
        assert_no_session_leaks(server)


class TestDownshiftTimeline:
    def test_bandwidth_collapse_recorded_at_both_ends(self):
        tracer, net, server = traced_world(mbr_asf(), point="mbr")
        FaultInjector(net, tracer=tracer).apply(
            FaultPlan("collapse").bandwidth(
                "server", "student", at=5.0, bps=400_000.0
            )
        )
        player = MediaPlayer(
            net, "student", recovery=RecoveryConfig(), tracer=tracer
        )
        player.connect(server.url_of("mbr"))
        player.play()
        report = drive(net, player, 120.0)

        TraceChecker(tracer.records).assert_ok()
        client_side = tracer.events("playback.downshift")
        server_side = tracer.events("session.downshift")
        assert client_side and server_side
        assert len(client_side) == len(report.downshifts)
        # the report's downshift timeline mirrors the trace
        assert [r["attrs"]["video"] for r in client_side] == [
            video for _, video in report.downshifts
        ]
        assert_no_session_leaks(server)


class TestFloorUnderDisconnect:
    def room(self, tracer):
        from repro.lod import Lecture

        presentation = Lecture.from_slide_durations(
            "L", "A", [10.0, 10.0], importances=[0, 1],
            slide_width=160, slide_height=120,
        ).to_presentation()
        return Classroom(
            presentation,
            {"s1": SiteLink(0.05), "s2": SiteLink(0.1)},
            tracer=tracer,
        )

    def test_holder_disconnect_reclaims_floor(self):
        tracer = Tracer("floor")
        room = self.room(tracer)
        room.request_floor("s1")  # queued behind the teacher
        assert room.floor_holder == "teacher"

        next_holder = room.site_disconnected("teacher")
        assert next_holder == "s1"
        assert room.floor_holder == "s1"
        # the audit log tells the whole story
        actions = [(e.user, e.action) for e in room.events]
        assert ("teacher", "disconnect") in actions
        assert ("teacher", "floor_reclaimed") in actions
        # and the trace passes floor mutual exclusion end to end
        room.release_floor("s1")
        TraceChecker(tracer.records).assert_ok()

    def test_waiter_disconnect_leaves_queue(self):
        tracer = Tracer("floor")
        room = self.room(tracer)
        room.request_floor("s1")
        room.request_floor("s2")
        assert room.site_disconnected("s1") is None
        assert room.floor_holder == "teacher"
        room.release_floor("teacher")
        # s1 is gone: the grant skips to s2
        assert room.floor_holder == "s2"
        room.release_floor("s2")
        TraceChecker(tracer.records).assert_ok()

    def test_disconnect_with_empty_queue_frees_floor(self):
        tracer = Tracer("floor")
        room = self.room(tracer)
        assert room.site_disconnected("teacher") is None
        assert room.floor_holder is None
        assert room.request_floor("s1") is True
        room.release_floor("s1")
        TraceChecker(tracer.records).assert_ok()


class TestSessionTableAudit:
    def test_consistent_after_mixed_lifecycle(self):
        _, net, server = traced_world()
        first = server.open_session("lecture", "student", lambda pkt: None)
        second = server.open_session("lecture", "student", lambda pkt: None)
        server.close_session(first.session_id)
        server.sessions.assert_consistent()
        server.close_session(second.session_id)
        assert_no_session_leaks(server)

    def test_audit_catches_a_seeded_leak(self):
        _, net, server = traced_world()
        session = server.open_session("lecture", "student", lambda pkt: None)
        # simulate the historical bug: close that forgets the point bucket
        table = server.sessions
        del table._sessions[session.session_id]
        with pytest.raises(SessionError, match="unregistered"):
            table.assert_consistent()

    def test_audit_catches_a_stale_active_entry(self):
        _, net, server = traced_world()
        session = server.open_session("lecture", "student", lambda pkt: None)
        table = server.sessions
        from repro.streaming.session import SessionState

        session.state = SessionState.CLOSED  # bypasses the observer
        with pytest.raises(SessionError, match="closed session"):
            table.assert_consistent()
