"""Unit tests for Petri-net analysis (repro.core.analysis)."""

import pytest

from repro.core.analysis import (
    StateSpaceLimitExceeded,
    bound,
    conserved_token_count,
    coverability_graph,
    find_deadlocks,
    is_bounded,
    is_deadlock_free,
    is_live,
    is_reachable,
    is_reversible,
    is_safe,
    p_invariants,
    reachability_graph,
    t_invariants,
)
from repro.core.builder import NetBuilder
from repro.core.petri import Marking, PetriNet, PetriNetError


def cycle_net():
    """p1 -t1-> p2 -t2-> p1: a live, safe, reversible loop."""
    return (
        NetBuilder("cycle")
        .place("p1", tokens=1)
        .place("p2")
        .transitions("t1", "t2")
        .chain("p1", "t1", "p2")
        .chain("p2", "t2", "p1")
        .build()
    )


def producer_net():
    """t produces into p forever: unbounded."""
    net = PetriNet("producer")
    net.add_place("run", tokens=1)
    net.add_place("buf")
    net.add_transition("t")
    net.add_arc("run", "t")
    net.add_arc("t", "run")
    net.add_arc("t", "buf")
    return net


def terminating_net():
    """p1 -t-> p2, then nothing: deadlocks in p2."""
    return (
        NetBuilder("term")
        .place("p1", tokens=1)
        .place("p2")
        .transition("t")
        .chain("p1", "t", "p2")
        .build()
    )


class TestReachability:
    def test_cycle_has_two_markings(self):
        graph = reachability_graph(cycle_net())
        assert len(graph) == 2
        assert graph.transitions_fired() == {"t1", "t2"}

    def test_initial_in_graph(self):
        graph = reachability_graph(cycle_net())
        assert Marking({"p1": 1}) in graph.markings

    def test_state_cap_enforced(self):
        with pytest.raises(StateSpaceLimitExceeded):
            reachability_graph(producer_net(), max_states=10)

    def test_successors(self):
        graph = reachability_graph(cycle_net())
        succ = graph.successors(Marking({"p1": 1}))
        assert succ == [("t1", Marking({"p2": 1}))]

    def test_is_reachable(self):
        net = terminating_net()
        assert is_reachable(net, Marking({"p2": 1}))
        assert not is_reachable(net, Marking({"p1": 1, "p2": 1}))

    def test_explicit_initial_marking(self):
        net = cycle_net()
        graph = reachability_graph(net, initial=Marking({"p2": 1}))
        assert graph.initial == Marking({"p2": 1})


class TestCoverability:
    def test_bounded_net_no_omega(self):
        graph = coverability_graph(cycle_net())
        assert not graph.has_omega()

    def test_unbounded_place_detected(self):
        graph = coverability_graph(producer_net())
        assert graph.unbounded_places() == {"buf"}

    def test_inhibitor_nets_rejected(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        net.add_arc("q", "t", inhibitor=True)
        with pytest.raises(PetriNetError):
            coverability_graph(net)


class TestBoundedness:
    def test_cycle_is_safe(self):
        assert is_safe(cycle_net())
        assert bound(cycle_net()) == 1

    def test_producer_unbounded(self):
        assert not is_bounded(producer_net())

    def test_two_bounded(self):
        net = (
            NetBuilder()
            .place("p", tokens=2)
            .place("q")
            .transition("t")
            .chain("p", "t", "q")
            .build()
        )
        assert bound(net) == 2
        assert not is_safe(net)

    def test_empty_net_bound_zero(self):
        net = PetriNet()
        net.add_place("p")
        assert bound(net) == 0


class TestLivenessDeadlock:
    def test_cycle_is_live(self):
        assert is_live(cycle_net())

    def test_terminating_net_not_live(self):
        assert not is_live(terminating_net())

    def test_terminating_net_deadlocks(self):
        dead = find_deadlocks(terminating_net())
        assert dead == [Marking({"p2": 1})]

    def test_accepting_marking_not_a_deadlock(self):
        accepting = [Marking({"p2": 1})]
        assert is_deadlock_free(terminating_net(), accepting=accepting)

    def test_cycle_deadlock_free(self):
        assert is_deadlock_free(cycle_net())

    def test_dead_transition_makes_not_live(self):
        net = cycle_net()
        net.add_place("never")
        net.add_transition("t_dead")
        net.add_arc("never", "t_dead")
        net.add_arc("t_dead", "p1")
        assert not is_live(net)

    def test_reversible_cycle(self):
        assert is_reversible(cycle_net())

    def test_terminating_not_reversible(self):
        assert not is_reversible(terminating_net())


class TestInvariants:
    def test_cycle_p_invariant_conserves_one_token(self):
        net = cycle_net()
        invs = p_invariants(net)
        assert len(invs) == 1
        assert invs[0] == {"p1": 1, "p2": 1}
        assert conserved_token_count(net, invs[0]) == 1

    def test_cycle_t_invariant_is_full_loop(self):
        invs = t_invariants(cycle_net())
        assert invs == [{"t1": 1, "t2": 1}]

    def test_producer_has_no_p_invariant_on_buf(self):
        invs = p_invariants(producer_net())
        # only the run-place self-loop is conserved
        assert all("buf" not in inv for inv in invs)
        assert {"run": 1} in invs

    def test_weighted_invariant(self):
        # t consumes 2 from a, produces 1 into b => invariant a + 2b
        net = PetriNet()
        net.add_place("a", tokens=4)
        net.add_place("b")
        net.add_transition("t")
        net.add_arc("a", "t", weight=2)
        net.add_arc("t", "b")
        invs = p_invariants(net)
        assert {"a": 1, "b": 2} in invs

    def test_invariant_holds_along_run(self):
        net = cycle_net()
        inv = p_invariants(net)[0]
        start = conserved_token_count(net, inv)
        net.fire("t1")
        weighted = sum(w * net.marking[p] for p, w in inv.items())
        assert weighted == start

    def test_no_transitions_every_place_invariant(self):
        net = PetriNet()
        net.add_place("x", tokens=1)
        assert p_invariants(net) == [{"x": 1}]

    def test_t_invariants_empty_for_terminating(self):
        assert t_invariants(terminating_net()) == []
