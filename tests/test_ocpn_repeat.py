"""Unit tests for OCPN relabel/repeat (loop unrolling)."""

import pytest

from repro.core.ocpn import (
    Composite,
    MediaLeaf,
    SpecError,
    compile_spec,
    parallel,
    relabel,
    repeat,
    sequence,
    spec_duration,
    spec_intervals,
    spec_leaves,
    verify_schedule,
)
from repro.core.intervals import TemporalRelation as R


SEGMENT = parallel(MediaLeaf("v", 5), MediaLeaf("s", 5))


class TestRelabel:
    def test_leaf_names_suffixed(self):
        renamed = relabel(SEGMENT, "x")
        assert {l.name for l in spec_leaves(renamed)} == {"v__x", "s__x"}

    def test_structure_preserved(self):
        spec = Composite(R.DURING, MediaLeaf("a", 2), MediaLeaf("b", 10), delay=3)
        renamed = relabel(spec, "z")
        assert renamed.relation is R.DURING and renamed.delay == 3
        assert spec_duration(renamed) == spec_duration(spec)

    def test_empty_suffix_rejected(self):
        with pytest.raises(SpecError):
            relabel(SEGMENT, "")

    def test_relabeled_copies_coexist(self):
        spec = sequence(relabel(SEGMENT, "a"), relabel(SEGMENT, "b"))
        compiled = compile_spec(spec)
        assert max(verify_schedule(compiled).values()) < 1e-9


class TestRepeat:
    def test_duration_multiplies(self):
        assert spec_duration(repeat(SEGMENT, 3)) == pytest.approx(15.0)

    def test_gap_adds_between_repetitions(self):
        assert spec_duration(repeat(SEGMENT, 3, gap=2.0)) == pytest.approx(19.0)

    def test_single_repeat_is_relabel(self):
        spec = repeat(SEGMENT, 1)
        assert {l.name for l in spec_leaves(spec)} == {"v__r0", "s__r0"}

    def test_repetitions_back_to_back(self):
        intervals = spec_intervals(repeat(SEGMENT, 3))
        assert intervals["v__r0"].start == 0
        assert intervals["v__r1"].start == pytest.approx(5.0)
        assert intervals["v__r2"].start == pytest.approx(10.0)

    def test_gapped_repetitions(self):
        intervals = spec_intervals(repeat(SEGMENT, 2, gap=1.5))
        assert intervals["v__r1"].start == pytest.approx(6.5)

    def test_compiled_net_verifies(self):
        compiled = compile_spec(repeat(SEGMENT, 4, gap=0.5))
        assert max(verify_schedule(compiled).values()) < 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(SpecError):
            repeat(SEGMENT, 0)
        with pytest.raises(SpecError):
            repeat(SEGMENT, 2, gap=-1)

    def test_nested_repeat(self):
        inner = repeat(MediaLeaf("drill", 2), 2)
        outer = repeat(inner, 2)
        assert spec_duration(outer) == pytest.approx(8.0)
        compiled = compile_spec(outer)
        assert max(verify_schedule(compiled).values()) < 1e-9
