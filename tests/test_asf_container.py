"""Unit tests for the ASF container: wire format, header, packets, index."""

import pytest

from repro.asf.constants import ASFError, FLAG_BROADCAST, SCRIPT_STREAM_NUMBER
from repro.asf.header import FileProperties, HeaderObject, StreamProperties
from repro.asf.indexer import SimpleIndex, add_script_commands
from repro.asf.packets import (
    DataPacket,
    Depacketizer,
    MediaUnit,
    Packetizer,
    Payload,
    PAYLOAD_HEADER_SIZE,
    command_from_unit,
    units_from_commands,
)
from repro.asf.script_commands import ScriptCommand
from repro.asf.stream import ASFFile, ASFLiveStream
from repro.asf.wire import Reader, pack_str, write_object


class TestWire:
    def test_string_round_trip(self):
        r = Reader(pack_str("héllo wörld"))
        assert r.string() == "héllo wörld"

    def test_object_round_trip(self):
        blob = write_object(b"TEST", b"payload")
        tag, payload = Reader(blob).read_object()
        assert tag == b"TEST" and payload == b"payload"

    def test_truncation_detected(self):
        blob = write_object(b"TEST", b"payload")[:-2]
        with pytest.raises(ASFError):
            Reader(blob).read_object()

    def test_expect_object_mismatch(self):
        blob = write_object(b"AAAA", b"")
        with pytest.raises(ASFError):
            Reader(blob).expect_object(b"BBBB")

    def test_bad_tag_length(self):
        with pytest.raises(ASFError):
            write_object(b"TOOLONG", b"")


class TestHeader:
    def make_header(self):
        return HeaderObject(
            file_properties=FileProperties("f1", duration_ms=30_000),
            streams=[
                StreamProperties(1, "video", codec="mpeg4", bitrate=250_000,
                                 name="talk", extra={"width": "320"}),
                StreamProperties(2, "audio", codec="wma", bitrate=32_000),
            ],
            metadata={"title": "Lecture", "author": "Prof"},
            script_commands=[ScriptCommand(0, "SLIDE", "s0")],
        )

    def test_round_trip(self):
        header = self.make_header()
        clone = HeaderObject.unpack(header.pack())
        assert clone.file_properties.file_id == "f1"
        assert clone.file_properties.duration_ms == 30_000
        assert len(clone.streams) == 2
        assert clone.stream(1).extra == {"width": "320"}
        assert clone.metadata["author"] == "Prof"
        assert clone.script_commands == [ScriptCommand(0, "SLIDE", "s0")]

    def test_total_bitrate(self):
        assert self.make_header().total_bitrate == 282_000

    def test_streams_of_type(self):
        header = self.make_header()
        assert [s.stream_number for s in header.streams_of_type("audio")] == [2]

    def test_unknown_stream_number(self):
        with pytest.raises(ASFError):
            self.make_header().stream(9)

    def test_duplicate_stream_numbers_rejected(self):
        with pytest.raises(ASFError):
            HeaderObject(
                FileProperties("f"),
                streams=[
                    StreamProperties(1, "video"),
                    StreamProperties(1, "audio"),
                ],
            )

    def test_stream_number_range(self):
        with pytest.raises(ASFError):
            StreamProperties(0, "video")
        with pytest.raises(ASFError):
            StreamProperties(128, "video")

    def test_unknown_stream_type_rejected(self):
        with pytest.raises(ASFError):
            StreamProperties(1, "smellovision")

    def test_small_packet_size_rejected(self):
        with pytest.raises(ASFError):
            FileProperties("f", packet_size=10)

    def test_flags(self):
        props = FileProperties("f", flags=FLAG_BROADCAST)
        assert props.is_broadcast and not props.is_seekable


def make_units(stream=1, count=5, size=100, spacing_ms=100):
    return [
        MediaUnit(stream, i, i * spacing_ms, i % 2 == 0, bytes([i % 256]) * size)
        for i in range(count)
    ]


class TestPayloadPacket:
    def test_payload_round_trip(self):
        payload = Payload(3, 7, 0, 5, 1234, True, b"abcde")
        clone = Payload.unpack(Reader(payload.pack()))
        assert clone == payload

    def test_fragment_bounds_checked(self):
        with pytest.raises(ASFError):
            Payload(1, 0, 3, 4, 0, True, b"ab")  # 3+2 > 4

    def test_packet_fixed_size(self):
        packet = DataPacket(0, 0, [Payload(1, 0, 0, 3, 0, True, b"abc")],
                            packet_size=256)
        assert len(packet.pack()) == 256

    def test_packet_round_trip(self):
        packet = DataPacket(5, 777, [Payload(1, 0, 0, 3, 10, False, b"xyz")],
                            packet_size=200)
        clone = DataPacket.unpack(packet.pack())
        assert clone.sequence == 5
        assert clone.send_time_ms == 777
        assert clone.payloads == packet.payloads

    def test_packet_overflow_rejected(self):
        packet = DataPacket(0, 0, [Payload(1, 0, 0, 300, 0, True, b"x" * 300)],
                            packet_size=100)
        with pytest.raises(ASFError):
            packet.pack()


class TestPacketizer:
    def test_small_units_share_packets(self):
        packets = Packetizer(packet_size=1450).packetize([make_units(size=50)])
        assert len(packets) == 1
        assert len(packets[0].payloads) == 5

    def test_large_unit_fragments(self):
        units = [MediaUnit(1, 0, 0, True, b"z" * 5000)]
        packets = Packetizer(packet_size=1450).packetize([units])
        assert len(packets) > 1
        offsets = [p.payloads[0].offset for p in packets]
        assert offsets[0] == 0 and offsets == sorted(offsets)

    def test_interleaving_by_timestamp(self):
        video = make_units(stream=1, count=3, spacing_ms=100)
        audio = make_units(stream=2, count=3, spacing_ms=100)
        packets = Packetizer(packet_size=1450).packetize([video, audio])
        seen = [
            (p.timestamp_ms, p.stream_number)
            for packet in packets
            for p in packet.payloads
        ]
        assert seen == sorted(seen)

    def test_pacing(self):
        pk = Packetizer(packet_size=1000, bitrate=8_000)  # 1s per packet
        units = [MediaUnit(1, i, 0, True, b"x" * 900) for i in range(3)]
        packets = pk.packetize([units])
        assert [p.send_time_ms for p in packets] == [0, 1000, 2000]

    def test_too_small_packet_size_rejected(self):
        with pytest.raises(ASFError):
            Packetizer(packet_size=PAYLOAD_HEADER_SIZE)

    def test_zero_bitrate_rejected(self):
        with pytest.raises(ASFError):
            Packetizer(bitrate=0)


class TestDepacketizer:
    def roundtrip(self, unit_lists, packet_size=1450, drop=()):
        packets = Packetizer(packet_size=packet_size).packetize(unit_lists)
        depacketizer = Depacketizer()
        for i, packet in enumerate(packets):
            if i in drop:
                continue
            depacketizer.push_packet(packet)
        return depacketizer

    def test_lossless_reassembly(self):
        units = make_units(count=10, size=400)
        depk = self.roundtrip([units])
        got = depk.units_for(1)
        assert got == units

    def test_fragmented_reassembly(self):
        units = [MediaUnit(1, 0, 0, True, bytes(range(256)) * 30)]
        depk = self.roundtrip([units], packet_size=600)
        assert depk.units_for(1)[0].data == units[0].data

    def test_loss_detection(self):
        # 1380-byte units fill a 1450-byte packet exactly one-to-one
        # (packet overhead 27 + payload header 26 leaves no room for more)
        units = [MediaUnit(1, i, i * 10, True, b"q" * 1380) for i in range(5)]
        depk = self.roundtrip([units], drop={2})
        report = depk.loss_report()
        assert report.lost[1] == [2]
        assert report.delivered[1] == 4
        assert report.loss_rate(1) == pytest.approx(0.2)

    def test_packet_straddling_loss_hits_both_units(self):
        # 1200-byte units straddle 1450-byte packets: dropping one packet
        # loses every unit with a fragment in it
        units = [MediaUnit(1, i, i * 10, True, b"q" * 1200) for i in range(5)]
        depk = self.roundtrip([units], drop={2})
        assert depk.loss_report().lost[1] == [2, 3]

    def test_fragment_loss_kills_whole_object(self):
        units = [MediaUnit(1, 0, 0, True, b"q" * 4000)]
        depk = self.roundtrip([units], drop={1})
        assert depk.units_for(1) == []
        assert depk.loss_report().lost[1] == [0]

    def test_loss_rate_empty_stream(self):
        assert Depacketizer().loss_report().loss_rate(7) == 0.0


class TestScriptCommandUnits:
    def test_commands_ride_reserved_stream(self):
        units = units_from_commands([ScriptCommand(500, "SLIDE", "s1")])
        assert units[0].stream_number == SCRIPT_STREAM_NUMBER
        assert command_from_unit(units[0]) == ScriptCommand(500, "SLIDE", "s1")

    def test_non_command_unit_rejected(self):
        with pytest.raises(ASFError):
            command_from_unit(MediaUnit(1, 0, 0, True, b""))


class TestSimpleIndex:
    def make_packets(self):
        units = [
            MediaUnit(1, i, i * 500, i % 4 == 0, b"f" * 700) for i in range(20)
        ]
        return Packetizer(packet_size=1450).packetize([units])

    def test_entries_cover_duration(self):
        index = SimpleIndex.build(self.make_packets(), interval_ms=1000)
        assert len(index.entries) == 10  # 0..9.5s => entries at 0..9s

    def test_seek_monotone(self):
        index = SimpleIndex.build(self.make_packets())
        seeks = [index.seek(t) for t in (0, 2, 5, 9)]
        assert seeks == sorted(seeks)

    def test_seek_lands_at_or_before_keyframe(self):
        packets = self.make_packets()
        index = SimpleIndex.build(packets)
        start = index.seek(5.0)
        # the packet at `start` must contain a keyframe payload with ts <= 5s
        packet = next(p for p in packets if p.sequence == start)
        assert any(pl.keyframe and pl.timestamp_ms <= 5000 for pl in packet.payloads)

    def test_seek_empty_index(self):
        assert SimpleIndex().seek(3.0) == 0

    def test_round_trip(self):
        index = SimpleIndex.build(self.make_packets())
        clone = SimpleIndex.unpack_from(Reader(index.pack()))
        assert clone.entries == index.entries
        assert clone.interval_ms == index.interval_ms

    def test_bad_interval(self):
        with pytest.raises(ASFError):
            SimpleIndex(interval_ms=0)
