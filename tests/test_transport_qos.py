"""Unit tests for transport channels and QoS admission (repro.net)."""

import pytest

from repro.net.engine import SimulationError, Simulator
from repro.net.link import Link
from repro.net.qos import QoSError, QoSManager, QoSSpec
from repro.net.transport import DatagramChannel, Message, ReliableChannel


def loss_free_pair(sim, **kwargs):
    return (
        Link(sim, bandwidth=1e6, delay=0.01, **kwargs),
        Link(sim, bandwidth=1e6, delay=0.01),
    )


class TestDatagramChannel:
    def test_delivery(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1e6, delay=0.01)
        got = []
        channel = DatagramChannel(link, got.append)
        channel.send(Message("hello", 100))
        sim.run()
        assert [m.payload for m in got] == ["hello"]

    def test_loss_means_silence(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1e6, loss_rate=0.999, seed=5)
        got = []
        DatagramChannel(link, got.append).send(Message("x", 100))
        sim.run()
        assert got == []

    def test_header_overhead_on_wire(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1e6, delay=0.0)
        channel = DatagramChannel(link, lambda m: None, header_size=28)
        channel.send(Message("x", 100))
        sim.run()
        assert link.stats.bytes_delivered == 128

    def test_invalid_message_size(self):
        with pytest.raises(SimulationError):
            Message("x", 0)


class TestReliableChannel:
    def make(self, sim, *, loss=0.0, seed=0, max_attempts=8, on_fail=None):
        received = []
        out = Link(sim, bandwidth=1e6, delay=0.01, loss_rate=loss, seed=seed)
        ack = Link(sim, bandwidth=1e6, delay=0.01)
        channel = ReliableChannel(
            sim, out, ack, received.append, rto=0.1,
            max_attempts=max_attempts, on_fail=on_fail,
        )
        return channel, received

    def test_in_order_delivery(self):
        sim = Simulator()
        channel, received = self.make(sim)
        for i in range(5):
            channel.send(Message(i, 100))
        sim.run()
        assert [m.payload for m in received] == [0, 1, 2, 3, 4]
        assert channel.in_flight == 0

    def test_retransmits_through_loss(self):
        sim = Simulator()
        channel, received = self.make(sim, loss=0.5, seed=11)
        for i in range(10):
            channel.send(Message(i, 100))
        sim.run()
        assert [m.payload for m in received] == list(range(10))
        assert channel.retransmissions > 0

    def test_no_duplicate_delivery(self):
        # lossy ack path forces retransmits; receiver must dedupe
        sim = Simulator()
        received = []
        out = Link(sim, bandwidth=1e6, delay=0.01)
        ack = Link(sim, bandwidth=1e6, delay=0.01, loss_rate=0.6, seed=4)
        channel = ReliableChannel(sim, out, ack, received.append, rto=0.05)
        channel.send(Message("once", 100))
        sim.run()
        assert [m.payload for m in received] == ["once"]

    def test_gives_up_after_max_attempts(self):
        sim = Simulator()
        failed = []
        channel, received = self.make(
            sim, loss=0.9999, seed=2, max_attempts=3, on_fail=failed.append
        )
        channel.send(Message("doomed", 100))
        sim.run()
        assert received == []
        assert [m.payload for m in failed] == ["doomed"]
        assert channel.in_flight == 0

    def test_invalid_rto(self):
        sim = Simulator()
        out, ack = loss_free_pair(sim)
        with pytest.raises(SimulationError):
            ReliableChannel(sim, out, ack, lambda m: None, rto=0)


class TestQoS:
    def test_spec_validation(self):
        with pytest.raises(QoSError):
            QoSSpec(bandwidth=0)
        with pytest.raises(QoSError):
            QoSSpec(bandwidth=1, max_latency=0)
        with pytest.raises(QoSError):
            QoSSpec(bandwidth=1, max_loss=1.0)

    def test_admission_within_capacity(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1_000_000), headroom=0.9)
        r1 = manager.reserve(QoSSpec(bandwidth=500_000), owner="a")
        assert manager.available == pytest.approx(400_000)
        manager.release(r1)
        assert manager.available == pytest.approx(900_000)

    def test_over_capacity_rejected(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1_000_000))
        manager.reserve(QoSSpec(bandwidth=800_000))
        with pytest.raises(QoSError):
            manager.reserve(QoSSpec(bandwidth=200_000))
        assert manager.rejected == 1

    def test_latency_requirement(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1e6, delay=0.2))
        assert not manager.can_admit(QoSSpec(bandwidth=1000, max_latency=0.1))
        with pytest.raises(QoSError):
            manager.reserve(QoSSpec(bandwidth=1000, max_latency=0.1))

    def test_loss_requirement(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1e6, loss_rate=0.1))
        with pytest.raises(QoSError):
            manager.reserve(QoSSpec(bandwidth=1000, max_loss=0.01))

    def test_double_release_rejected(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1e6))
        r = manager.reserve(QoSSpec(bandwidth=1000))
        manager.release(r)
        with pytest.raises(QoSError):
            manager.release(r)

    def test_best_effort_bandwidth(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1_000_000), headroom=1.0)
        manager.reserve(QoSSpec(bandwidth=900_000))
        assert manager.best_effort_bandwidth(500_000) == pytest.approx(100_000)

    def test_active_listing(self):
        sim = Simulator()
        manager = QoSManager(Link(sim, bandwidth=1e6))
        manager.reserve(QoSSpec(bandwidth=1000), owner="alice")
        assert [r.owner for r in manager.active()] == ["alice"]

    def test_headroom_validation(self):
        sim = Simulator()
        with pytest.raises(QoSError):
            QoSManager(Link(sim, bandwidth=1e6), headroom=0)
