"""Stale-serve coverage for the :class:`PacketRunCache`.

An edge whose origin is unreachable but whose cache holds the content
serves *stale* rather than refusing viewers. These tests pin down the
two behaviours the original stale-serve change shipped without coverage:

* concurrent viewers arriving during an origin outage are all served
  from the cached replica, and what they get is **byte-identical** to
  the origin's packet run (the cache stores the verbatim fill);
* an eviction racing a stale-serve is harmless: the published point
  holds its own reference to the ASF file, so evicting the cache entry
  mid-playback never yanks packets out from under live sessions.
"""

import os

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics.counters import get_counters, reset_counters
from repro.streaming import MediaPlayer, MediaServer, PlayerState, build_edge_tier

from repro.web import VirtualNetwork

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4


def make_asf(file_id="lec"):
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id=file_id,
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def packed_size(asf):
    return len(asf.header.pack()) + sum(len(b) for b in asf.packed_packets())


def make_tier(lectures, *, viewers=("student",), **tier_kwargs):
    reset_counters("edge_cache")
    net = VirtualNetwork()
    origin = MediaServer(net, "origin", port=8080, pacing_quantum=0.5)
    for name, asf in lectures.items():
        origin.publish(name, asf)
    directory, (edge0,) = build_edge_tier(
        net, origin, ["edge0"], pacing_quantum=0.5, **tier_kwargs,
    )
    for host in viewers:
        net.connect("edge0", host, bandwidth=2_000_000, delay=0.02)
    return net, origin, directory, edge0


def watch(net, player, url, horizon=60.0):
    player.connect(url)
    player.play()
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


def render_keys(report):
    return [
        (r.unit.stream_number, r.unit.object_number) for r in report.rendered
    ]


class TestStaleServeDuringOutage:
    def test_concurrent_viewers_get_byte_identical_cached_bytes(self):
        asf = make_asf()
        net, origin, directory, edge0 = make_tier(
            {"lecture": asf}, viewers=("s1", "s2")
        )
        reference = origin.points["lecture"].content
        fingerprint = reference.fingerprint()

        # warm the cache, then release the local point so the next viewer
        # re-ensures it — and kill the origin so that re-ensure cannot
        # re-register upstream
        edge0.prefetch("lecture")
        edge0.unpublish("lecture")
        assert "lecture" not in edge0.points
        origin.crash()

        counters = get_counters("edge_cache")
        url = f"http://{edge0.host}:{edge0.port}/lod/lecture"
        p1 = MediaPlayer(net, "s1", user="s1")
        p2 = MediaPlayer(net, "s2", user="s2")
        # both arrive at the same instant, during the outage
        p1.connect(url)
        p2.connect(url)
        p1.play()
        p2.play()
        net.simulator.run_until(60.0)
        for p in (p1, p2):
            if p.state is not PlayerState.FINISHED:
                p.stop()

        assert counters["stale_serves"] >= 1
        # what the cache served is the origin's run, byte for byte
        cached = edge0.cache.lookup(fingerprint)
        assert cached is not None
        assert (
            b"".join(pkt.pack() for pkt in cached.packets)
            == b"".join(pkt.pack() for pkt in reference.packets)
        )
        # and both viewers experienced the identical, complete lecture
        r1, r2 = p1.report(), p2.report()
        for report in (r1, r2):
            assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
            fired = [c.command.parameter for c in report.slide_changes()]
            assert fired == [f"s{i}" for i in range(SLIDES)]
        assert render_keys(r1) == render_keys(r2)

    def test_eviction_racing_stale_serve_leaves_playback_intact(self):
        asf_a = make_asf("lecA")
        asf_b = make_asf("lecB")
        # budget: holds either run alone, but not both — storing B evicts A
        budget = packed_size(asf_a) + packed_size(asf_b) // 2
        net, origin, directory, edge0 = make_tier(
            {"lecA": asf_a, "lecB": asf_b}, cache_bytes=budget
        )
        fp_a = origin.points["lecA"].content.fingerprint()

        edge0.prefetch("lecA")
        edge0.unpublish("lecA")
        origin.crash()

        counters = get_counters("edge_cache")
        player = MediaPlayer(net, "student", user="student")
        player.connect(f"http://{edge0.host}:{edge0.port}/lod/lecA")
        player.play()
        net.simulator.run_until(2.0)
        assert counters["stale_serves"] >= 1

        # origin comes back and a *different* lecture fills, evicting the
        # stale-served run from the cache mid-playback
        origin.restart()
        net.simulator.schedule_at(3.0, lambda: edge0.prefetch("lecB"))
        net.simulator.run_until(60.0)
        if player.state is not PlayerState.FINISHED:
            player.stop()

        assert counters["evictions"] >= 1
        assert edge0.cache.lookup(fp_a) is None
        # the published point held its own reference: eviction never
        # touched the live session
        report = player.report()
        assert report.duration_watched == pytest.approx(DURATION, abs=0.3)
        fired = [c.command.parameter for c in report.slide_changes()]
        assert fired == [f"s{i}" for i in range(SLIDES)]
        keys = render_keys(report)
        assert len(keys) == len(set(keys))
