"""Unit tests for fast-start burst delivery and multi-bitrate streaming."""

import pytest

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.asf.drm import LicenseServer
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.streaming import MediaPlayer, MediaServer, SessionError
from repro.web import VirtualNetwork


def single_rate_asf(duration=30.0):
    return ASFEncoder(EncoderConfig(profile=get_profile("dsl-256k"))).encode_file(
        file_id="single",
        video=VideoObject("talk", duration, width=320, height=240, fps=10),
        audio=AudioObject("voice", duration),
    )


def mbr_asf(duration=20.0, rendition_names=("modem-56k", "isdn-dual", "dsl-256k", "lan-1m")):
    renditions = [get_profile(n) for n in rendition_names]
    encoder = ASFEncoder(EncoderConfig(profile=renditions[-1]))
    return encoder.encode_file_mbr(
        file_id="mbr",
        video=VideoObject("talk", duration, width=640, height=480, fps=25),
        renditions=renditions,
        audio=AudioObject("voice", duration),
        commands=slide_commands([("s0", 0.0), ("s1", duration / 2)]),
    )


def world(asf, *, bandwidth=2e6, host="student", **link):
    net = VirtualNetwork()
    net.connect("server", host, bandwidth=bandwidth, queue_limit=10_000, **link)
    server = MediaServer(net, "server", port=8080)
    server.publish("p", asf)
    return net, server


class TestFastStart:
    def test_burst_cuts_startup_latency(self):
        baseline_net, baseline_srv = world(single_rate_asf())
        baseline = MediaPlayer(baseline_net, "student")
        baseline.connect(baseline_srv.url_of("p"))
        baseline.play()
        slow = baseline.run_until_finished()

        burst_net, burst_srv = world(single_rate_asf())
        player = MediaPlayer(burst_net, "student")
        player.connect(burst_srv.url_of("p"))
        player.play(burst_factor=5.0)
        fast = player.run_until_finished()

        assert fast.startup_latency < slow.startup_latency / 2
        assert fast.rebuffer_count == 0
        assert fast.duration_watched == pytest.approx(30.0, abs=0.2)

    def test_burst_does_not_change_sync(self):
        net, server = world(single_rate_asf())
        player = MediaPlayer(net, "student")
        player.connect(server.url_of("p"))
        player.play(burst_factor=4.0)
        report = player.run_until_finished()
        assert report.max_command_sync_error <= 0.1

    def test_burst_factor_below_one_rejected(self):
        net, server = world(single_rate_asf())
        session = server.open_session("p", "student", lambda pkt: None)
        with pytest.raises(SessionError):
            server.play(session.session_id, burst_factor=0.5)

    def test_burst_after_settling_is_realtime(self):
        # after the burst window the stream must not outrun real time by
        # more than the burst window itself
        net, server = world(single_rate_asf())
        player = MediaPlayer(net, "student")
        player.connect(server.url_of("p"))
        player.play(burst_factor=10.0)
        player.run_until_finished()
        session_stats = server.sessions  # session already closed
        # playback completed at roughly real time + startup
        assert net.simulator.now == pytest.approx(30.0, abs=3.5)


class TestMBREncoding:
    def test_rendition_streams_tagged(self):
        asf = mbr_asf()
        group = asf.header.mbr_group("video")
        assert len(group) == 4
        rates = [s.bitrate for s in group]
        assert rates == sorted(rates)
        assert [s.extra["mbr_rank"] for s in group] == ["0", "1", "2", "3"]

    def test_single_audio_stream(self):
        asf = mbr_asf()
        assert len(asf.header.streams_of_type("audio")) == 1

    def test_mbr_group_empty_for_single_rate(self):
        assert single_rate_asf().header.mbr_group("video") == []

    def test_requires_renditions(self):
        encoder = ASFEncoder(EncoderConfig(profile=get_profile("dsl-256k")))
        with pytest.raises(Exception):
            encoder.encode_file_mbr(
                file_id="x", video=VideoObject("v", 5.0), renditions=[]
            )

    def test_binary_round_trip_preserves_mbr_tags(self):
        from repro.asf import ASFFile

        asf = mbr_asf()
        clone = ASFFile.unpack(asf.pack())
        assert len(clone.header.mbr_group("video")) == 4

    def test_mbr_drm(self):
        licenses = LicenseServer()
        renditions = [get_profile("modem-56k"), get_profile("dsl-256k")]
        encoder = ASFEncoder(EncoderConfig(profile=renditions[-1]))
        asf = encoder.encode_file_mbr(
            file_id="pmbr",
            video=VideoObject("v", 5.0, width=160, height=120, fps=10),
            renditions=renditions,
            license_server=licenses,
        )
        assert asf.header.file_properties.is_protected


class TestIntelligentStreaming:
    @pytest.mark.parametrize(
        "bandwidth, expected_profile",
        [
            (80_000, "modem-56k"),     # floor rendition even if tight
            (200_000, "isdn-dual"),
            (400_000, "dsl-256k"),
            (5_000_000, "lan-1m"),
        ],
    )
    def test_server_picks_fitting_rendition(self, bandwidth, expected_profile):
        asf = mbr_asf()
        net, server = world(asf, bandwidth=bandwidth)
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("p"))
        chosen = asf.header.stream(player.selected_video)
        assert chosen.extra["profile"] == expected_profile
        assert report.duration_watched == pytest.approx(20.0, abs=0.3)

    def test_only_selected_rendition_delivered(self):
        asf = mbr_asf()
        net, server = world(asf, bandwidth=400_000)
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("p"))
        video_streams = {s.stream_number for s in asf.header.mbr_group("video")}
        received = {r.unit.stream_number for r in report.rendered}
        assert received & video_streams == {player.selected_video}

    def test_thinning_reduces_bytes_on_the_wire(self):
        asf = mbr_asf()
        full_wire = asf.data_size()
        net, server = world(asf, bandwidth=200_000)
        player = MediaPlayer(net, "student")
        player.watch(server.url_of("p"))
        link = net.link("server", "student")
        # the slow client received far less than the full multi-rate file
        assert link.stats.bytes_delivered < full_wire * 0.5

    def test_slides_and_commands_survive_thinning(self):
        asf = mbr_asf()
        net, server = world(asf, bandwidth=200_000)
        player = MediaPlayer(net, "student")
        report = player.watch(server.url_of("p"))
        slides = [c.command.parameter for c in report.slide_changes()]
        assert slides == ["s0", "s1"]
        assert report.max_command_sync_error <= 0.1

    def test_different_clients_get_different_renditions(self):
        asf = mbr_asf()
        net = VirtualNetwork()
        net.connect("server", "slow", bandwidth=100_000, queue_limit=10_000)
        net.connect("server", "fast", bandwidth=5_000_000)
        server = MediaServer(net, "server", port=8080)
        server.publish("p", asf)
        slow = MediaPlayer(net, "slow")
        fast = MediaPlayer(net, "fast")
        slow.connect(server.url_of("p"))
        fast.connect(server.url_of("p"))
        slow.play()
        fast.play()
        slow_rep = slow.run_until_finished()
        fast_rep = fast.run_until_finished()
        assert slow.selected_video != fast.selected_video
        slow_profile = asf.header.stream(slow.selected_video).extra["profile"]
        fast_profile = asf.header.stream(fast.selected_video).extra["profile"]
        assert slow_profile == "modem-56k" and fast_profile == "lan-1m"
        assert slow_rep.rebuffer_count == 0 and fast_rep.rebuffer_count == 0

    def test_qos_reservation_uses_selected_bitrate(self):
        asf = mbr_asf()
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=400_000, queue_limit=10_000)
        server = MediaServer(net, "server", port=8080, qos_enabled=True)
        server.publish("p", asf)
        session = server.open_session("p", "student", lambda pkt: None)
        # the reservation is for the chosen rendition, not the full file
        assert session.reservation.spec.bandwidth < asf.header.total_bitrate / 2
