#!/usr/bin/env python
"""Live broadcast: "view live video of the teacher giving his speech".

The paper's live path: camera + microphone → live encoder (ASF broadcast
stream) → media server publishing point → students' players, with SLIDE
script commands injected in real time as the teacher advances slides.

Shows an on-time viewer and a late joiner (who, as in the real system,
sees only commands sent after joining).

Run: ``python examples/live_broadcast.py``
"""

from repro.lod import LiveCaptureSession, MicrophoneSource
from repro.media import get_profile
from repro.streaming import MediaPlayer, MediaServer
from repro.web import VirtualNetwork


def main() -> None:
    network = VirtualNetwork()
    network.connect("server", "early-bird", bandwidth=2e6, delay=0.02)
    network.connect("server", "latecomer", bandwidth=2e6, delay=0.05)
    server = MediaServer(network, "server", port=8080)
    simulator = network.simulator

    capture = LiveCaptureSession(
        simulator,
        get_profile("isdn-dual"),
        microphone=MicrophoneSource(),
        chunk=0.5,
    )
    server.publish("live-talk", capture.stream,
                   description="Live from the lecture hall")
    url = server.url_of("live-talk")
    print(f"broadcasting at {url}")

    early = MediaPlayer(network, "early-bird", preroll_override=1.5)
    early.connect(url)
    early.play()

    capture.advance_slide("title")
    simulator.run_until(8.0)
    capture.advance_slide("motivation")

    # a student joins 12 seconds into the talk
    simulator.run_until(12.0)
    late = MediaPlayer(network, "latecomer", preroll_override=1.5)
    late.connect(url)
    late.play()

    simulator.run_until(20.0)
    capture.advance_slide("architecture")
    simulator.run_until(30.0)

    capture.finish()
    for player in (early, late):
        player.mark_stream_ended()
    simulator.run_until(33.0)
    early.stop()
    late.stop()

    print(f"\nteacher sent slides at: "
          f"{[(round(t, 1), n) for t, n in capture.slides_sent]}")
    for name, player in (("early-bird", early), ("latecomer", late)):
        report = player.report()
        fired = [(round(c.wall_time, 1), c.command.parameter)
                 for c in report.commands]
        print(f"{name:<10} rendered {len(report.rendered):>4} units, "
              f"slides seen: {fired}")
    print("\nthe latecomer missed 'title' and 'motivation' — live commands "
          "are not replayed, exactly like the original system")


if __name__ == "__main__":
    main()
