#!/usr/bin/env python
"""Adaptive summarization with the multiple-level content tree.

The paper's Abstractor: "the multiple level content tree approach may be
used to arrive at an efficient summarizing method … this approach gives
flexible teaching material." We:

1. build the paper's own §2.3 example tree and print every printed value
   (LevelNodes 20/60/100, the Fig. 3 insert → 20/60/120, the Fig. 4
   delete with sibling adoption);
2. build a 12-slide lecture with mixed importance, publish it, and replay
   it at each level — measuring how much stream time each summary costs;
3. compare against naive linear truncation with the same time budget:
   the content tree covers the whole lecture, truncation only its start.

Run: ``python examples/adaptive_summarization.py``
"""

from repro.contenttree import Abstractor, build_example_tree, linear_truncation
from repro.lod import (
    Lecture,
    LODPlayback,
    MediaStore,
    WebPublishingManager,
    replay_all_levels,
)
from repro.streaming import MediaServer
from repro.web import VirtualNetwork


def paper_worked_example() -> None:
    print("=== paper §2.3 worked example ===")
    tree = build_example_tree()
    print(tree.render())
    print(f"highestLevel = {tree.highest_level}")
    for level, value in enumerate(tree.level_values()):
        print(f"LevelNodes[{level}]->value = {value:g}")

    print("\n--- Figure 3: insert S5 (level 1, adopting S4) ---")
    tree.insert("S5", 20, parent="S0", adopt=["S4"])
    for level, value in enumerate(tree.level_values()):
        print(f"LevelNodes[{level}]->value = {value:g}")

    print("\n--- Figure 4: delete S5 (children adopted by sibling S1) ---")
    tree.delete("S5")
    print(tree.render())
    print(f"S4's parent is now {tree.node('S4').parent.name}")


def lecture_summaries() -> None:
    print("\n=== level-based replay of a 12-slide lecture ===")
    durations = [10.0] * 12
    importances = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]
    lecture = Lecture.from_slide_durations(
        "Survey of Petri Net Models", "Prof. Deng",
        durations, importances=importances,
        slide_width=320, slide_height=240,
    )

    network = VirtualNetwork()
    network.connect("server", "student", bandwidth=2e6, delay=0.02)
    server = MediaServer(network, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v/survey.mpg", "/s/survey/", lecture)
    manager = WebPublishingManager(server, store)
    record = manager.publish(
        video_path="/v/survey.mpg", slide_dir="/s/survey/", point="survey"
    )
    tree = manager.content_tree_of("survey")

    playback = LODPlayback(network, "student", lecture, record.url)
    print(f"{'level':>5}  {'segments':>8}  {'nominal':>8}  {'coverage':>8}")
    for result in replay_all_levels(playback, tree):
        print(f"{result.level:>5}  {len(result.segments_played):>8}  "
              f"{result.nominal_duration:>7.0f}s  {result.coverage:>8.0%}")

    print("\n=== content tree vs linear truncation, 60s budget ===")
    budget = 60.0
    summary = Abstractor(tree).summarize(budget)
    tree_segments = [s for s in summary.segments if s != lecture.title]
    flat = [(s.name, s.duration) for s in lecture.segments]
    truncated, used = linear_truncation(flat, budget)
    print(f"content tree (level {summary.level}): {list(tree_segments)}")
    print(f"linear truncation: {list(truncated)}")
    last_tree = max(lecture.segment(s).end for s in tree_segments)
    last_trunc = max((lecture.segment(s).end for s in truncated), default=0)
    print(f"lecture coverage: tree reaches {last_tree:.0f}s, "
          f"truncation stops at {last_trunc:.0f}s of {lecture.duration:.0f}s")


def main() -> None:
    paper_worked_example()
    lecture_summaries()


if __name__ == "__main__":
    main()
