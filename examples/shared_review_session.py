#!/usr/bin/env python
"""Shared review session: floor control over real streams.

A study group reviews a published lecture together: every member has their
own stream of the same publishing point, and the floor token decides who
may steer (pause for discussion, jump back to a slide). Unlike
``distance_learning_classroom.py`` (which drives the abstract Petri-net
model), this example exercises the full stack — packets, jitter buffers,
HTTP control — through :class:`repro.lod.SharedViewing`.

Run: ``python examples/shared_review_session.py``
"""

from repro.lod import (
    FloorDenied,
    Lecture,
    MediaStore,
    SharedViewing,
    WebPublishingManager,
)
from repro.streaming import MediaServer
from repro.web import VirtualNetwork


def main() -> None:
    lecture = Lecture.from_slide_durations(
        "Exam Review: Petri Nets", "Prof. Deng", [15.0, 15.0, 15.0],
    )
    network = VirtualNetwork()
    members = ["maria", "josh", "priya"]
    for member in members:
        network.connect("server", member, bandwidth=2_000_000, delay=0.03)

    server = MediaServer(network, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/videos/review.mpg", "/slides/review/", lecture)
    record = WebPublishingManager(server, store).publish(
        video_path="/videos/review.mpg", slide_dir="/slides/review/",
        point="review",
    )

    session = SharedViewing(network, record.url, members, moderator="maria")
    session.start(burst_factor=4.0)
    session.wait_all_playing()
    print(f"session started; {session.floor.holder!r} holds the floor")

    session.advance(10)

    # josh tries to pause without the floor
    try:
        session.pause("josh")
    except FloorDenied as denied:
        print(f"denied: {denied}")

    # he requests properly; maria hands over
    session.request_floor("josh")
    session.release_floor("maria")
    print(f"floor passed to {session.floor.holder!r}")

    # josh pauses everyone for a discussion, then jumps back to slide 1
    print(f"positions before pause: "
          f"{ {u: round(p, 1) for u, p in session.positions().items()} }")
    session.pause("josh")
    session.advance(4)  # four seconds of discussion
    session.resume("josh")
    session.seek("josh", 15.0)
    print("josh rewound the group to slide 1 (15s)")

    reports = session.finish_all()
    print("\nper-member playback:")
    for user, report in reports.items():
        slides = [c.command.parameter for c in report.slide_changes()]
        print(f"  {user:<6} watched {report.duration_watched:5.1f}s, "
              f"slides fired: {slides}")
    print(f"\ngroup position spread stayed within "
          f"{session.spread() * 1000:.0f} ms; "
          f"denied interactions: {session.denial_count()}")


if __name__ == "__main__":
    main()
