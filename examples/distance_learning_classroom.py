#!/usr/bin/env python
"""Distance-learning classroom: floor control + distributed synchronization.

The multi-user scenario the extended timed Petri net exists for: a teacher
and three remote students share one presentation. The floor token decides
who may steer; commands replicate to every site over links with different
latency and clock skew; periodic sync beacons keep drift bounded.

The script shows:

* the floor-control net denying a student who interrupts without the floor;
* FIFO floor hand-off when the teacher yields;
* drift with and without beacons (why static OCPN schedules are not
  enough across distributed platforms);
* per-user floor-holding fairness.

Run: ``python examples/distance_learning_classroom.py``
"""

from repro.core.extended import SiteLink
from repro.lod import Classroom, FloorDenied, Lecture


def build_classroom(beacon_interval):
    lecture = Lecture.from_slide_durations(
        "Distributed Multimedia", "Prof. Deng", [20.0, 20.0, 20.0],
    )
    sites = {
        "alice": SiteLink(latency=0.02, jitter=0.005),
        "bob": SiteLink(latency=0.15, jitter=0.05),
        "carol": SiteLink(latency=0.08, jitter=0.01, clock_skew=0.02),
    }
    return Classroom(
        lecture.to_presentation(), sites, beacon_interval=beacon_interval
    )


def run_session(room: Classroom) -> None:
    room.interact("teacher", "play")
    room.advance(10)

    # bob tries to pause without the floor — the net says no
    try:
        room.interact("bob", "pause")
    except FloorDenied as denied:
        print(f"  denied: {denied}")

    # bob asks properly; teacher yields; bob asks his question
    room.request_floor("bob")
    room.release_floor("teacher")
    room.interact("bob", "pause")
    room.advance(5)  # discussion happens
    room.interact("bob", "resume")
    room.release_floor("bob")

    # teacher takes back over and skips to the next section
    room.request_floor("teacher")
    room.interact("teacher", "skip_forward")
    room.advance(30)


def main() -> None:
    print("=== with 1s sync beacons (the extended model) ===")
    with_beacons = build_classroom(beacon_interval=1.0)
    run_session(with_beacons)
    for site in with_beacons.coordinator.sites:
        print(f"  {site:<6} max drift "
              f"{with_beacons.coordinator.max_drift(site) * 1000:7.1f} ms, "
              f"mean {with_beacons.coordinator.mean_drift(site) * 1000:6.1f} ms")

    print("\n=== without beacons (static-schedule strawman) ===")
    without = build_classroom(beacon_interval=None)
    run_session(without)
    for site in without.coordinator.sites:
        print(f"  {site:<6} max drift "
              f"{without.coordinator.max_drift(site) * 1000:7.1f} ms, "
              f"mean {without.coordinator.mean_drift(site) * 1000:6.1f} ms")

    print("\nfloor-holding time per user:")
    for user, seconds in with_beacons.fairness().items():
        print(f"  {user:<8} {seconds:6.1f}s")
    print(f"Jain fairness index: {with_beacons.jain_index():.3f}")
    print(f"interactions denied by the floor net: "
          f"{with_beacons.denial_count()}")


if __name__ == "__main__":
    main()
