#!/usr/bin/env python
"""Full publishing workflow: record, annotate, publish over HTTP, inspect.

The scenario the paper's introduction motivates: a well-known teacher gives
a lecture many students cannot attend. We:

1. **record** the talk with simulated camera + microphone, marking slide
   advances and on-slide annotations as they happen;
2. **publish** through the actual HTTP form endpoint (the Fig. 5 web
   publishing manager), choosing a bandwidth profile;
3. **inspect** what was produced: the ASF stream table, the script-command
   table, the Petri-net schedule, and the content tree;
4. **replay** on two student links (LAN and modem-era DSL) and compare the
   experience, including a seek (the student jumps to the last slide).

Run: ``python examples/lecture_publishing.py``
"""

from repro.core.visualize import timeline_to_ascii
from repro.core.scheduler import PresentationTimeline
from repro.core.intervals import Interval
from repro.lod import (
    LectureRecorder,
    LODPlayback,
    MediaStore,
    MicrophoneSource,
    WebPublishingManager,
)
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import HTTPClient, VirtualNetwork, form_encode


def record_the_talk():
    recorder = LectureRecorder(
        "Synchronization Models for Multimedia",
        "Prof. Deng",
        microphone=MicrophoneSource(),
    )
    recorder.start()  # slide0 appears
    recorder.annotate(6.0, "OCPN: places are playouts", duration=4.0)
    recorder.advance_slide(15.0, name="ocpn", importance=1)
    recorder.advance_slide(30.0, name="xocpn", importance=1)
    recorder.annotate(36.0, "channels model QoS", duration=3.0)
    recorder.advance_slide(45.0, name="extended-net")
    return recorder.finish(60.0)


def main() -> None:
    lecture = record_the_talk()
    print(f"recorded {lecture.title!r}: {lecture.duration:.0f}s, "
          f"{len(lecture.segments)} slides")

    network = VirtualNetwork()
    network.connect("teacher", "server", bandwidth=10e6, delay=0.005)
    network.connect("server", "lan-student", bandwidth=5e6, delay=0.005)
    network.connect("server", "dsl-student", bandwidth=400_000, delay=0.05)

    server = MediaServer(network, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/videos/sync.mpg", "/slides/sync/", lecture)
    WebPublishingManager(server, store)

    # -- publish over the wire, exactly like the Fig. 5 browser form -----
    teacher = HTTPClient(network, "teacher")
    response = teacher.post(
        "http://server:8080/publish",
        body=form_encode({
            "video_path": "/videos/sync.mpg",
            "slide_dir": "/slides/sync/",
            "point": "sync-models",
            "profile": "dsl-256k",
        }),
    )
    assert response.ok, response.body
    url = response.body["url"]
    print(f"\npublished -> {url} "
          f"(verification error {response.body['verification_error']:g}s)")

    # -- inspect the produced ASF -----------------------------------------
    asf = server.points["sync-models"].content
    print(f"\nASF: {asf.packet_count} packets x "
          f"{asf.header.file_properties.packet_size}B, "
          f"{asf.data_size() / 1e6:.2f} MB")
    print("streams:")
    for stream in asf.header.streams:
        print(f"  #{stream.stream_number:<3} {stream.stream_type:<8} "
              f"codec={stream.codec:<10} {stream.bitrate / 1000:7.1f} kbps")
    print("script commands:")
    for command in asf.header.script_commands:
        print(f"  {command.timestamp:6.1f}s {command.type:<11} {command.parameter}")

    # -- the lecture as its Petri-net timeline ---------------------------
    presentation = lecture.to_presentation()
    timeline = PresentationTimeline.from_schedule(presentation.schedule)
    print("\nextended-net playout schedule:")
    print(timeline_to_ascii(timeline, width=48))

    # -- two students, different links ------------------------------------
    for host in ("lan-student", "dsl-student"):
        playback = LODPlayback(network, host, lecture, url)
        report, audit = playback.watch()
        print(f"\n[{host}] startup {report.startup_latency:.2f}s, "
              f"rebuffers {report.rebuffer_count} "
              f"({report.rebuffer_time:.2f}s), "
              f"slide sync error max {audit.max_error * 1000:.0f} ms")

    # -- an impatient student seeks to the last slide ---------------------
    player = MediaPlayer(network, "lan-student")
    player.connect(url)
    player.play()
    while player.state is not PlayerState.PLAYING:
        network.simulator.step()
    network.simulator.run_until(network.simulator.now + 2.0)
    player.seek(45.0)  # jump to "extended-net"
    report = player.run_until_finished()
    replayed = [c for c in report.slide_changes()]
    print("\nafter seeking to 45s the player re-fired:",
          [c.command.parameter for c in replayed][-1],
          "(stateful catch-up keeps the right slide on screen)")


if __name__ == "__main__":
    main()
