#!/usr/bin/env python
"""A whole course on the LOD system: catalog, search, student progress.

The course shell a distance-learning deployment needs around the paper's
per-lecture machinery: publish a multi-lecture course, let a student watch
across several sessions, and track completion + resume positions.

Run: ``python examples/course_catalog.py``
"""

from repro.lod import (
    Course,
    CourseCatalog,
    Lecture,
    MediaStore,
    StudentProgress,
    WebPublishingManager,
)
from repro.streaming import MediaPlayer, MediaServer, PlayerState
from repro.web import VirtualNetwork


def build_course() -> Course:
    course = Course("CS520", "Distributed Multimedia Systems")
    course.add(Lecture.from_slide_durations(
        "Petri Net Foundations", "Prof. Deng", [10.0, 10.0, 10.0]))
    course.add(Lecture.from_slide_durations(
        "OCPN and XOCPN", "Prof. Deng", [10.0, 15.0]))
    course.add(Lecture.from_slide_durations(
        "Streaming and Script Commands", "Prof. Deng", [10.0, 10.0]))
    return course


def main() -> None:
    network = VirtualNetwork()
    network.connect("server", "dana", bandwidth=2_000_000, delay=0.02)
    server = MediaServer(network, "server", port=8080)
    store = MediaStore()
    manager = WebPublishingManager(server, store)
    catalog = CourseCatalog(manager, store)

    course = build_course()
    urls = catalog.publish_course(course)
    print(f"published {course.code} ({course.title}): "
          f"{len(urls)} lectures, {course.total_duration:g}s total")

    hits = catalog.search("script")
    print(f"search 'script' -> {hits}")

    progress = StudentProgress("dana", catalog)

    # --- session 1: dana watches lecture 1 fully --------------------------
    first = course.lectures[0].title
    report = MediaPlayer(network, "dana").watch(
        catalog.url_of("CS520", first), burst_factor=4.0
    )
    progress.record_session("CS520", first, report)
    print(f"\nsession 1: finished {first!r} "
          f"({progress.lecture_completion('CS520', first):.0%})")

    # --- session 2: she starts lecture 2 but stops halfway ---------------
    second = course.lectures[1].title
    player = MediaPlayer(network, "dana")
    player.connect(catalog.url_of("CS520", second))
    player.play(burst_factor=4.0)
    while player.state is not PlayerState.PLAYING:
        network.simulator.step()
    network.simulator.run_until(network.simulator.now + 12.0)
    player.stop()
    progress.record_session("CS520", second, player.report())
    print(f"session 2: stopped {second!r} at "
          f"{progress.resume_position('CS520', second):.1f}s "
          f"({progress.lecture_completion('CS520', second):.0%})")

    # --- session 3: resume where she left off ---------------------------
    resume_at = progress.resume_position("CS520", second)
    player = MediaPlayer(network, "dana")
    player.connect(catalog.url_of("CS520", second))
    player.play(start=resume_at, burst_factor=4.0)
    report = player.run_until_finished()
    progress.record_session("CS520", second, report, start=resume_at)
    print(f"session 3: resumed at {resume_at:.1f}s, finished "
          f"({progress.lecture_completion('CS520', second):.0%})")

    print(f"\ncourse completion: {progress.course_completion('CS520'):.0%}")
    print(f"next unfinished lecture: {progress.next_unfinished('CS520')!r}")


if __name__ == "__main__":
    main()
