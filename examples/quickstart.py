#!/usr/bin/env python
"""Quickstart: publish a lecture and watch it, end to end, in ~40 lines.

This is the paper's Figure 5 workflow against the public API:

1. build a lecture (three slides over a 30-second talk),
2. publish it through the Web Publishing Manager (which orchestrates the
   synchronized ASF file — Petri-net verified — and a content tree),
3. watch it from a student machine and print when each slide fired.

Run: ``python examples/quickstart.py``
"""

from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.streaming import MediaPlayer, MediaServer
from repro.web import VirtualNetwork


def main() -> None:
    # --- the teacher's material -----------------------------------------
    lecture = Lecture.from_slide_durations(
        "Lecture-on-Demand in 30 Seconds",
        "Prof. Deng",
        [10.0, 12.0, 8.0],
        slide_width=640,
        slide_height=480,
    )

    # --- the campus network ----------------------------------------------
    network = VirtualNetwork()
    network.connect("server", "student", bandwidth=2_000_000, delay=0.02)

    # --- publish (Fig. 5: fill the form, get a URL back) ----------------
    server = MediaServer(network, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/videos/lod30.mpg", "/slides/lod30/", lecture)
    manager = WebPublishingManager(server, store)
    record = manager.publish(
        video_path="/videos/lod30.mpg",
        slide_dir="/slides/lod30/",
        point="lod30",
        profile="dsl-256k",
    )
    print(f"published at {record.url}")
    print(f"Petri-net verification error: {record.result.verification_error:g}s")

    # --- watch (Fig. 7: video + synchronized slides) --------------------
    player = MediaPlayer(network, "student")
    report = player.watch(record.url)

    print(f"\nstartup latency : {report.startup_latency:.2f}s")
    print(f"rebuffer events : {report.rebuffer_count}")
    print(f"watched         : {report.duration_watched:.1f}s "
          f"of {lecture.duration:.1f}s")
    print("\nslide changes (position -> slide):")
    for change in report.slide_changes():
        print(f"  {change.position:6.2f}s -> {change.command.parameter}"
              f"   (sync error {change.sync_error * 1000:.0f} ms)")


if __name__ == "__main__":
    main()
